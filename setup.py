"""Legacy setup shim so `pip install -e .` works without network access.

The environment has no `wheel` package and no PyPI connectivity, so the
PEP 660 editable path (which builds a wheel) is unavailable; this shim lets
pip fall back to the classic `setup.py develop` editable install.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
