"""L2 backing store and write-buffer model.

The paper's machine has a 2MB 4-way L2 (Table 2).  For the L1 retention
study the L2's job is to (a) serve L1 misses at its latency, (b) absorb
dirty write-backs -- including the bursts the no-refresh scheme produces
when many dirty lines expire close together (section 4.3.1 describes the
write-buffer stall this can cause).

The L2 itself is modeled statistically (hit latency + a fixed miss rate to
memory) because the synthetic workloads' L2-footprint behaviour is a
profile parameter, not something the L1 schemes change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class WriteBuffer:
    """Token-bucket write buffer between the L1 and the L2.

    Write-backs enqueue at their event cycle and drain one entry every
    ``drain_interval_cycles``.  When a write-back arrives to a full buffer
    the cache must stall until a slot frees -- those stall cycles are what
    the paper's "pathological scenario" costs.
    """

    capacity: int = 8
    drain_interval_cycles: int = 4
    _free_at_cycle: float = field(init=False, default=0.0)
    _queued: int = field(init=False, default=0)
    _last_cycle: float = field(init=False, default=0.0)
    stall_cycles: int = field(init=False, default=0)
    writebacks: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("write buffer capacity must be >= 1")
        if self.drain_interval_cycles < 1:
            raise ConfigurationError("drain interval must be >= 1 cycle")

    def _drain_until(self, cycle: float) -> None:
        if cycle < self._last_cycle:
            # Lazily-discovered expiry write-backs may arrive out of order;
            # treat them as happening "now" -- the buffer cannot time travel.
            cycle = self._last_cycle
        elapsed = cycle - self._last_cycle
        drained = int(elapsed // self.drain_interval_cycles)
        self._queued = max(0, self._queued - drained)
        self._last_cycle = cycle

    def push(self, cycle: float) -> int:
        """Enqueue one write-back at ``cycle``; returns stall cycles incurred."""
        self._drain_until(cycle)
        self.writebacks += 1
        stall = 0
        if self._queued >= self.capacity:
            # Must wait for one drain slot.
            stall = self.drain_interval_cycles
            self.stall_cycles += stall
            self._queued = self.capacity - 1
        self._queued += 1
        return stall

    @property
    def occupancy(self) -> int:
        """Entries currently queued (as of the last event)."""
        return self._queued


@dataclass
class L2Model:
    """Statistical L2: latency bookkeeping and access counting."""

    latency_cycles: int = 12
    memory_latency_cycles: int = 250
    miss_rate: float = 0.05
    accesses: int = field(init=False, default=0)
    writes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.latency_cycles < 1:
            raise ConfigurationError("L2 latency must be >= 1 cycle")
        if self.memory_latency_cycles <= self.latency_cycles:
            raise ConfigurationError("memory latency must exceed L2 latency")
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ConfigurationError("miss_rate must be in [0, 1]")

    @property
    def average_latency_cycles(self) -> float:
        """Expected L1-miss service latency in cycles."""
        return (
            (1.0 - self.miss_rate) * self.latency_cycles
            + self.miss_rate * self.memory_latency_cycles
        )

    def read(self) -> float:
        """Record a demand read; returns its expected latency in cycles."""
        self.accesses += 1
        return self.average_latency_cycles

    def write(self) -> None:
        """Record a write-back arriving at the L2."""
        self.accesses += 1
        self.writes += 1
