"""Generic set-associative cache simulator (used for the L2).

The retention machinery lives in
:class:`~repro.cache.controller.RetentionAwareCache`; this class is the
plain building block behind it for levels that do not need retention
tracking -- by default configured as the paper's Table 2 L2: 2MB, 4-way,
write-back, LRU, with the same 64-byte lines as the L1 so line addresses
pass through unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError


@dataclass
class SetAssociativeCache:
    """An LRU, write-back set-associative cache over line addresses."""

    capacity_bytes: int = 2 * 1024 * 1024
    line_bytes: int = 64
    ways: int = 4
    assume_warm: bool = True
    """Treat the first-ever touch of a line as a hit (install it), modeling
    a window cut from steady-state execution whose working set was already
    L2-resident.  Only lines evicted *within* the window and re-touched
    count as misses.  Set False for a cold L2."""
    accesses: int = field(init=False, default=0)
    hits: int = field(init=False, default=0)
    writebacks: int = field(init=False, default=0)
    _sets: List["OrderedDict[int, bool]"] = field(init=False, repr=False)
    _ever_seen: set = field(init=False, repr=False, default_factory=set)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("capacity and line size must be positive")
        if self.ways < 1:
            raise ConfigurationError("ways must be >= 1")
        total_lines = self.capacity_bytes // self.line_bytes
        if total_lines % self.ways != 0:
            raise ConfigurationError(
                f"{total_lines} lines do not divide into {self.ways} ways"
            )
        self._sets = [OrderedDict() for _ in range(total_lines // self.ways)]

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return len(self._sets)

    @property
    def n_lines(self) -> int:
        """Total line capacity."""
        return self.n_sets * self.ways

    @property
    def misses(self) -> int:
        """Demand misses so far."""
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        """Demand miss rate; zero on an empty window."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def access(self, line_address: int, is_write: bool = False) -> bool:
        """Look up (and on miss, allocate) ``line_address``; returns *hit*.

        ``is_write`` marks the resident line dirty (an eviction of a dirty
        line counts a write-back to the next level).
        """
        self.accesses += 1
        entries = self._sets[line_address % self.n_sets]
        tag = line_address // self.n_sets
        if tag in entries:
            self.hits += 1
            entries[tag] = entries[tag] or is_write
            entries.move_to_end(tag)
            return True
        first_touch = line_address not in self._ever_seen
        self._ever_seen.add(line_address)
        if len(entries) >= self.ways:
            _, victim_dirty = entries.popitem(last=False)
            if victim_dirty:
                self.writebacks += 1
        entries[tag] = is_write
        if self.assume_warm and first_touch:
            self.hits += 1
            return True
        return False

    def fill_dirty(self, line_address: int) -> None:
        """Install/refresh a line as dirty (an L1 write-back arriving).

        Not a demand access: the hit/miss counters are untouched, but an
        eviction forced by the fill still counts its write-back.
        """
        entries = self._sets[line_address % self.n_sets]
        tag = line_address // self.n_sets
        self._ever_seen.add(line_address)
        if tag in entries:
            entries[tag] = True
            entries.move_to_end(tag)
            return
        if len(entries) >= self.ways:
            _, victim_dirty = entries.popitem(last=False)
            if victim_dirty:
                self.writebacks += 1
        entries[tag] = True

    def reset_stats(self) -> None:
        """Zero the counters, keeping cache contents."""
        self.accesses = 0
        self.hits = 0
        self.writebacks = 0
