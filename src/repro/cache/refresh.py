"""Refresh policies (paper sections 4.1 and 4.3.1).

A refresh policy answers two questions about a line with hardware
retention ``r`` cycles:

* ``effective_lifetime(r)`` -- how long after a fill the data stays
  usable (possibly ``inf`` if the policy keeps refreshing it);
* ``refresh_count(age, r)`` -- how many refresh operations the policy
  spent on the line while it lived ``age`` cycles.

The four policies:

* :class:`NoRefresh` -- lines simply expire after ``r``; hardware evicts
  them at expiry (dirty data is written back to the L2).
* :class:`PartialRefresh` -- lines with ``r`` below the threshold are
  refreshed until their age passes the threshold, guaranteeing every line
  a lifetime of at least the threshold; longer-retention lines are left
  alone.  The paper uses a 6K-cycle threshold.
* :class:`FullRefresh` -- every line is refreshed forever while valid.
* :class:`GlobalRefresh` -- the section 4.1 scheme: a single global
  counter refreshes the whole cache every chip-retention period.  Only
  usable on chips with no dead lines; the refresh pass blocks one read
  and one write port while it runs.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ChipDiscardedError, ConfigurationError


class RefreshPolicy(ABC):
    """Common interface of the line-level refresh policies."""

    name: str = "abstract"

    @abstractmethod
    def effective_lifetime(self, retention_cycles: int) -> float:
        """Usable data lifetime after a fill, in cycles (may be ``inf``)."""

    @abstractmethod
    def refresh_count(self, age_cycles: int, retention_cycles: int) -> int:
        """Refreshes spent on a line that stayed valid for ``age_cycles``."""

    @staticmethod
    def _check_args(age_cycles: int, retention_cycles: int) -> None:
        if age_cycles < 0:
            raise ConfigurationError("age_cycles must be >= 0")
        if retention_cycles < 0:
            raise ConfigurationError("retention_cycles must be >= 0")


@dataclass(frozen=True)
class NoRefresh(RefreshPolicy):
    """Never refresh; rely on eviction (and L2 inclusion) instead."""

    name: str = "no-refresh"

    def effective_lifetime(self, retention_cycles: int) -> float:
        """Data lives exactly one retention period."""
        return float(retention_cycles)

    def refresh_count(self, age_cycles: int, retention_cycles: int) -> int:
        """Always zero: nothing is ever refreshed."""
        self._check_args(age_cycles, retention_cycles)
        return 0


@dataclass(frozen=True)
class PartialRefresh(RefreshPolicy):
    """Refresh only lines whose retention is below ``threshold_cycles``.

    A short-retention line is refreshed every ``r`` cycles until its age
    passes the threshold, after which it expires naturally; its effective
    lifetime is therefore ``ceil(threshold / r) * r``.  Lines at or above
    the threshold are never refreshed.
    """

    threshold_cycles: int = 6000
    name: str = "partial-refresh"

    def __post_init__(self) -> None:
        if self.threshold_cycles < 1:
            raise ConfigurationError("threshold_cycles must be >= 1")

    def effective_lifetime(self, retention_cycles: int) -> float:
        """Guaranteed lifetime: the first retention multiple past the
        threshold for short lines, the natural retention otherwise."""
        if retention_cycles <= 0:
            return 0.0
        if retention_cycles >= self.threshold_cycles:
            return float(retention_cycles)
        passes = math.ceil(self.threshold_cycles / retention_cycles)
        return float(passes * retention_cycles)

    def max_refreshes(self, retention_cycles: int) -> int:
        """Refreshes a short line receives before it is allowed to expire."""
        if retention_cycles <= 0 or retention_cycles >= self.threshold_cycles:
            return 0
        return math.ceil(self.threshold_cycles / retention_cycles) - 1

    def refresh_count(self, age_cycles: int, retention_cycles: int) -> int:
        """Refreshes performed so far, capped at the threshold guarantee."""
        self._check_args(age_cycles, retention_cycles)
        if retention_cycles <= 0:
            return 0
        performed = age_cycles // retention_cycles
        return min(performed, self.max_refreshes(retention_cycles))


@dataclass(frozen=True)
class FullRefresh(RefreshPolicy):
    """Refresh every line before its retention expires, forever."""

    name: str = "full-refresh"

    def effective_lifetime(self, retention_cycles: int) -> float:
        """Unbounded for any live line (dead lines stay dead)."""
        if retention_cycles <= 0:
            return 0.0
        return math.inf

    def refresh_count(self, age_cycles: int, retention_cycles: int) -> int:
        """One refresh per elapsed retention period while the line lived."""
        self._check_args(age_cycles, retention_cycles)
        if retention_cycles <= 0:
            return 0
        return age_cycles // retention_cycles


@dataclass(frozen=True)
class GlobalRefresh(RefreshPolicy):
    """Section 4.1: one global counter refreshes the whole cache.

    ``chip_retention_cycles`` is the worst line's retention; a refresh
    pass over the cache takes ``pass_cycles`` (2K cycles for the paper's
    geometry).  A chip whose retention cannot even cover one pass loses
    data during the pass: construction raises
    :class:`~repro.errors.ChipDiscardedError`, matching the paper's chip
    discard rule.
    """

    chip_retention_cycles: int = 0
    pass_cycles: int = 2048
    name: str = "global-refresh"

    def __post_init__(self) -> None:
        if self.pass_cycles < 1:
            raise ConfigurationError("pass_cycles must be >= 1")
        if self.chip_retention_cycles < self.pass_cycles:
            raise ChipDiscardedError(
                f"chip retention ({self.chip_retention_cycles} cycles) is "
                f"shorter than one refresh pass ({self.pass_cycles} cycles); "
                "the global scheme cannot keep the data alive"
            )

    def effective_lifetime(self, retention_cycles: int) -> float:
        """Unbounded: every line is rewritten each global pass."""
        return math.inf

    def refresh_count(self, age_cycles: int, retention_cycles: int) -> int:
        """Zero per line: global refresh is charged per pass over the
        whole cache from the window length (see the controller)."""
        self._check_args(age_cycles, retention_cycles)
        return 0

    @property
    def duty(self) -> float:
        """Fraction of time the refresh pass occupies the blocked ports."""
        return self.pass_cycles / self.chip_retention_cycles

    def passes_in_window(self, window_cycles: int) -> int:
        """Complete refresh passes issued during ``window_cycles``."""
        if window_cycles < 0:
            raise ConfigurationError("window_cycles must be >= 0")
        return window_cycles // self.chip_retention_cycles


def make_refresh_policy(
    name: str,
    partial_threshold_cycles: int = 6000,
    chip_retention_cycles: int = 0,
    pass_cycles: int = 2048,
) -> RefreshPolicy:
    """Factory by paper-style policy name."""
    key = name.lower().replace("_", "-")
    if key == "no-refresh":
        return NoRefresh()
    if key == "partial-refresh":
        return PartialRefresh(threshold_cycles=partial_threshold_cycles)
    if key == "full-refresh":
        return FullRefresh()
    if key == "global-refresh":
        return GlobalRefresh(
            chip_retention_cycles=chip_retention_cycles, pass_cycles=pass_cycles
        )
    raise ConfigurationError(
        f"unknown refresh policy {name!r}; expected one of "
        "'no-refresh', 'partial-refresh', 'full-refresh', 'global-refresh'"
    )
