"""Retention-aware L1 data-cache simulator.

This package implements the paper's cache architectures as an event-driven
(trace-driven) simulator:

* the baseline set-associative write-back cache (64KB, 4-way, 512-bit
  lines, 2 read + 1 write port, 3-cycle latency);
* per-line retention tracking with quantised line counters (section 4.3.1);
* the refresh policy spectrum: no-refresh, partial-refresh, full-refresh,
  and the section 4.1 global refresh scheme;
* the placement policies: conventional LRU, Dead-Sensitive Placement
  (DSP), Retention-Sensitive Placement FIFO and LRU (RSP-FIFO, RSP-LRU)
  with their intrinsic refresh through line moves.

The simulator reports the event counts (misses by cause, refreshes, line
moves, write-backs, blocked port cycles) that the performance and power
models in :mod:`repro.core` convert into the paper's metrics.
"""

from repro.cache.config import CacheConfig
from repro.cache.stats import AccessOutcome, CacheStats
from repro.cache.counters import LineCounterConfig, quantize_retention
from repro.cache.replacement import (
    DSPPolicy,
    LRUPolicy,
    RSPFIFOPolicy,
    RSPLRUPolicy,
    make_replacement_policy,
)
from repro.cache.refresh import (
    FullRefresh,
    GlobalRefresh,
    NoRefresh,
    PartialRefresh,
    make_refresh_policy,
)
from repro.cache.l2 import L2Model, WriteBuffer
from repro.cache.token import TokenRefreshEngine
from repro.cache.controller import RetentionAwareCache

__all__ = [
    "CacheConfig",
    "AccessOutcome",
    "CacheStats",
    "LineCounterConfig",
    "quantize_retention",
    "LRUPolicy",
    "DSPPolicy",
    "RSPFIFOPolicy",
    "RSPLRUPolicy",
    "make_replacement_policy",
    "NoRefresh",
    "PartialRefresh",
    "FullRefresh",
    "GlobalRefresh",
    "make_refresh_policy",
    "L2Model",
    "WriteBuffer",
    "TokenRefreshEngine",
    "RetentionAwareCache",
]
