"""Placement / replacement policies (paper section 4.3.2).

Four policies, from the paper:

* **LRU** -- the conventional policy.  It is *unaware* of retention: dead
  ways look permanently free (their data expires instantly), so LRU keeps
  filling them and every reuse misses -- the failure mode Figure 9 shows
  for the bad chip.
* **DSP** (Dead-Sensitive Placement) -- LRU over the live ways only; dead
  ways are never used.  If every way of a set is dead the access bypasses
  the L1 entirely.
* **RSP-FIFO** (Retention-Sensitive Placement) -- ways of a set are
  logically ordered by descending retention; a new block always enters
  the longest-retention way and pushes the existing blocks one step down
  the order (each push physically rewrites the block into its new line,
  which *intrinsically refreshes* it).  The block in the last live way is
  evicted.
* **RSP-LRU** -- like RSP-FIFO, but every *access* also promotes the
  touched block back to the longest-retention way, shuffling the blocks
  in between one step down.

The policies operate on the controller's per-set state and call back into
the controller to evict and move lines, so all bookkeeping (write-backs,
refresh-on-move, port blocking) stays in one place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.controller import RetentionAwareCache, SetState


class ReplacementPolicy(ABC):
    """Common interface: pick/prepare a way for an incoming block."""

    name: str = "abstract"
    uses_retention_info: bool = False

    @abstractmethod
    def make_room(
        self, cache: "RetentionAwareCache", set_state: "SetState", cycle: int
    ) -> Optional[int]:
        """Free and return the way the new block should be written to.

        Any eviction or block movement needed happens here (through the
        controller's helpers).  Returns ``None`` when the set has no usable
        way at all and the access must bypass the L1.
        """

    def on_hit(
        self, cache: "RetentionAwareCache", set_state: "SetState", way: int,
        cycle: int,
    ) -> None:
        """Hook invoked on every hit (after recency bookkeeping)."""


class LRUPolicy(ReplacementPolicy):
    """Conventional least-recently-used replacement, retention-blind."""

    name = "LRU"

    def make_room(self, cache, set_state, cycle):
        """Pick the LRU way, retention-blind.

        Invalid ways first (a just-expired or never-filled way looks
        free), then the least recently used way -- dead or not."""
        way = set_state.invalid_way()
        if way is None:
            way = set_state.lru_way(candidates=range(set_state.n_ways))
            cache.evict_line(set_state, way, cycle)
        return way


class DSPPolicy(ReplacementPolicy):
    """Dead-Sensitive Placement: conventional LRU over live ways only."""

    name = "DSP"
    uses_retention_info = True

    def make_room(self, cache, set_state, cycle):
        """LRU over the live ways only; ``None`` when every way is dead."""
        live = set_state.live_ways
        if not live:
            return None  # every way dead: bypass the L1 (paper 4.3.2)
        way = set_state.invalid_way(candidates=live)
        if way is None:
            way = set_state.lru_way(candidates=live)
            cache.evict_line(set_state, way, cycle)
        return way


class RSPFIFOPolicy(ReplacementPolicy):
    """Retention-Sensitive Placement, FIFO flavour.

    New blocks enter the longest-retention live way; resident blocks shift
    one step down the retention order (an intrinsic refresh); the block in
    the last live way falls out.
    """

    name = "RSP-FIFO"
    uses_retention_info = True

    def make_room(self, cache, set_state, cycle):
        """Shift resident blocks down the retention order and hand back
        the longest-retention way for the incoming block."""
        order = set_state.retention_order  # live ways, longest first
        if not order:
            return None
        # Shift the resident chain down, starting from the tail.  Stop the
        # chain at the first invalid slot -- nothing below it needs to move.
        depth = len(order) - 1
        for position in range(depth, -1, -1):
            if not set_state.valid[order[position]]:
                depth = position
                break
        else:
            # Chain is full: the block in the last live way is evicted.
            cache.evict_line(set_state, order[-1], cycle)
            depth = len(order) - 1
        for position in range(depth, 0, -1):
            src, dst = order[position - 1], order[position]
            if set_state.valid[src]:
                cache.move_line(set_state, src, dst, cycle)
        return order[0]


class RSPLRUPolicy(RSPFIFOPolicy):
    """Retention-Sensitive Placement, LRU flavour.

    Fill behaviour matches RSP-FIFO, but every hit also promotes the
    accessed block back into the longest-retention way, pushing the blocks
    above it one step down (more shuffling, more intrinsic refresh).
    """

    name = "RSP-LRU"
    uses_retention_info = True

    def on_hit(self, cache, set_state, way, cycle):
        """Promote the accessed block to the longest-retention way."""
        order = set_state.retention_order
        if not order or way == order[0]:
            return
        try:
            position = order.index(way)
        except ValueError:
            # The hit way is dead (possible only under a retention-blind
            # fill, which RSP never performs) -- nothing to promote.
            return
        # Promote: the accessed block's payload moves to order[0]; blocks
        # in between shift one step toward shorter retention.
        cache.promote_line(set_state, order, position, cycle)


_POLICIES = {
    "lru": LRUPolicy,
    "dsp": DSPPolicy,
    "rsp-fifo": RSPFIFOPolicy,
    "rsp-lru": RSPLRUPolicy,
}


def make_replacement_policy(name: str) -> ReplacementPolicy:
    """Factory by paper-style policy name (case-insensitive)."""
    key = name.lower().replace("_", "-")
    try:
        return _POLICIES[key]()
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; expected one of "
            f"{sorted(_POLICIES)}"
        ) from None
