"""The retention-aware cache controller (event-driven simulator core).

:class:`RetentionAwareCache` simulates the paper's L1 data cache on a
reference trace.  Each line carries the retention time of its physical
location (quantised by the line counters); the configured refresh policy
decides how long filled data stays usable and how many refresh operations
that costs; the configured replacement policy decides where blocks go --
including the RSP schemes' intrinsic-refresh block moves.

The simulator is open-loop in time: reference timestamps come from the
workload trace and are not stretched by misses.  Miss/refresh/stall
*counts* are exact for that reference stream; the CPU model
(:mod:`repro.cpu.perfmodel`) converts them into IPC.
"""

from __future__ import annotations

from typing import List, Iterable, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.cache.config import CacheConfig
from repro.cache.counters import LineCounterConfig, quantize_retention
from repro.cache.l2 import L2Model, WriteBuffer
from repro.cache.refresh import (
    FullRefresh,
    GlobalRefresh,
    NoRefresh,
    PartialRefresh,
    RefreshPolicy,
)
from repro.cache.token import TokenRefreshEngine
from repro.cache.replacement import ReplacementPolicy, make_replacement_policy
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import AccessOutcome, CacheStats


class SetState:
    """Mutable state of one cache set."""

    __slots__ = (
        "index",
        "n_ways",
        "tags",
        "valid",
        "dirty",
        "stale",
        "fill_cycle",
        "expiry_cycle",
        "recency",
        "retention",
        "retention_order",
        "refreshes_done",
    )

    def __init__(self, retention_cycles: Sequence[int], index: int = 0):
        self.index = index
        self.n_ways = len(retention_cycles)
        self.tags: List[int] = [0] * self.n_ways
        self.valid: List[bool] = [False] * self.n_ways
        self.dirty: List[bool] = [False] * self.n_ways
        self.stale: List[bool] = [False] * self.n_ways
        self.fill_cycle: List[int] = [0] * self.n_ways
        self.expiry_cycle: List[float] = [0.0] * self.n_ways
        self.recency: List[int] = [0] * self.n_ways
        self.refreshes_done: List[int] = [0] * self.n_ways
        self.retention: List[int] = [int(r) for r in retention_cycles]
        # Live ways sorted by descending retention (ties broken by way
        # index for determinism); dead ways are excluded.
        self.retention_order: List[int] = sorted(
            (w for w in range(self.n_ways) if self.retention[w] > 0),
            key=lambda w: (-self.retention[w], w),
        )

    @property
    def live_ways(self) -> List[int]:
        """Ways with non-zero usable retention."""
        return self.retention_order

    def invalid_way(self, candidates: Optional[Iterable[int]] = None) -> Optional[int]:
        """First invalid way among ``candidates`` (default: all ways)."""
        ways = range(self.n_ways) if candidates is None else candidates
        for way in ways:
            if not self.valid[way]:
                return way
        return None

    def lru_way(self, candidates: Iterable[int]) -> int:
        """Least-recently-used way among ``candidates``."""
        best, best_recency = None, None
        for way in candidates:
            if best_recency is None or self.recency[way] < best_recency:
                best, best_recency = way, self.recency[way]
        if best is None:
            raise SimulationError("lru_way called with no candidates")
        return best


class RetentionAwareCache:
    """Trace-driven simulator of one 3T1D (or ideal 6T) L1 data cache.

    Parameters
    ----------
    config:
        Cache organisation and timing knobs.
    retention_cycles:
        Per-line retention in cycles, shape ``(n_sets, ways)`` (or anything
        reshapeable to it).  Use ``None`` for an ideal cache whose lines
        never expire (the 6T baseline).
    replacement:
        Policy instance or paper-style name ("LRU", "DSP", "RSP-FIFO",
        "RSP-LRU").
    refresh:
        A :class:`~repro.cache.refresh.RefreshPolicy`; defaults to
        :class:`~repro.cache.refresh.NoRefresh`.
    counter:
        Line-counter configuration used to quantise ``retention_cycles``;
        ``None`` picks the per-chip default
        (:meth:`LineCounterConfig.for_chip`).  Pass ``quantize=False`` to
        use raw retention values (useful in unit tests).
    online_refresh:
        When True and the refresh policy is periodic (partial or full),
        refreshes run through the section 4.3.1 token engine: scheduled
        deadlines, serialized per sub-array pair, requested early by a
        conservative margin.  Aggregate counts match the default lazy
        accounting, but lines whose retention cannot cover the token
        margin are not refreshable (the hardware's conservative rule).
    """

    def __init__(
        self,
        config: CacheConfig,
        retention_cycles: Optional[np.ndarray] = None,
        replacement: Union[str, ReplacementPolicy] = "LRU",
        refresh: Optional[RefreshPolicy] = None,
        counter: Optional[LineCounterConfig] = None,
        quantize: bool = True,
        online_refresh: bool = False,
    ):
        self.config = config
        geometry = config.geometry
        if retention_cycles is None:
            grid = np.full((geometry.n_sets, geometry.ways), np.iinfo(np.int64).max)
            quantize = False
        else:
            grid = np.asarray(retention_cycles)
            if grid.size != geometry.n_lines:
                raise ConfigurationError(
                    f"retention_cycles has {grid.size} entries for "
                    f"{geometry.n_lines} lines"
                )
            grid = grid.reshape(geometry.n_sets, geometry.ways)
        if quantize:
            if counter is None:
                counter = LineCounterConfig.for_chip(
                    float(np.max(grid)), bits=config.counter_bits
                )
            grid = quantize_retention(grid, counter)
        self.counter = counter
        self.retention_grid = np.asarray(grid, dtype=np.int64)

        if isinstance(replacement, str):
            replacement = make_replacement_policy(replacement)
        self.replacement = replacement
        self.refresh = refresh if refresh is not None else NoRefresh()

        # Per-set state is built lazily on first touch: the batched replay
        # kernels read only ``retention_grid`` and the policy objects, so
        # they never pay for n_sets SetState constructions.
        self._sets: Optional[List[SetState]] = None
        # Optional token-arbitrated scheduled refresh (section 4.3.1's
        # hardware mechanism); only meaningful for the periodic policies.
        self.refresh_engine: Optional[TokenRefreshEngine] = None
        if online_refresh and isinstance(
            self.refresh, (PartialRefresh, FullRefresh)
        ):
            self.refresh_engine = TokenRefreshEngine(geometry)
        self.stats = CacheStats()
        self.l2 = L2Model(
            latency_cycles=config.l2_latency_cycles,
            memory_latency_cycles=config.memory_latency_cycles,
            miss_rate=config.l2_miss_rate,
        )
        self.write_buffer = WriteBuffer(
            capacity=config.write_buffer_entries,
            drain_interval_cycles=config.l2_write_interval_cycles,
        )
        self.l2_cache: Optional[SetAssociativeCache] = None
        if config.real_l2:
            self.l2_cache = SetAssociativeCache(
                capacity_bytes=config.l2_capacity_bytes,
                line_bytes=config.geometry.line_bits // 8,
                ways=config.l2_ways,
            )
        self._tick = 0
        self._last_cycle = 0
        self._finalized = False
        self._recently_expired_tags: set = set()

    @property
    def sets(self) -> List[SetState]:
        """Per-set mutable state (built lazily on first access)."""
        if self._sets is None:
            rows = self.retention_grid.tolist()
            self._sets = [
                SetState(rows[s], index=s)
                for s in range(self.config.geometry.n_sets)
            ]
        return self._sets

    # ------------------------------------------------------------------
    # main access path
    # ------------------------------------------------------------------

    def access(self, cycle: int, line_address: int, is_write: bool) -> AccessOutcome:
        """Simulate one demand access; returns its outcome."""
        if self._finalized:
            raise SimulationError("cache already finalized")
        if cycle < self._last_cycle:
            raise SimulationError(
                f"trace cycles must be non-decreasing ({cycle} after "
                f"{self._last_cycle})"
            )
        self._last_cycle = cycle
        self._tick += 1
        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1

        if self.refresh_engine is not None:
            self._service_scheduled_refreshes(cycle)

        geometry = self.config.geometry
        set_index = line_address % geometry.n_sets
        tag = line_address // geometry.n_sets
        set_state = self.sets[set_index]

        self._sweep_expired(set_state, cycle)

        if is_write and not self.config.write_back:
            return self._write_through(set_state, tag, cycle, line_address)

        way = self._lookup(set_state, tag)
        if way is not None:
            if set_state.stale[way]:
                # The tag looked valid but the data has expired: expired
                # miss; the line refills in place from the L2.
                self.stats.misses_expired += 1
                self._l2_read(line_address)
                set_state.stale[way] = False
                set_state.dirty[way] = is_write
                set_state.fill_cycle[way] = cycle
                set_state.expiry_cycle[way] = cycle + self._effective_lifetime(
                    set_state.retention[way]
                )
                set_state.recency[way] = self._tick
                self.stats.fills += 1
                return AccessOutcome.MISS_EXPIRED
            self.stats.hits += 1
            set_state.recency[way] = self._tick
            if is_write:
                set_state.dirty[way] = True
            self.replacement.on_hit(self, set_state, way, cycle)
            return AccessOutcome.HIT

        # Miss: expired lines were invalidated in the sweep, so distinguish
        # an expiry miss by whether this tag was resident-but-expired.
        outcome = (
            AccessOutcome.MISS_EXPIRED
            if tag in self._recently_expired_tags
            else AccessOutcome.MISS_COLD
        )

        self._l2_read(line_address)
        victim_way = self.replacement.make_room(self, set_state, cycle)
        if victim_way is None:
            self.stats.misses_dead_bypass += 1
            return AccessOutcome.MISS_DEAD_BYPASS
        if outcome is AccessOutcome.MISS_EXPIRED:
            self.stats.misses_expired += 1
        else:
            self.stats.misses_cold += 1
        self._fill(set_state, victim_way, tag, cycle, dirty=is_write)
        return outcome

    def reset_stats(self) -> None:
        """Zero the counters, keeping all cache line state (end of warmup)."""
        self.stats = CacheStats()
        self.l2.accesses = 0
        self.l2.writes = 0
        self.write_buffer.stall_cycles = 0
        self.write_buffer.writebacks = 0
        if self.l2_cache is not None:
            self.l2_cache.reset_stats()

    def run_trace(
        self,
        cycles: Sequence[int],
        line_addresses: Sequence[int],
        is_write: Sequence[bool],
        warmup_references: int = 0,
    ) -> CacheStats:
        """Run a whole trace and finalize; returns the stats.

        The first ``warmup_references`` accesses prime the cache state and
        are excluded from the returned statistics.
        """
        for index, (cycle, addr, write) in enumerate(
            zip(cycles, line_addresses, is_write)
        ):
            if index == warmup_references and warmup_references:
                self.reset_stats()
            self.access(int(cycle), int(addr), bool(write))
        if warmup_references and len(cycles) <= warmup_references:
            self.reset_stats()
        end = int(cycles[-1]) if len(cycles) else 0
        return self.finalize(end)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _write_through(
        self, set_state: SetState, tag: int, cycle: int, line_address: int
    ) -> AccessOutcome:
        """Write-through, no-write-allocate store path.

        Every store goes straight to the L2 (through the write buffer);
        resident lines are updated but never dirtied, and store misses do
        not allocate.
        """
        self.stats.write_throughs += 1
        self.l2.write()
        if self.l2_cache is not None:
            self.l2_cache.fill_dirty(line_address)
        stall = self.write_buffer.push(cycle)
        self.stats.write_buffer_stall_cycles += stall
        way = self._lookup(set_state, tag)
        if way is not None and not set_state.stale[way]:
            set_state.recency[way] = self._tick
            self.stats.hits += 1
            self.replacement.on_hit(self, set_state, way, cycle)
            return AccessOutcome.HIT
        self.stats.misses_cold += 1
        return AccessOutcome.MISS_COLD

    def _l2_read(self, line_address: int) -> None:
        """Record one L1-miss read reaching the L2."""
        self.l2.read()
        self.stats.l2_accesses += 1
        if self.l2_cache is not None:
            if self.l2_cache.access(line_address, is_write=False):
                self.stats.l2_hits += 1
            else:
                self.stats.l2_misses += 1

    def _l2_writeback(self, set_state: SetState, way: int) -> None:
        """Deliver a dirty line's data into the L2."""
        if self.l2_cache is not None:
            line_address = (
                set_state.tags[way] * self.config.geometry.n_sets
                + set_state.index
            )
            self.l2_cache.fill_dirty(line_address)

    def _lookup(self, set_state: SetState, tag: int) -> Optional[int]:
        for way in range(set_state.n_ways):
            if set_state.valid[way] and set_state.tags[way] == tag:
                return way
        return None

    def _sweep_expired(self, set_state: SetState, cycle: int) -> None:
        """Handle lines whose retention ran out, lazily per set.

        Retention-aware placement (DSP/RSP) evicts expired lines outright:
        the way becomes free.  Retention-blind LRU leaves the tag
        *apparently valid* -- the paper's "mistakenly treated as being
        useful" dead/expired lines -- and the data-integrity machinery
        only writes dirty data back at expiry; a later access to the tag
        is an expired miss plus a pipeline replay.
        """
        self._recently_expired_tags = set()
        aware = self.replacement.uses_retention_info
        for way in range(set_state.n_ways):
            if (
                set_state.valid[way]
                and not set_state.stale[way]
                and cycle >= set_state.expiry_cycle[way]
            ):
                self._recently_expired_tags.add(set_state.tags[way])
                if aware:
                    self._finalize_line(
                        set_state, way, int(set_state.expiry_cycle[way]),
                        expired=True,
                    )
                else:
                    self._expire_in_place(
                        set_state, way, int(set_state.expiry_cycle[way])
                    )

    def _expire_in_place(
        self, set_state: SetState, way: int, cycle: int
    ) -> None:
        """Mark a line stale without freeing the way (retention-blind LRU)."""
        age = max(0, cycle - set_state.fill_cycle[way])
        self._account_refreshes(age, set_state.retention[way])
        if self.refresh_engine is not None:
            self.refresh_engine.cancel(set_state.index, way)
        if set_state.dirty[way]:
            self.stats.writebacks += 1
            self.stats.expiry_writebacks += 1
            self.l2.write()
            self._l2_writeback(set_state, way)
            stall = self.write_buffer.push(cycle)
            self.stats.write_buffer_stall_cycles += stall
            set_state.dirty[way] = False
        set_state.stale[way] = True

    def _effective_lifetime(self, retention: int) -> float:
        if self.refresh_engine is not None:
            # Scheduled refreshes extend life explicitly; between services
            # the data lives exactly one retention period.
            return float(retention)
        return self.refresh.effective_lifetime(retention)

    def _fill(
        self, set_state: SetState, way: int, tag: int, cycle: int, dirty: bool
    ) -> None:
        if set_state.valid[way]:
            raise SimulationError("fill into an occupied way; evict first")
        set_state.tags[way] = tag
        set_state.valid[way] = True
        set_state.stale[way] = False
        set_state.dirty[way] = dirty
        set_state.fill_cycle[way] = cycle
        lifetime = self._effective_lifetime(set_state.retention[way])
        set_state.expiry_cycle[way] = cycle + lifetime
        set_state.recency[way] = self._tick
        set_state.refreshes_done[way] = 0
        self.stats.fills += 1
        self._maybe_schedule_refresh(set_state, way, cycle)

    def _account_refreshes(self, age: int, retention: int) -> None:
        if self.refresh_engine is not None:
            return  # counted online at service time
        count = self.refresh.refresh_count(age, retention)
        if count:
            self.stats.line_refreshes += count
            self.stats.refresh_blocked_cycles += (
                count * self.config.geometry.refresh_cycles_per_line
            )

    def _finalize_line(
        self, set_state: SetState, way: int, cycle: int, expired: bool = False
    ) -> None:
        """Close out a valid line: refresh accounting plus dirty write-back."""
        if set_state.stale[way]:
            # Expiry already accounted refreshes and any write-back.
            set_state.valid[way] = False
            set_state.stale[way] = False
            set_state.dirty[way] = False
            return
        age = max(0, cycle - set_state.fill_cycle[way])
        self._account_refreshes(age, set_state.retention[way])
        if self.refresh_engine is not None:
            self.refresh_engine.cancel(set_state.index, way)
        if set_state.dirty[way]:
            self.stats.writebacks += 1
            if expired:
                self.stats.expiry_writebacks += 1
            self.l2.write()
            self._l2_writeback(set_state, way)
            stall = self.write_buffer.push(cycle)
            self.stats.write_buffer_stall_cycles += stall
        set_state.valid[way] = False
        set_state.dirty[way] = False

    # --- controller services used by replacement policies -----------------

    def evict_line(self, set_state: SetState, way: int, cycle: int) -> None:
        """Evict the block in ``way`` (no-op if invalid)."""
        if set_state.valid[way]:
            self._finalize_line(set_state, way, cycle, expired=False)

    def move_line(
        self, set_state: SetState, src: int, dst: int, cycle: int
    ) -> None:
        """Physically move a block between ways (RSP intrinsic refresh).

        The rewrite restarts the destination line's retention clock.
        """
        if not set_state.valid[src]:
            raise SimulationError("move_line from an invalid way")
        if set_state.valid[dst]:
            raise SimulationError("move_line into an occupied way")
        self._account_refreshes(
            max(0, cycle - set_state.fill_cycle[src]), set_state.retention[src]
        )
        set_state.tags[dst] = set_state.tags[src]
        set_state.dirty[dst] = set_state.dirty[src]
        set_state.recency[dst] = set_state.recency[src]
        set_state.fill_cycle[dst] = cycle
        set_state.expiry_cycle[dst] = cycle + self._effective_lifetime(
            set_state.retention[dst]
        )
        set_state.valid[dst] = True
        set_state.valid[src] = False
        set_state.dirty[src] = False
        set_state.refreshes_done[dst] = 0
        if self.refresh_engine is not None:
            self.refresh_engine.cancel(set_state.index, src)
            self._maybe_schedule_refresh(set_state, dst, cycle)
        self.stats.line_moves += 1
        self.stats.move_blocked_cycles += (
            self.config.geometry.refresh_cycles_per_line
        )

    def promote_line(
        self, set_state: SetState, order: Sequence[int], position: int, cycle: int
    ) -> None:
        """RSP-LRU promotion: block at ``order[position]`` moves to
        ``order[0]``; blocks above shift one step down."""
        if position <= 0:
            return
        src_way = order[position]
        if not set_state.valid[src_way]:
            raise SimulationError("promote_line from an invalid way")
        # Stash the promoted block, shift the chain, then land the stash.
        stash = (
            set_state.tags[src_way],
            set_state.dirty[src_way],
            set_state.recency[src_way],
        )
        set_state.valid[src_way] = False
        for i in range(position, 0, -1):
            src, dst = order[i - 1], order[i]
            if set_state.valid[src]:
                self.move_line(set_state, src, dst, cycle)
        landing = order[0]
        set_state.tags[landing] = stash[0]
        set_state.dirty[landing] = stash[1]
        set_state.recency[landing] = stash[2]
        set_state.fill_cycle[landing] = cycle
        set_state.expiry_cycle[landing] = cycle + self._effective_lifetime(
            set_state.retention[landing]
        )
        set_state.valid[landing] = True
        self.stats.line_moves += 1
        self.stats.move_blocked_cycles += (
            self.config.geometry.refresh_cycles_per_line
        )

    # ------------------------------------------------------------------
    # scheduled (token) refresh
    # ------------------------------------------------------------------

    def _maybe_schedule_refresh(
        self, set_state: SetState, way: int, cycle: int
    ) -> None:
        """Arm the token engine for a just-(re)written line, per policy."""
        engine = self.refresh_engine
        if engine is None:
            return
        retention = set_state.retention[way]
        if retention <= 0:
            return
        if isinstance(self.refresh, PartialRefresh):
            if retention >= self.refresh.threshold_cycles:
                return
            if set_state.refreshes_done[way] >= self.refresh.max_refreshes(
                retention
            ):
                return
        engine.schedule(
            set_state.index, way, set_state.n_ways, cycle, retention
        )

    def _service_scheduled_refreshes(self, cycle: int) -> None:
        """Apply every token-granted refresh due by ``cycle``.

        Each service re-arms the line's next request, so the drain loops
        until the window is quiet (an idle line can chain through several
        refresh periods between two demand accesses).
        """
        while True:
            serviced = self.refresh_engine.due_refreshes(cycle)
            if not serviced:
                return
            for service, set_index, way in serviced:
                set_state = self.sets[set_index]
                if not set_state.valid[way] or set_state.stale[way]:
                    continue
                retention = set_state.retention[way]
                set_state.fill_cycle[way] = service
                set_state.expiry_cycle[way] = service + retention
                set_state.refreshes_done[way] += 1
                self.stats.line_refreshes += 1
                self.stats.refresh_blocked_cycles += (
                    self.config.geometry.refresh_cycles_per_line
                )
                self._maybe_schedule_refresh(set_state, way, service)

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------

    def finalize(self, end_cycle: int) -> CacheStats:
        """Close the simulation window at ``end_cycle`` and return stats.

        Accounts refreshes still owed by resident lines and, for the
        global scheme, the full-cache refresh passes issued during the
        window.
        """
        if self._finalized:
            return self.stats
        self._finalized = True
        end_cycle = max(end_cycle, self._last_cycle)
        for set_state in self.sets:
            for way in range(set_state.n_ways):
                if set_state.valid[way] and not set_state.stale[way]:
                    cutoff = min(end_cycle, set_state.expiry_cycle[way])
                    age = max(0, int(cutoff) - set_state.fill_cycle[way])
                    self._account_refreshes(age, set_state.retention[way])
        if isinstance(self.refresh, GlobalRefresh):
            passes = self.refresh.passes_in_window(end_cycle)
            lines = self.config.geometry.n_lines
            self.stats.line_refreshes += passes * lines
            self.stats.refresh_blocked_cycles += (
                passes * self.refresh.pass_cycles
            )
        return self.stats

    @property
    def window_cycles(self) -> int:
        """Cycles elapsed up to the last processed access."""
        return self._last_cycle
