"""Token-based refresh arbitration (paper section 4.3.1).

The partial- and full-refresh hardware works like this in the paper:
every line's counter asserts a *refresh request* when it nears expiry; a
one-bit token iterates through the lines tagged for refresh, and a line
refreshes only while holding the token.  Requests can therefore queue
behind each other, so "to ensure data integrity, we conservatively set
the retention time counter to guarantee each line will receive the token
before expiring."

:class:`TokenRefreshEngine` implements that mechanism online for the
cache simulator: refreshes are *scheduled* (a deadline heap per sub-array
pair), serialized through each pair's single refresh port (the token),
and requested early by a conservative margin that covers the worst-case
token wait.  The engine is an opt-in alternative to the controller's lazy
refresh accounting -- the aggregate counts agree (tested), but the online
engine additionally exposes time-resolved port-busy intervals and the
token-margin cost: a line whose retention cannot cover its token margin
cannot be safely refreshed at all and is treated as dead by the refresh
machinery, exactly like the global scheme's pass-time bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.array.geometry import CacheGeometry


@dataclass
class TokenRefreshEngine:
    """Scheduled, token-serialized line refreshes for one cache.

    Parameters
    ----------
    geometry:
        Physical organisation (refresh port parallelism = sub-array pairs;
        one line refresh occupies its pair for ``refresh_cycles_per_line``).
    margin_cycles:
        Conservative early-request margin per line.  ``None`` derives the
        paper's worst-case bound: every line of the pair could hold the
        token first, i.e. ``rows_per_pair * refresh_cycles_per_line``
        (2048 cycles for the paper's design -- the same number as a global
        refresh pass, and not coincidentally).
    """

    geometry: CacheGeometry
    margin_cycles: Optional[int] = None
    _heaps: List[List[Tuple[int, int, int]]] = field(init=False, repr=False)
    _pair_busy_until: List[int] = field(init=False, repr=False)
    _generation: Dict[Tuple[int, int], int] = field(init=False, repr=False)
    refreshes_done: int = field(init=False, default=0)
    busy_cycles: int = field(init=False, default=0)
    max_token_wait: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.margin_cycles is None:
            self.margin_cycles = (
                self.geometry.rows_per_pair
                * self.geometry.refresh_cycles_per_line
            )
        if self.margin_cycles < 0:
            raise ConfigurationError("margin_cycles must be >= 0")
        self._heaps = [[] for _ in range(self.geometry.n_pairs)]
        self._pair_busy_until = [0] * self.geometry.n_pairs
        self._generation = {}

    # ------------------------------------------------------------------

    def can_sustain(self, retention_cycles: int) -> bool:
        """Can a line with this retention be refreshed safely at all?

        The refresh request must fire ``margin_cycles`` before expiry, so
        retention at or below the margin (plus the refresh op itself)
        cannot be guaranteed service -- the paper's conservative-counter
        rule turns such lines into dead lines for the refresh machinery.
        """
        return retention_cycles > self.margin_cycles + (
            self.geometry.refresh_cycles_per_line
        )

    def line_pair(self, set_index: int, way: int, ways: int) -> int:
        """Sub-array pair of the (set, way) line."""
        line_id = set_index * ways + way
        return line_id % self.geometry.n_pairs

    def schedule(
        self, set_index: int, way: int, ways: int, fill_cycle: int,
        retention_cycles: int,
    ) -> bool:
        """Arm the refresh request for a just-filled (or refreshed) line.

        Returns False (and schedules nothing) when the line cannot be
        sustained under the token margin.
        """
        if not self.can_sustain(retention_cycles):
            return False
        key = (set_index, way)
        generation = self._generation.get(key, 0) + 1
        self._generation[key] = generation
        due = fill_cycle + retention_cycles - self.margin_cycles
        pair = self.line_pair(set_index, way, ways)
        heapq.heappush(self._heaps[pair], (due, set_index, way, generation))
        return True

    def cancel(self, set_index: int, way: int) -> None:
        """Disarm a line's pending request (evicted / invalidated).

        Lazy: the generation bump makes stale heap entries no-ops.
        """
        key = (set_index, way)
        self._generation[key] = self._generation.get(key, 0) + 1

    def due_refreshes(self, now: int) -> List[Tuple[int, int, int]]:
        """Pop and serialize every request due by ``now``.

        Returns ``(service_cycle, set_index, way)`` triples: the cycle at
        which the line actually obtained the token and refreshed.  The
        pair's port is booked for ``refresh_cycles_per_line`` per service.
        """
        serviced = []
        per_line = self.geometry.refresh_cycles_per_line
        for pair, heap in enumerate(self._heaps):
            while heap and heap[0][0] <= now:
                due, set_index, way, generation = heapq.heappop(heap)
                if self._generation.get((set_index, way)) != generation:
                    continue  # stale: line was evicted or re-filled
                service = max(due, self._pair_busy_until[pair])
                self._pair_busy_until[pair] = service + per_line
                self.refreshes_done += 1
                self.busy_cycles += per_line
                self.max_token_wait = max(self.max_token_wait, service - due)
                serviced.append((service, set_index, way))
        return serviced

    def earliest_due(self) -> Optional[int]:
        """Earliest armed deadline across all pairs (``None`` when idle).

        Lazily-cancelled (stale-generation) entries still sitting in the
        heaps are included, so the value is a *lower bound* on the next
        cycle at which :meth:`due_refreshes` could service anything --
        exactly what a replay loop needs to skip guaranteed-no-op drains.
        """
        dues = [heap[0][0] for heap in self._heaps if heap]
        return min(dues) if dues else None

    def pending(self, pair: Optional[int] = None) -> int:
        """Requests currently armed (optionally for one pair)."""
        if pair is None:
            return sum(len(h) for h in self._heaps)
        if not 0 <= pair < self.geometry.n_pairs:
            raise ConfigurationError(f"pair {pair} out of range")
        return len(self._heaps[pair])

    def pair_busy_fraction(self, window_cycles: int) -> float:
        """Mean fraction of the window each pair's port was refreshing."""
        if window_cycles <= 0:
            raise ConfigurationError("window_cycles must be positive")
        return self.busy_cycles / (
            window_cycles * self.geometry.n_pairs
        )
