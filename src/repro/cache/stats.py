"""Event counters reported by the cache simulator."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class AccessOutcome(Enum):
    """What happened to one cache access."""

    HIT = "hit"
    MISS_COLD = "miss_cold"
    """Tag not present (cold/capacity/conflict miss)."""
    MISS_EXPIRED = "miss_expired"
    """Tag present but the line's retention had run out -- the miss class
    that only exists in a 3T1D cache and that the schemes fight."""
    MISS_DEAD_BYPASS = "miss_dead_bypass"
    """Every usable way of the set is dead; the access bypassed the L1."""


@dataclass
class CacheStats:
    """Aggregate counters over one simulation window.

    Port-activity counters feed the dynamic-power model; miss/refresh/move
    counters feed the performance model.
    """

    loads: int = 0
    stores: int = 0
    hits: int = 0
    misses_cold: int = 0
    misses_expired: int = 0
    misses_dead_bypass: int = 0
    writebacks: int = 0
    expiry_writebacks: int = 0
    write_throughs: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    line_refreshes: int = 0
    refresh_blocked_cycles: int = 0
    line_moves: int = 0
    move_blocked_cycles: int = 0
    write_buffer_stall_cycles: int = 0
    fills: int = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses."""
        return self.loads + self.stores

    @property
    def misses(self) -> int:
        """Total demand misses of all causes."""
        return self.misses_cold + self.misses_expired + self.misses_dead_bypass

    @property
    def miss_rate(self) -> float:
        """Demand miss rate; zero on an empty window."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def expired_miss_rate(self) -> float:
        """Retention-expiry misses per demand access."""
        if self.accesses == 0:
            return 0.0
        return self.misses_expired / self.accesses

    @property
    def port_accesses(self) -> int:
        """Array port activations for the dynamic-power model.

        Demand accesses + fills + write-backs/write-throughs; refreshes and
        line moves are charged separately at their own (cheaper) per-line
        energies.
        """
        return self.accesses + self.fills + self.writebacks + self.write_throughs

    @property
    def measured_l2_miss_rate(self) -> float:
        """L2 demand miss rate when a real L2 was simulated; 0 otherwise."""
        demand = self.l2_hits + self.l2_misses
        if demand == 0:
            return 0.0
        return self.l2_misses / demand

    @property
    def blocked_cycles(self) -> int:
        """Cycles during which refresh or line moves held cache ports."""
        return self.refresh_blocked_cycles + self.move_blocked_cycles

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the sum of two stat windows."""
        merged = CacheStats()
        for attr in vars(self):
            setattr(merged, attr, getattr(self, attr) + getattr(other, attr))
        return merged
