"""Per-line retention counters (paper section 4.3.1).

Every line-level scheme tags each line with its (post-fabrication-test)
retention time, held in a small counter.  All counters tick on a shared
global clock running at 1/N of the chip frequency, so the counter
resolution is N cycles and a ``b``-bit counter can represent at most
``(2**b - 1) * N`` cycles.

Two consequences the paper calls out, both reproduced here:

* retention is *quantised down* to a multiple of N (the stored count must
  be conservative -- never longer than the real retention);
* a line whose retention is below one counter step N **counts as dead**,
  even if its raw retention is positive.

``N`` is set per chip: "larger retention time requires larger N so that
for the counter with the same number of bits, it can count more".  The
default picks the smallest N that lets the counter span the chip's
longest line retention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class LineCounterConfig:
    """Resolution of the per-line retention counters for one chip."""

    bits: int = 3
    step_cycles: int = 1000

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ConfigurationError(f"bits must be >= 1, got {self.bits}")
        if self.step_cycles < 1:
            raise ConfigurationError(
                f"step_cycles must be >= 1, got {self.step_cycles}"
            )

    @property
    def max_count(self) -> int:
        """Largest representable count."""
        return 2 ** self.bits - 1

    @property
    def max_cycles(self) -> int:
        """Largest representable retention in cycles."""
        return self.max_count * self.step_cycles

    @classmethod
    def for_chip(
        cls, max_line_retention_cycles: float, bits: int = 3
    ) -> "LineCounterConfig":
        """Smallest step N that spans the chip's longest line retention.

        A chip with no usable lines at all still gets a 1-cycle step so the
        configuration stays valid (everything is dead anyway).
        """
        max_count = 2 ** bits - 1
        step = max(1, math.ceil(max_line_retention_cycles / max_count))
        return cls(bits=bits, step_cycles=step)


def quantize_retention(
    retention_cycles: ArrayLike, counter: LineCounterConfig
) -> ArrayLike:
    """Retention as the line counter sees it: floored to counter steps.

    Values below one step quantise to zero -- the line is dead to the
    architecture.  Values beyond the counter range clamp to the maximum
    representable count (the counter simply cannot promise more).
    """
    values = np.asarray(retention_cycles, dtype=float)
    if np.any(values < 0):
        raise ConfigurationError("retention_cycles must be >= 0")
    steps = np.minimum(
        np.floor(values / counter.step_cycles), counter.max_count
    )
    result = steps * counter.step_cycles
    if np.isscalar(retention_cycles) or np.ndim(retention_cycles) == 0:
        return int(result)
    return result.astype(np.int64)
