"""Cache simulator configuration.

Binds the physical :class:`~repro.array.geometry.CacheGeometry` to the
timing parameters the simulator needs and the retention-scheme knobs from
the paper:

* ``partial_refresh_threshold_cycles`` -- the partial-refresh scheme's
  lifetime guarantee; the paper uses a 6K-cycle threshold (section 4.3.3);
* ``counter_bits`` -- per-line retention counters are 3 bits wide
  (section 4.3.1);
* L2 latency / write-buffer depth for the backing store model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.array.geometry import CacheGeometry


@dataclass(frozen=True)
class CacheConfig:
    """All knobs of one retention-aware cache instance."""

    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    hit_latency_cycles: int = 3
    write_hit_extra_cycles: int = 0
    """Extra cycles a write hit occupies beyond ``hit_latency_cycles``.
    Zero for the paper's 3T1D design; technologies with asymmetric writes
    (e.g. STT-RAM) set this from their backend's latency model, and the
    CPU model charges it as a store-port stall."""
    l2_latency_cycles: int = 12
    memory_latency_cycles: int = 250
    l2_miss_rate: float = 0.05
    counter_bits: int = 3
    partial_refresh_threshold_cycles: int = 6000
    write_buffer_entries: int = 8
    l2_write_interval_cycles: int = 4
    write_back: bool = True
    """True for the paper's write-back cache; False models a write-through,
    no-write-allocate cache, for which expiring dirty data needs no action
    (section 4.3.1)."""
    real_l2: bool = False
    """When True the simulator instantiates the Table 2 L2 (2MB, 4-way,
    LRU, write-back) and measures its miss rate from the trace instead of
    using the per-benchmark statistical ``l2_miss_rate``."""
    l2_capacity_bytes: int = 2 * 1024 * 1024
    l2_ways: int = 4

    def __post_init__(self) -> None:
        if self.hit_latency_cycles < 1:
            raise ConfigurationError("hit_latency_cycles must be >= 1")
        if self.write_hit_extra_cycles < 0:
            raise ConfigurationError("write_hit_extra_cycles must be >= 0")
        if self.l2_latency_cycles <= self.hit_latency_cycles:
            raise ConfigurationError(
                "L2 latency must exceed the L1 hit latency"
            )
        if self.memory_latency_cycles <= self.l2_latency_cycles:
            raise ConfigurationError(
                "memory latency must exceed the L2 latency"
            )
        if not 0.0 <= self.l2_miss_rate <= 1.0:
            raise ConfigurationError("l2_miss_rate must be in [0, 1]")
        if self.counter_bits < 1:
            raise ConfigurationError("counter_bits must be >= 1")
        if self.partial_refresh_threshold_cycles < 1:
            raise ConfigurationError(
                "partial_refresh_threshold_cycles must be >= 1"
            )
        if self.write_buffer_entries < 1:
            raise ConfigurationError("write_buffer_entries must be >= 1")
        if self.l2_write_interval_cycles < 1:
            raise ConfigurationError("l2_write_interval_cycles must be >= 1")
        if self.l2_capacity_bytes <= 0 or self.l2_ways < 1:
            raise ConfigurationError("L2 capacity and ways must be positive")

    @property
    def miss_latency_cycles(self) -> float:
        """Average L1-miss service latency, cycles (L2 hit/miss weighted)."""
        return (
            (1.0 - self.l2_miss_rate) * self.l2_latency_cycles
            + self.l2_miss_rate * self.memory_latency_cycles
        )

    def with_ways(self, ways: int) -> "CacheConfig":
        """Same configuration at a different associativity (Figure 11)."""
        return CacheConfig(
            geometry=self.geometry.with_ways(ways),
            hit_latency_cycles=self.hit_latency_cycles,
            write_hit_extra_cycles=self.write_hit_extra_cycles,
            l2_latency_cycles=self.l2_latency_cycles,
            memory_latency_cycles=self.memory_latency_cycles,
            l2_miss_rate=self.l2_miss_rate,
            counter_bits=self.counter_bits,
            partial_refresh_threshold_cycles=self.partial_refresh_threshold_cycles,
            write_buffer_entries=self.write_buffer_entries,
            l2_write_interval_cycles=self.l2_write_interval_cycles,
            write_back=self.write_back,
            real_l2=self.real_l2,
            l2_capacity_bytes=self.l2_capacity_bytes,
            l2_ways=self.l2_ways,
        )
