"""Cache simulator configuration.

Binds the physical :class:`~repro.array.geometry.CacheGeometry` to the
timing parameters the simulator needs and the retention-scheme knobs from
the paper:

* ``partial_refresh_threshold_cycles`` -- the partial-refresh scheme's
  lifetime guarantee; the paper uses a 6K-cycle threshold (section 4.3.3);
* ``counter_bits`` -- per-line retention counters are 3 bits wide
  (section 4.3.1);
* L2 latency / write-buffer depth for the backing store model.

Geometry-adjacent scalars live on the geometries, not here: the L1 hit
latency defaults to ``geometry.access_latency_cycles`` (pass an explicit
value only to override the derived one), and the backing L2 is a full
:class:`CacheGeometry` in :attr:`CacheConfig.l2_geometry`.  The historical
``l2_capacity_bytes``/``l2_ways`` construction keywords completed their
deprecation cycle and are now hard errors when passed without a matching
``l2_geometry`` (DESIGN.md section 3h removal ledger); the fields remain
readable as concrete mirrors of ``l2_geometry``, which is what keeps
``dataclasses.replace`` round-trips silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.array.geometry import CacheGeometry

DEFAULT_L2_CAPACITY_BYTES: int = 2 * 1024 * 1024
"""Table 2's 2MB L2."""

DEFAULT_L2_WAYS: int = 4
"""Table 2's 4-way L2."""


def default_l2_geometry(line_bits: int = 512) -> CacheGeometry:
    """The Table 2 L2 (2MB, 4-way, LRU, write-back) as a geometry."""
    return CacheGeometry.from_capacity(
        DEFAULT_L2_CAPACITY_BYTES, DEFAULT_L2_WAYS, line_bits=line_bits
    )


@dataclass(frozen=True)
class CacheConfig:
    """All knobs of one retention-aware cache instance."""

    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    hit_latency_cycles: Optional[int] = None
    """L1 hit latency; ``None`` (the default) reads the geometry's
    derived ``access_latency_cycles`` -- 3 for the paper point."""
    write_hit_extra_cycles: int = 0
    """Extra cycles a write hit occupies beyond ``hit_latency_cycles``.
    Zero for the paper's 3T1D design; technologies with asymmetric writes
    (e.g. STT-RAM) set this from their backend's latency model, and the
    CPU model charges it as a store-port stall."""
    l2_latency_cycles: int = 12
    memory_latency_cycles: int = 250
    l2_miss_rate: float = 0.05
    counter_bits: int = 3
    partial_refresh_threshold_cycles: int = 6000
    write_buffer_entries: int = 8
    l2_write_interval_cycles: int = 4
    write_back: bool = True
    """True for the paper's write-back cache; False models a write-through,
    no-write-allocate cache, for which expiring dirty data needs no action
    (section 4.3.1)."""
    real_l2: bool = False
    """When True the simulator instantiates the Table 2 L2 (2MB, 4-way,
    LRU, write-back) and measures its miss rate from the trace instead of
    using the per-benchmark statistical ``l2_miss_rate``."""
    l2_geometry: Optional[CacheGeometry] = None
    """Backing L2 organisation; ``None`` derives the Table 2 default.
    Always concrete after construction."""
    l2_capacity_bytes: Optional[int] = None
    """Read-only mirror of ``l2_geometry.size_bytes``.  Passing it
    without a matching ``l2_geometry`` is a removed legacy spelling and
    raises :class:`~repro.errors.ConfigurationError`."""
    l2_ways: Optional[int] = None
    """Read-only mirror of ``l2_geometry.ways``; same removal rule as
    ``l2_capacity_bytes``."""

    def __post_init__(self) -> None:
        if self.hit_latency_cycles is None:
            object.__setattr__(
                self,
                "hit_latency_cycles",
                self.geometry.access_latency_cycles,
            )
        if self.hit_latency_cycles < 1:
            raise ConfigurationError("hit_latency_cycles must be >= 1")
        if self.write_hit_extra_cycles < 0:
            raise ConfigurationError("write_hit_extra_cycles must be >= 0")
        if self.l2_latency_cycles <= self.hit_latency_cycles:
            raise ConfigurationError(
                "L2 latency must exceed the L1 hit latency"
            )
        if self.memory_latency_cycles <= self.l2_latency_cycles:
            raise ConfigurationError(
                "memory latency must exceed the L2 latency"
            )
        if not 0.0 <= self.l2_miss_rate <= 1.0:
            raise ConfigurationError("l2_miss_rate must be in [0, 1]")
        if self.counter_bits < 1:
            raise ConfigurationError("counter_bits must be >= 1")
        if self.partial_refresh_threshold_cycles < 1:
            raise ConfigurationError(
                "partial_refresh_threshold_cycles must be >= 1"
            )
        if self.write_buffer_entries < 1:
            raise ConfigurationError("write_buffer_entries must be >= 1")
        if self.l2_write_interval_cycles < 1:
            raise ConfigurationError("l2_write_interval_cycles must be >= 1")
        self._resolve_l2()

    def _resolve_l2(self) -> None:
        """Resolve ``l2_geometry`` and its concrete scalar mirrors.

        After this, ``l2_geometry`` is concrete and the scalar fields
        mirror it, so readers and ``dataclasses.replace`` round-trips
        (which re-pass the mirrored values) keep working silently.
        Passing a bare scalar *without* ``l2_geometry`` completed its
        deprecation cycle and is now a hard error.
        """
        capacity = self.l2_capacity_bytes
        ways = self.l2_ways
        if self.l2_geometry is None:
            if capacity is not None or ways is not None:
                raise ConfigurationError(
                    "CacheConfig(l2_capacity_bytes=..., l2_ways=...) was "
                    "removed; pass l2_geometry="
                    "CacheGeometry.from_capacity(...) instead"
                )
            resolved = default_l2_geometry(
                line_bits=self.geometry.line_bits
            )
            object.__setattr__(self, "l2_geometry", resolved)
        else:
            if capacity is not None and capacity != self.l2_geometry.size_bytes:
                raise ConfigurationError(
                    f"l2_capacity_bytes={capacity} disagrees with "
                    f"l2_geometry ({self.l2_geometry.size_bytes} bytes); "
                    "drop the deprecated keyword"
                )
            if ways is not None and ways != self.l2_geometry.ways:
                raise ConfigurationError(
                    f"l2_ways={ways} disagrees with l2_geometry "
                    f"({self.l2_geometry.ways} ways); drop the "
                    "deprecated keyword"
                )
        object.__setattr__(
            self, "l2_capacity_bytes", self.l2_geometry.size_bytes
        )
        object.__setattr__(self, "l2_ways", self.l2_geometry.ways)

    @property
    def miss_latency_cycles(self) -> float:
        """Average L1-miss service latency, cycles (L2 hit/miss weighted)."""
        return (
            (1.0 - self.l2_miss_rate) * self.l2_latency_cycles
            + self.l2_miss_rate * self.memory_latency_cycles
        )

    def with_ways(self, ways: int) -> "CacheConfig":
        """Same configuration at a different associativity (Figure 11)."""
        import dataclasses

        return dataclasses.replace(
            self, geometry=self.geometry.with_ways(ways)
        )

    def with_geometry(self, geometry: CacheGeometry) -> "CacheConfig":
        """Same scheme/L2 knobs rebound to a different L1 organisation.

        The hit latency re-derives from the new geometry; everything
        else (schemes, L2, backing-store timing) carries over.
        """
        import dataclasses

        return dataclasses.replace(
            self, geometry=geometry, hit_latency_cycles=None
        )
