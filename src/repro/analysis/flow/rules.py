"""Whole-program FLOW rules.

Three families on top of the call graph and taint engine:

* **FLOW001-003, seed provenance** -- every generator reaching the
  sampling layers (``repro.variation`` / ``repro.technology`` /
  ``repro.engine.faults``) must be derivable from an explicit seed
  parameter.  The paper reproduction's bit-identity rests on one rule:
  results are a pure function of config and seed.  An ambient or
  hard-coded generator anywhere upstream of the samplers silently forks
  that seed space.
* **FLOW004-006, process-boundary flow** -- values flowing into
  :class:`~repro.engine.ParallelChipRunner` task payloads, pool
  initializers, or durable-queue task envelopes must be picklable by
  module-level name.  WS001/WS002 check the direct argument
  expressions; these rules chase the *indirect* flows (a helper that
  returns a frame-local callable, a local bound to one) that the
  single-module rules cannot see, and FLOW006 applies both layers to
  the service queue where no fork-inheritance escape hatch exists.

All findings carry ``flow_path`` -- the interprocedural chain that
justifies the report -- rendered by every reporter and preserved by
``--write-baseline``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.graph import (
    EDGE_DIRECT,
    CallGraph,
    get_call_graph,
)
from repro.analysis.flow.taint import (
    RngCreation,
    SeedProvenance,
    SinkPredicate,
    attr_chain,
    find_rng_creations,
    propagate_to_sinks,
)
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import Project, SourceModule
from repro.analysis.rules.worker_safety import POOL_METHODS, TASK_CONSTRUCTORS

#: Packages whose code performs the reproduction's seeded sampling.
SAMPLING_PACKAGES: Tuple[str, ...] = (
    "repro.variation",
    "repro.technology",
    "repro.engine.faults",
)

#: Legacy numpy.random factories that are explicitly seeded at the call
#: site (mirrors the DET002 set); everything else is ambient state.
_SEEDED_NUMPY_FACTORIES = {
    "default_rng", "Generator", "SeedSequence", "PCG64", "PCG64DXSM",
    "Philox", "MT19937", "SFC64", "BitGenerator",
}


def _in_sampling_package(module_name: str) -> bool:
    return any(
        module_name == pkg or module_name.startswith(pkg + ".")
        for pkg in SAMPLING_PACKAGES
    )


class _FlowRule(Rule):
    """Shared plumbing: graph access and path-carrying findings."""

    def _graph(self, project: Project) -> CallGraph:
        return get_call_graph(project)

    def _module_for(
        self, project: Project, module_name: str
    ) -> Optional[SourceModule]:
        return project.by_module_name(module_name)

    def _path_finding(
        self,
        module: SourceModule,
        line: int,
        col: int,
        message: str,
        flow_path: Tuple[str, ...],
    ) -> Finding:
        return Finding(
            path=module.display_path,
            line=line,
            col=col,
            rule=self.rule_id,
            message=message,
            snippet=module.snippet_at(line),
            flow_path=flow_path,
        )


class _SamplingSink(SinkPredicate):
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph

    def __call__(self, qualname: str) -> bool:
        info = self.graph.functions.get(qualname)
        return info is not None and _in_sampling_package(info.module)


def _creation_provenance_ok(
    provenance: SeedProvenance,
    creation: RngCreation,
    *,
    literal_ok: bool,
) -> bool:
    if not creation.seed_args:
        return False
    return any(
        provenance.seed_derived(
            argument, creation.qualname, literal_ok=literal_ok
        )
        for argument in creation.seed_args
    )


@register_rule
class UnseededRngReachesSamplerRule(_FlowRule):
    """FLOW001: an unprovable generator flows into sampling code."""

    rule_id = "FLOW001"
    name = "unseeded-rng-reaches-sampler"
    description = (
        "a numpy Generator / random.Random constructed without seed "
        "provenance flows (interprocedurally) into repro.variation / "
        "repro.technology / repro.engine.faults sampling code"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = self._graph(project)
        provenance = SeedProvenance(graph)
        sink = _SamplingSink(graph)
        findings: List[Finding] = []
        for creation in find_rng_creations(graph):
            if _in_sampling_package(creation.module):
                continue  # FLOW002's jurisdiction
            if _creation_provenance_ok(
                provenance, creation, literal_ok=True
            ):
                continue
            creation_node = self._creation_node(graph, creation)
            if creation_node is None:
                continue
            hits = propagate_to_sinks(
                graph, creation.qualname, creation_node, sink
            )
            module = self._module_for(project, creation.module)
            if module is None:
                continue
            for hit in hits:
                findings.append(self._path_finding(
                    module, creation.lineno, creation.col,
                    f"{creation.factory}() without seed provenance flows "
                    f"into sampling code {hit.sink_qualname}",
                    hit.path,
                ))
        return findings

    @staticmethod
    def _creation_node(
        graph: CallGraph, creation: RngCreation
    ) -> Optional[ast.AST]:
        module = graph.project.by_module_name(creation.module)
        if module is None:
            return None
        for node in ast.walk(module.tree):
            if id(node) == creation.node_id:
                return node
        return None


@register_rule
class SamplingRngProvenanceRule(_FlowRule):
    """FLOW002: RNG construction inside sampling code must thread the
    experiment's explicit seed."""

    rule_id = "FLOW002"
    name = "sampling-rng-without-seed-parameter"
    description = (
        "generators constructed inside repro.variation / repro.technology "
        "/ repro.engine.faults must derive their seed from an explicit "
        "seed parameter or attribute; hard-coded and absent seeds fork "
        "the run's seed space"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = self._graph(project)
        provenance = SeedProvenance(graph)
        findings: List[Finding] = []
        for creation in find_rng_creations(graph):
            if not _in_sampling_package(creation.module):
                continue
            if _creation_provenance_ok(
                provenance, creation, literal_ok=False
            ):
                continue
            module = self._module_for(project, creation.module)
            if module is None:
                continue
            detail = (
                "no seed argument" if not creation.seed_args
                else "seed is not derived from an explicit seed parameter"
            )
            findings.append(self._path_finding(
                module, creation.lineno, creation.col,
                f"{creation.factory}() in sampling code: {detail}",
                (f"{creation.path}:{creation.lineno} in {creation.qualname}",),
            ))
        return findings


@register_rule
class AmbientRngReachableFromSamplerRule(_FlowRule):
    """FLOW003: ambient global RNG reachable from sampling code."""

    rule_id = "FLOW003"
    name = "ambient-rng-reachable-from-sampler"
    description = (
        "a helper reachable from repro.variation / repro.technology / "
        "repro.engine.faults draws from interpreter-global RNG state "
        "(stdlib random.* or legacy numpy.random.*) -- the whole-program "
        "complement of DET001/DET002"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = self._graph(project)
        # Forward closure of every sampling-package function, with a
        # parent pointer so findings can print the witness chain.
        parent: Dict[str, Optional[str]] = {}
        stack: List[str] = []
        for qualname, info in graph.functions.items():
            if _in_sampling_package(info.module):
                parent[qualname] = None
                stack.append(qualname)
        while stack:
            current = stack.pop()
            for edge in graph.callees(current, kinds=(EDGE_DIRECT,)):
                if edge.callee not in parent:
                    parent[edge.callee] = current
                    stack.append(edge.callee)

        findings: List[Finding] = []
        for module in project:
            for owner, node, label in _ambient_rng_calls(graph, module):
                if owner not in parent:
                    continue
                chain: List[str] = []
                cursor: Optional[str] = owner
                while cursor is not None:
                    info = graph.functions[cursor]
                    chain.append(f"{info.path} in {cursor}")
                    cursor = parent[cursor]
                chain.reverse()
                entry = chain[0].split(" in ", 1)[1]
                findings.append(self._path_finding(
                    module, node.lineno, node.col_offset,
                    f"ambient RNG call {label} is reachable from "
                    f"sampling code {entry}",
                    tuple(chain),
                ))
        return findings


def _ambient_rng_calls(
    graph: CallGraph, module: SourceModule
) -> Iterable[Tuple[str, ast.Call, str]]:
    """(owner, call node, label) for every global-state RNG call."""
    random_aliases: Set[str] = set()
    numpy_aliases: Set[str] = set()
    from_random: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_aliases.add(alias.asname or "random")
                elif alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                from_random[alias.asname or alias.name] = alias.name
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        owner = graph.owner_of(node)
        if owner is None:
            continue
        chain = attr_chain(node.func)
        if chain is None:
            continue
        if len(chain) == 2 and chain[0] in random_aliases:
            if chain[1] != "Random":
                yield owner, node, f"random.{chain[1]}()"
        elif len(chain) == 1 and chain[0] in from_random:
            original = from_random[chain[0]]
            if original != "Random":
                yield owner, node, f"random.{original}()"
        elif (
            len(chain) == 3
            and chain[0] in numpy_aliases
            and chain[1] == "random"
            and chain[2] not in _SEEDED_NUMPY_FACTORIES
        ):
            yield owner, node, f"numpy.random.{chain[2]}()"


# ----------------------------------------------------------------------
# process-boundary flow
# ----------------------------------------------------------------------


def _frame_local_callables(
    graph: CallGraph, owner: str
) -> Dict[str, str]:
    """Names bound to frame-local callables inside ``owner``."""
    table: Dict[str, str] = {}
    node = graph.function_nodes.get(owner)
    if node is None:
        return table
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if graph.owner_of(sub) == owner:
                table[sub.name] = f"frame-local def {sub.name!r}"
        elif isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Lambda):
            if graph.owner_of(sub) != owner:
                continue
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    table[target.id] = f"lambda bound to {target.id!r}"
    return table


def _helper_returns_frame_local(
    graph: CallGraph, helper: str
) -> Optional[str]:
    """A reason string when ``helper`` returns a frame-local callable."""
    node = graph.function_nodes.get(helper)
    if node is None:
        return None
    locals_table = _frame_local_callables(graph, helper)
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Return) or sub.value is None:
            continue
        if graph.owner_of(sub) != helper:
            continue
        if isinstance(sub.value, ast.Lambda):
            return f"{helper}() returns a lambda"
        if isinstance(sub.value, ast.Name) and sub.value.id in locals_table:
            return f"{helper}() returns {locals_table[sub.value.id]}"
    return None


class _BoundaryFlowRule(_FlowRule):
    """Shared machinery for FLOW004/FLOW005."""

    def _indirect_unpicklable(
        self,
        graph: CallGraph,
        module: SourceModule,
        owner: str,
        argument: ast.AST,
    ) -> Optional[Tuple[str, Tuple[str, ...]]]:
        """(reason, flow path) when ``argument`` indirectly carries a
        frame-local callable."""

        def resolve_call(call: ast.Call) -> Optional[str]:
            if isinstance(call.func, ast.Name):
                return graph.resolve_local_name(
                    module.module_name, call.func.id
                )
            return None

        # helper() directly in argument position (incl. inside containers)
        for sub in ast.walk(argument):
            if isinstance(sub, ast.Call):
                helper = resolve_call(sub)
                if helper is not None:
                    reason = _helper_returns_frame_local(graph, helper)
                    if reason is not None:
                        info = graph.functions[helper]
                        return reason, (
                            f"{info.path}:{info.lineno} in {helper}",
                            f"{module.display_path}:{sub.lineno} in {owner}",
                        )
            elif isinstance(sub, ast.Name):
                # A local previously bound from such a helper call.
                provenance = SeedProvenance(graph)
                for value in provenance.assignments_of(owner).get(sub.id, []):
                    if isinstance(value, ast.Call):
                        helper = resolve_call(value)
                        if helper is None:
                            continue
                        reason = _helper_returns_frame_local(graph, helper)
                        if reason is not None:
                            info = graph.functions[helper]
                            return reason, (
                                f"{info.path}:{info.lineno} in {helper}",
                                f"{module.display_path}:{value.lineno} "
                                f"in {owner}",
                                f"{module.display_path}:{sub.lineno} "
                                f"in {owner}",
                            )
        return None


@register_rule
class TaintedTaskPayloadRule(_BoundaryFlowRule):
    """FLOW004: indirect frame-local callables in worker task payloads."""

    rule_id = "FLOW004"
    name = "tainted-task-payload"
    description = (
        "values flowing into ChipBuildTask/EvaluatorSpec/EvalTask "
        "payloads or pool submission calls must be picklable by "
        "module-level name; helpers returning frame-local callables are "
        "caught here even when WS001/WS002 cannot see them"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = self._graph(project)
        findings: List[Finding] = []
        for module in project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = _callee_name(node)
                is_payload = callee in TASK_CONSTRUCTORS
                is_pool = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in POOL_METHODS
                )
                if not (is_payload or is_pool):
                    continue
                owner = graph.owner_of(node)
                if owner is None:
                    continue
                what = (
                    "a worker task payload" if is_payload
                    else "a process-pool call"
                )
                arguments: List[ast.AST] = list(node.args)
                arguments.extend(kw.value for kw in node.keywords)
                for argument in arguments:
                    verdict = self._indirect_unpicklable(
                        graph, module, owner, argument
                    )
                    if verdict is not None:
                        reason, path = verdict
                        findings.append(self._path_finding(
                            module, argument.lineno, argument.col_offset,
                            f"{reason}; the result flows into {what} and "
                            "cannot be pickled into a worker process",
                            path,
                        ))
        return findings


#: Queue-payload sites: envelope construction and durable enqueueing.
#: Everything in an envelope is pickled to disk and unpickled by fleet
#: workers in *other* processes (possibly other hosts), so the WS001
#: constraints apply with no fork-inheritance escape hatch.
QUEUE_CONSTRUCTORS: Tuple[str, ...] = ("TaskEnvelope",)
QUEUE_METHODS: Tuple[str, ...] = ("enqueue",)


@register_rule
class TaintedQueuePayloadRule(_BoundaryFlowRule):
    """FLOW006: queue job payloads must pickle across process boundaries.

    The durable task queue (``repro.service.queue``) writes envelopes to
    disk for fleet workers that share no memory with the producer --
    unlike a forked pool, nothing frame-local can ever resolve.  This
    rule applies the WS001 direct checks (lambdas, frame-local
    definitions) plus the FLOW004 indirect chase (helpers returning
    frame-local callables) at every ``TaskEnvelope(...)`` construction
    and ``queue.enqueue(...)`` call.
    """

    rule_id = "FLOW006"
    name = "tainted-queue-payload"
    description = (
        "values flowing into TaskEnvelope(...) or DurableTaskQueue."
        "enqueue(...) are pickled to disk for workers in other "
        "processes; lambdas, frame-local callables, and helper-returned "
        "closures cannot cross that boundary"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = self._graph(project)
        findings: List[Finding] = []
        for module in project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = _callee_name(node)
                is_envelope = callee in QUEUE_CONSTRUCTORS
                is_enqueue = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in QUEUE_METHODS
                )
                if not (is_envelope or is_enqueue):
                    continue
                owner = graph.owner_of(node)
                if owner is None:
                    continue
                what = (
                    "a queue task envelope" if is_envelope
                    else "a durable-queue enqueue"
                )
                locals_table = _frame_local_callables(graph, owner)
                arguments: List[ast.AST] = list(node.args)
                arguments.extend(kw.value for kw in node.keywords)
                for argument in arguments:
                    finding = self._check_queue_argument(
                        graph, module, owner, argument, locals_table, what
                    )
                    if finding is not None:
                        findings.append(finding)
        return findings

    def _check_queue_argument(
        self,
        graph: CallGraph,
        module: SourceModule,
        owner: str,
        argument: ast.AST,
        locals_table: Dict[str, str],
        what: str,
    ) -> Optional[Finding]:
        reason: Optional[str] = None
        path: Tuple[str, ...] = (
            f"{module.display_path}:{argument.lineno} in {owner}",
        )
        for sub in ast.walk(argument):
            if isinstance(sub, ast.Lambda):
                reason = "a lambda"
                break
        if reason is None and isinstance(argument, ast.Name):
            if argument.id in locals_table:
                reason = locals_table[argument.id]
        if reason is None:
            verdict = self._indirect_unpicklable(
                graph, module, owner, argument
            )
            if verdict is not None:
                reason, path = verdict
        if reason is None:
            return None
        return self._path_finding(
            module, argument.lineno, argument.col_offset,
            f"{reason} flows into {what} and cannot be unpickled by a "
            "fleet worker process",
            path,
        )


@register_rule
class TaintedPoolInitializerRule(_BoundaryFlowRule):
    """FLOW005: pool initializers must be module-level callables."""

    rule_id = "FLOW005"
    name = "tainted-pool-initializer"
    description = (
        "initializer=/initargs= values handed to a process pool run in "
        "every worker before any task; lambdas, frame-local callables, "
        "and helper-returned closures cannot cross that boundary"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = self._graph(project)
        findings: List[Finding] = []
        for module in project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                keywords = {
                    kw.arg: kw.value for kw in node.keywords
                    if kw.arg is not None
                }
                if "initializer" not in keywords:
                    continue
                owner = graph.owner_of(node)
                if owner is None:
                    continue
                locals_table = _frame_local_callables(graph, owner)
                targets: List[ast.AST] = [keywords["initializer"]]
                initargs = keywords.get("initargs")
                if isinstance(initargs, (ast.Tuple, ast.List)):
                    targets.extend(initargs.elts)
                elif initargs is not None:
                    targets.append(initargs)
                for target in targets:
                    finding = self._check_initializer_value(
                        graph, module, owner, target, locals_table
                    )
                    if finding is not None:
                        findings.append(finding)
        return findings

    def _check_initializer_value(
        self,
        graph: CallGraph,
        module: SourceModule,
        owner: str,
        value: ast.AST,
        locals_table: Dict[str, str],
    ) -> Optional[Finding]:
        reason: Optional[str] = None
        path: Tuple[str, ...] = (
            f"{module.display_path}:{value.lineno} in {owner}",
        )
        if isinstance(value, ast.Lambda):
            reason = "a lambda"
        elif isinstance(value, ast.Name):
            if value.id in locals_table:
                reason = locals_table[value.id]
            else:
                resolved = graph.resolve_local_name(
                    module.module_name, value.id
                )
                if resolved is not None:
                    fn_node = graph.function_nodes.get(resolved)
                    if fn_node is not None:
                        enclosing = graph.owner_of(fn_node)
                        enclosing_info = (
                            graph.functions.get(enclosing)
                            if enclosing is not None else None
                        )
                        if (
                            enclosing_info is not None
                            and not enclosing_info.is_module_body
                        ):
                            reason = f"nested function {value.id!r}"
        if reason is None:
            verdict = self._indirect_unpicklable(
                graph, module, owner, value
            )
            if verdict is not None:
                reason, path = verdict
        if reason is None:
            return None
        return self._path_finding(
            module, value.lineno, value.col_offset,
            f"{reason} handed to a pool initializer cannot be pickled "
            "into worker processes",
            path,
        )


def _callee_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


__all__ = [
    "AmbientRngReachableFromSamplerRule",
    "QUEUE_CONSTRUCTORS",
    "QUEUE_METHODS",
    "SAMPLING_PACKAGES",
    "SamplingRngProvenanceRule",
    "TaintedPoolInitializerRule",
    "TaintedQueuePayloadRule",
    "TaintedTaskPayloadRule",
    "UnseededRngReachesSamplerRule",
]
