"""Interprocedural taint and seed-provenance engine.

Two analyses share the :class:`~repro.analysis.flow.graph.CallGraph`:

* **seed provenance** -- every RNG construction site
  (``numpy.random.default_rng`` / ``numpy.random.Generator`` /
  ``random.Random``) is classified by where its seed argument comes
  from.  The check is *demand-driven and interprocedural*: a seed that
  is a plain parameter of the enclosing function is proven by walking
  the (direct) call sites and checking the argument each one passes,
  recursively, so ``chip_from_seed(chip_id, chip_seed)`` is proven by
  the ``reserve_chip_seeds`` draw feeding it two frames up.

* **value taint** -- a tainted value (an unseeded RNG, a frame-local
  callable) is propagated forward through local assignments, argument
  binding at direct call edges, and function returns, until it reaches
  a sink or the frontier is exhausted.  Paths are recorded so findings
  can print the full call chain.

Both walks use only ``direct`` edges: conservative name-match edges are
for reachability (impact analysis), not for taint, where they would
drown real findings in false positives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.graph import (
    EDGE_DIRECT,
    CallGraph,
)
from repro.analysis.source import SourceModule

#: Parameter / attribute names accepted as explicit seed carriers.
SEED_NAME_RE = re.compile(r"seed", re.IGNORECASE)

#: Methods on an already-seeded generator whose result is itself
#: seed-derived (the serial seed-reservation idiom).
DERIVED_DRAW_METHODS = {
    "integers", "spawn", "random", "normal", "choice", "bit_generator",
    "bytes", "jumped",
}

#: Pure transforms through which seed-derivation is preserved.
SEED_TRANSPARENT_CALLS = {"int", "abs", "hash", "crc32", "adler32", "round"}

MAX_PROVENANCE_DEPTH = 24


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.insert(0, node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.insert(0, node.id)
        return parts
    return None


@dataclass(frozen=True)
class RngCreation:
    """One RNG construction site."""

    qualname: str
    """Function whose body constructs the generator."""
    module: str
    path: str
    lineno: int
    col: int
    factory: str
    """Human-readable factory (``default_rng`` / ``Generator`` /
    ``random.Random``)."""
    node_id: int
    seed_args: Tuple[ast.AST, ...]


def _rng_factory(call: ast.Call, module: SourceModule,
                 numpy_aliases: Set[str], random_aliases: Set[str],
                 from_names: Dict[str, str]) -> Optional[str]:
    chain = attr_chain(call.func)
    if chain is None:
        return None
    if len(chain) == 3 and chain[0] in numpy_aliases and chain[1] == "random":
        if chain[2] in ("default_rng", "Generator"):
            return chain[2]
        return None
    if len(chain) == 2 and chain[0] in random_aliases and chain[1] == "Random":
        return "random.Random"
    if len(chain) == 1:
        original = from_names.get(chain[0])
        if original in ("default_rng", "Generator"):
            return original
        if original == "Random":
            return "random.Random"
    return None


def _module_rng_aliases(
    module: SourceModule,
) -> Tuple[Set[str], Set[str], Dict[str, str]]:
    numpy_aliases: Set[str] = set()
    random_aliases: Set[str] = set()
    from_names: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name == "random":
                    random_aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            if node.module in ("numpy.random", "random"):
                for alias in node.names:
                    from_names[alias.asname or alias.name] = alias.name
    return numpy_aliases, random_aliases, from_names


def find_rng_creations(graph: CallGraph) -> List[RngCreation]:
    """Every RNG construction site in the project, in file order."""
    creations: List[RngCreation] = []
    for module in graph.project:
        numpy_aliases, random_aliases, from_names = _module_rng_aliases(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            factory = _rng_factory(
                node, module, numpy_aliases, random_aliases, from_names
            )
            if factory is None:
                continue
            owner = graph.owner_of(node)
            if owner is None:
                continue
            args: List[ast.AST] = list(node.args)
            args.extend(kw.value for kw in node.keywords)
            creations.append(RngCreation(
                qualname=owner,
                module=module.module_name,
                path=module.display_path,
                lineno=node.lineno,
                col=node.col_offset,
                factory=factory,
                node_id=id(node),
                seed_args=tuple(args),
            ))
    return creations


# ----------------------------------------------------------------------
# seed provenance
# ----------------------------------------------------------------------


class SeedProvenance:
    """Demand-driven interprocedural seed-derivation proofs."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._assignments: Dict[str, Dict[str, List[ast.AST]]] = {}
        self._params: Dict[str, List[str]] = {}

    # -- per-function tables -------------------------------------------

    def _function_node(self, qualname: str) -> Optional[ast.AST]:
        return self.graph.function_nodes.get(qualname)

    def params_of(self, qualname: str) -> List[str]:
        if qualname not in self._params:
            node = self._function_node(qualname)
            names: List[str] = []
            if node is not None and hasattr(node, "args"):
                arguments = node.args
                names = [a.arg for a in (
                    *arguments.posonlyargs, *arguments.args,
                    *arguments.kwonlyargs,
                )]
            self._params[qualname] = names
        return self._params[qualname]

    def assignments_of(self, qualname: str) -> Dict[str, List[ast.AST]]:
        """Local name -> expressions assigned to it inside ``qualname``."""
        if qualname not in self._assignments:
            table: Dict[str, List[ast.AST]] = {}
            node = self._function_node(qualname)
            if node is not None:
                for sub in ast.walk(node):
                    if self.graph.owner_of(sub) != qualname:
                        continue
                    targets: List[ast.AST] = []
                    value: Optional[ast.AST] = None
                    if isinstance(sub, ast.Assign):
                        targets, value = sub.targets, sub.value
                    elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                        targets, value = [sub.target], sub.value
                    elif isinstance(sub, ast.NamedExpr):
                        targets, value = [sub.target], sub.value
                    if value is None:
                        continue
                    for target in targets:
                        if isinstance(target, ast.Name):
                            table.setdefault(target.id, []).append(value)
            self._assignments[qualname] = table
        return self._assignments[qualname]

    def _returns_of(self, qualname: str) -> List[ast.AST]:
        node = self._function_node(qualname)
        if node is None:
            return []
        return [
            sub.value for sub in ast.walk(node)
            if isinstance(sub, ast.Return) and sub.value is not None
            and self.graph.owner_of(sub) == qualname
        ]

    # -- the proof ------------------------------------------------------

    def seed_derived(
        self,
        expr: ast.AST,
        owner: str,
        *,
        literal_ok: bool,
        _stack: Optional[Set[Tuple[str, str]]] = None,
        _depth: int = 0,
    ) -> bool:
        """Can ``expr`` (evaluated inside ``owner``) be proven to derive
        from an explicit seed?

        ``literal_ok`` distinguishes the two policies: reproducibility
        (FLOW001: a constant literal is a fixed seed, fine) and
        provenance (FLOW002: sampling code must thread the *experiment's*
        seed parameter; a hard-coded literal silently forks the seed
        space).
        """
        if _depth > MAX_PROVENANCE_DEPTH:
            return False
        stack = _stack if _stack is not None else set()

        if isinstance(expr, ast.Constant):
            return literal_ok
        if isinstance(expr, ast.Name):
            return self._name_seed_derived(
                expr.id, owner, literal_ok=literal_ok,
                _stack=stack, _depth=_depth,
            )
        if isinstance(expr, ast.Attribute):
            if SEED_NAME_RE.search(expr.attr):
                return True
            chain = attr_chain(expr)
            if chain is not None and chain[0] == "self":
                return self._self_attribute_seed_derived(
                    chain, owner, literal_ok=literal_ok,
                    _stack=stack, _depth=_depth,
                )
            return False
        if isinstance(expr, (ast.Tuple, ast.List)):
            return any(
                self.seed_derived(
                    element, owner, literal_ok=literal_ok,
                    _stack=stack, _depth=_depth + 1,
                )
                for element in expr.elts
            )
        if isinstance(expr, ast.BinOp):
            return any(
                self.seed_derived(
                    side, owner, literal_ok=literal_ok,
                    _stack=stack, _depth=_depth + 1,
                )
                for side in (expr.left, expr.right)
            )
        if isinstance(expr, ast.UnaryOp):
            return self.seed_derived(
                expr.operand, owner, literal_ok=literal_ok,
                _stack=stack, _depth=_depth + 1,
            )
        if isinstance(expr, ast.Call):
            return self._call_seed_derived(
                expr, owner, literal_ok=literal_ok,
                _stack=stack, _depth=_depth,
            )
        if isinstance(expr, ast.Subscript):
            return self.seed_derived(
                expr.value, owner, literal_ok=literal_ok,
                _stack=stack, _depth=_depth + 1,
            )
        return False

    def _name_seed_derived(
        self, name: str, owner: str, *, literal_ok: bool,
        _stack: Set[Tuple[str, str]], _depth: int,
    ) -> bool:
        key = (owner, name)
        if key in _stack:
            return False
        _stack.add(key)
        try:
            if SEED_NAME_RE.search(name):
                return True
            assigned = self.assignments_of(owner).get(name)
            if assigned:
                return any(
                    self.seed_derived(
                        value, owner, literal_ok=literal_ok,
                        _stack=_stack, _depth=_depth + 1,
                    )
                    for value in assigned
                )
            if name in self.params_of(owner):
                return self._param_seed_derived(
                    owner, name, literal_ok=literal_ok,
                    _stack=_stack, _depth=_depth,
                )
            # Module-level constant?
            module_body = f"{self.graph.functions[owner].module}.<module>"
            if owner != module_body and module_body in self.graph.functions:
                assigned = self.assignments_of(module_body).get(name)
                if assigned:
                    return any(
                        self.seed_derived(
                            value, module_body, literal_ok=literal_ok,
                            _stack=_stack, _depth=_depth + 1,
                        )
                        for value in assigned
                    )
            return False
        finally:
            _stack.discard(key)

    def _param_seed_derived(
        self, owner: str, param: str, *, literal_ok: bool,
        _stack: Set[Tuple[str, str]], _depth: int,
    ) -> bool:
        """Prove a parameter by checking every known (direct) call site."""
        params = self.params_of(owner)
        index = params.index(param)
        skip_self = bool(params) and params[0] in ("self", "cls")
        call_sites = self.graph.callers(owner, kinds=(EDGE_DIRECT,))
        if not call_sites:
            return False
        node = self._function_node(owner)
        default_expr: Optional[ast.AST] = None
        if node is not None and hasattr(node, "args"):
            arguments = node.args
            positional = [*arguments.posonlyargs, *arguments.args]
            defaults = list(arguments.defaults)
            offset = len(positional) - len(defaults)
            for i, arg in enumerate(positional):
                if arg.arg == param and i >= offset:
                    default_expr = defaults[i - offset]
            for arg, default in zip(arguments.kwonlyargs, arguments.kw_defaults):
                if arg.arg == param and default is not None:
                    default_expr = default
        checked_any = False
        for edge in call_sites:
            call = self._call_at(edge.caller, edge.lineno, owner)
            if call is None:
                continue
            argument = self._bound_argument(
                call, index - (1 if skip_self else 0), param
            )
            if argument is None:
                argument = default_expr
            if argument is None:
                continue
            checked_any = True
            if not self.seed_derived(
                argument, edge.caller, literal_ok=literal_ok,
                _stack=_stack, _depth=_depth + 1,
            ):
                return False
        return checked_any

    def _call_at(
        self, caller: str, lineno: int, callee: str
    ) -> Optional[ast.Call]:
        node = self.graph.function_nodes.get(caller)
        search_root: Optional[ast.AST] = node
        if node is None:
            info = self.graph.functions.get(caller)
            if info is None or not info.is_module_body:
                return None
            module = self.graph.project.by_module_name(info.module)
            if module is None:
                return None
            search_root = module.tree
        candidates = [
            sub for sub in ast.walk(search_root)
            if isinstance(sub, ast.Call) and sub.lineno == lineno
            and self.graph.owner_of(sub) == caller
        ]
        # Chained calls share a line (``make_rng(seed).integers(0, 10)``):
        # prefer the call whose callee name matches.
        leaf = callee.rsplit(".", 1)[-1]
        for sub in candidates:
            name = _call_name(sub)
            if name == leaf:
                return sub
        return candidates[0] if candidates else None

    @staticmethod
    def _bound_argument(
        call: ast.Call, index: int, param: str
    ) -> Optional[ast.AST]:
        for keyword in call.keywords:
            if keyword.arg == param:
                return keyword.value
        if 0 <= index < len(call.args):
            candidate = call.args[index]
            if isinstance(candidate, ast.Starred):
                return None
            return candidate
        return None

    def _self_attribute_seed_derived(
        self, chain: List[str], owner: str, *, literal_ok: bool,
        _stack: Set[Tuple[str, str]], _depth: int,
    ) -> bool:
        if len(chain) != 2:
            return False
        attr = chain[1]
        class_prefix, _, _ = owner.rpartition(".")
        key = (class_prefix, f"self.{attr}")
        if key in _stack:
            return False
        _stack.add(key)
        try:
            for suffix in ("__init__", "__post_init__"):
                ctor = f"{class_prefix}.{suffix}"
                node = self.graph.function_nodes.get(ctor)
                if node is None:
                    continue
                for sub in ast.walk(node):
                    value: Optional[ast.AST] = None
                    if isinstance(sub, ast.Assign):
                        targets, value = sub.targets, sub.value
                    elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                        targets, value = [sub.target], sub.value
                    else:
                        continue
                    for target in targets:
                        target_chain = attr_chain(target)
                        if target_chain == ["self", attr]:
                            if self.seed_derived(
                                value, ctor, literal_ok=literal_ok,
                                _stack=_stack, _depth=_depth + 1,
                            ):
                                return True
            return False
        finally:
            _stack.discard(key)

    def _call_seed_derived(
        self, call: ast.Call, owner: str, *, literal_ok: bool,
        _stack: Set[Tuple[str, str]], _depth: int,
    ) -> bool:
        chain = attr_chain(call.func)
        if chain is not None and chain[-1] in DERIVED_DRAW_METHODS:
            receiver = call.func
            assert isinstance(receiver, ast.Attribute)
            return self._receiver_is_seeded_rng(
                receiver.value, owner,
                _stack=_stack, _depth=_depth,
            )
        if chain is not None and chain[-1] == "SeedSequence":
            if not call.args and not call.keywords:
                return False
            return any(
                self.seed_derived(
                    a, owner, literal_ok=literal_ok,
                    _stack=_stack, _depth=_depth + 1,
                )
                for a in (*call.args, *[k.value for k in call.keywords])
            )
        if chain is not None and chain[-1] in SEED_TRANSPARENT_CALLS:
            return any(
                self.seed_derived(
                    a, owner, literal_ok=literal_ok,
                    _stack=_stack, _depth=_depth + 1,
                )
                for a in call.args
            )
        # A project function: its return value is seed-derived when every
        # return expression is.
        if isinstance(call.func, ast.Name):
            info = self.graph.functions.get(owner)
            if info is not None:
                resolved = self.graph.resolve_local_name(
                    info.module, call.func.id
                )
                if resolved is not None:
                    key = (resolved, "<return>")
                    if key in _stack:
                        return False
                    _stack.add(key)
                    try:
                        returns = self._returns_of(resolved)
                        return bool(returns) and all(
                            self.seed_derived(
                                value, resolved, literal_ok=literal_ok,
                                _stack=_stack, _depth=_depth + 1,
                            )
                            for value in returns
                        )
                    finally:
                        _stack.discard(key)
        return False

    def _receiver_is_seeded_rng(
        self, receiver: ast.AST, owner: str, *,
        _stack: Set[Tuple[str, str]], _depth: int,
    ) -> bool:
        """Is ``receiver`` (of a draw method) itself a seeded generator?"""
        if _depth > MAX_PROVENANCE_DEPTH:
            return False
        info = self.graph.functions.get(owner)
        module = (
            self.graph.project.by_module_name(info.module)
            if info is not None else None
        )
        if isinstance(receiver, ast.Call) and module is not None:
            numpy_aliases, random_aliases, from_names = _module_rng_aliases(
                module
            )
            factory = _rng_factory(
                receiver, module, numpy_aliases, random_aliases, from_names
            )
            if factory is not None:
                args = [*receiver.args, *[k.value for k in receiver.keywords]]
                return bool(args) and any(
                    self.seed_derived(
                        a, owner, literal_ok=True,
                        _stack=_stack, _depth=_depth + 1,
                    )
                    for a in args
                )
        if isinstance(receiver, ast.Name):
            if SEED_NAME_RE.search(receiver.id) or "rng" in receiver.id.lower():
                assigned = self.assignments_of(owner).get(receiver.id)
                if assigned:
                    return any(
                        self._receiver_is_seeded_rng(
                            value, owner, _stack=_stack, _depth=_depth + 1,
                        )
                        or self.seed_derived(
                            value, owner, literal_ok=True,
                            _stack=_stack, _depth=_depth + 1,
                        )
                        for value in assigned
                    )
                # An rng-named parameter: trust the caller seeded it --
                # unseeded construction is flagged at its creation site.
                return True
        if isinstance(receiver, ast.Attribute):
            chain = attr_chain(receiver)
            if chain is not None and (
                "rng" in chain[-1].lower() or SEED_NAME_RE.search(chain[-1])
            ):
                if chain[0] == "self":
                    return True
                return True
        return False


# ----------------------------------------------------------------------
# forward value taint
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaintHit:
    """A tainted value reaching a sink, with the call path that got it
    there."""

    sink_qualname: str
    path: Tuple[str, ...]
    lineno: int
    col: int
    source_path: str


def propagate_to_sinks(
    graph: CallGraph,
    source_owner: str,
    source_node: ast.AST,
    is_sink: "SinkPredicate",
    *,
    max_depth: int = 12,
) -> List[TaintHit]:
    """Follow ``source_node``'s value from ``source_owner`` to sinks.

    Tracks: direct use as a call argument, assignment to locals, and
    returns (the caller's call-site result becomes tainted).  Direct
    edges only.
    """
    source_info = graph.functions.get(source_owner)
    if source_info is None:
        return []
    hits: List[TaintHit] = []
    seen: Set[Tuple[str, str]] = set()

    # frontier entries: (owner, tainted local names, path so far)
    frontier: List[Tuple[str, Set[str], Tuple[str, ...]]] = []

    def describe(owner: str, lineno: int) -> str:
        info = graph.functions[owner]
        return f"{info.path}:{lineno} in {owner}"

    initial_names = _names_bound_to(graph, source_owner, source_node)
    frontier.append((
        source_owner,
        initial_names,
        (describe(source_owner, getattr(source_node, "lineno", 1)),),
    ))

    while frontier:
        owner, names, path = frontier.pop()
        if len(path) > max_depth:
            continue
        marker = (owner, ",".join(sorted(names)))
        if marker in seen:
            continue
        seen.add(marker)
        root = _search_root(graph, owner)
        if root is None:
            continue
        for node in ast.walk(root):
            if graph.owner_of(node) != owner:
                continue
            if isinstance(node, ast.Call):
                tainted_args = _tainted_arguments(node, names, source_node)
                if not tainted_args:
                    continue
                callees = graph.callees(owner, kinds=(EDGE_DIRECT,))
                matches = [e for e in callees if e.lineno == node.lineno]
                for edge in matches:
                    step = describe(owner, node.lineno)
                    if is_sink(edge.callee):
                        hits.append(TaintHit(
                            sink_qualname=edge.callee,
                            path=(*path, step, f"sink {edge.callee}"),
                            lineno=node.lineno,
                            col=node.col_offset,
                            source_path=graph.functions[owner].path,
                        ))
                        continue
                    bound = _bind_parameters(
                        graph, edge.callee, node, tainted_args
                    )
                    if bound:
                        frontier.append((edge.callee, bound, (*path, step)))
            elif isinstance(node, ast.Return) and node.value is not None:
                if _expr_tainted(node.value, names, source_node):
                    for edge in graph.callers(owner, kinds=(EDGE_DIRECT,)):
                        caller_call = _call_on_line(
                            graph, edge.caller, edge.lineno, callee=owner
                        )
                        if caller_call is None:
                            continue
                        bound = _names_bound_to(
                            graph, edge.caller, caller_call
                        )
                        if bound:
                            frontier.append((
                                edge.caller, bound,
                                (*path, describe(owner, node.lineno)),
                            ))
    hits.sort(key=lambda h: (h.source_path, h.lineno, h.col, h.sink_qualname))
    return hits


class SinkPredicate:
    """Callable deciding whether a qualname is a taint sink."""

    def __call__(self, qualname: str) -> bool:  # pragma: no cover
        raise NotImplementedError


def _search_root(graph: CallGraph, owner: str) -> Optional[ast.AST]:
    node = graph.function_nodes.get(owner)
    if node is not None:
        return node
    info = graph.functions.get(owner)
    if info is None or not info.is_module_body:
        return None
    module = graph.project.by_module_name(info.module)
    return module.tree if module is not None else None


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _call_on_line(
    graph: CallGraph, owner: str, lineno: int,
    callee: Optional[str] = None,
) -> Optional[ast.Call]:
    root = _search_root(graph, owner)
    if root is None:
        return None
    candidates = [
        sub for sub in ast.walk(root)
        if isinstance(sub, ast.Call)
        and sub.lineno == lineno
        and graph.owner_of(sub) == owner
    ]
    if callee is not None:
        leaf = callee.rsplit(".", 1)[-1]
        for sub in candidates:
            if _call_name(sub) == leaf:
                return sub
    return candidates[0] if candidates else None


def _names_bound_to(
    graph: CallGraph, owner: str, value_node: ast.AST
) -> Set[str]:
    """Local names assigned (directly) from ``value_node``."""
    names: Set[str] = set()
    root = _search_root(graph, owner)
    if root is None:
        return names
    for sub in ast.walk(root):
        if graph.owner_of(sub) != owner:
            continue
        targets: List[ast.AST] = []
        if isinstance(sub, ast.Assign) and sub.value is value_node:
            targets = sub.targets
        elif isinstance(sub, ast.AnnAssign) and sub.value is value_node:
            targets = [sub.target]
        elif isinstance(sub, ast.NamedExpr) and sub.value is value_node:
            targets = [sub.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _expr_tainted(
    expr: ast.AST, names: Set[str], source_node: ast.AST
) -> bool:
    for sub in ast.walk(expr):
        if sub is source_node:
            return True
        if isinstance(sub, ast.Name) and sub.id in names:
            return True
    return False


def _tainted_arguments(
    call: ast.Call, names: Set[str], source_node: ast.AST
) -> List[Tuple[Optional[int], Optional[str]]]:
    """Which of ``call``'s arguments carry taint.

    Returns ``(positional index, keyword name)`` pairs.
    """
    tainted: List[Tuple[Optional[int], Optional[str]]] = []
    for index, argument in enumerate(call.args):
        if _expr_tainted(argument, names, source_node):
            tainted.append((index, None))
    for keyword in call.keywords:
        if _expr_tainted(keyword.value, names, source_node):
            tainted.append((None, keyword.arg))
    return tainted


def _bind_parameters(
    graph: CallGraph,
    callee: str,
    call: ast.Call,
    tainted_args: Sequence[Tuple[Optional[int], Optional[str]]],
) -> Set[str]:
    node = graph.function_nodes.get(callee)
    if node is None or not hasattr(node, "args"):
        return set()
    arguments = node.args
    positional = [a.arg for a in (*arguments.posonlyargs, *arguments.args)]
    keyword_only = [a.arg for a in arguments.kwonlyargs]
    offset = 1 if positional and positional[0] in ("self", "cls") else 0
    bound: Set[str] = set()
    for index, keyword in tainted_args:
        if keyword is not None:
            if keyword in positional or keyword in keyword_only:
                bound.add(keyword)
        elif index is not None:
            shifted = index + offset
            if shifted < len(positional):
                bound.add(positional[shifted])
    return bound


__all__ = [
    "DERIVED_DRAW_METHODS",
    "RngCreation",
    "SEED_NAME_RE",
    "SeedProvenance",
    "SinkPredicate",
    "TaintHit",
    "attr_chain",
    "find_rng_creations",
    "propagate_to_sinks",
]
