"""Whole-program import/call graph over a parsed :class:`Project`.

The graph is the substrate under the interprocedural FLOW rules and the
``impact`` subcommand: one :class:`FunctionInfo` per function, method,
and module body, connected by conservative :class:`CallEdge` s.

Edge extraction is deliberately an over-approximation, in three
confidence tiers:

* ``direct`` -- the callee was resolved through the module's imports
  (including facade re-export chains such as ``from repro import
  evaluate_many``), a module-level definition, or a ``self.method()``
  call on the enclosing class.  These edges are precise enough for the
  taint engine to walk.
* ``name`` -- an attribute call ``obj.attr(...)`` whose receiver the
  analysis cannot type links to *every* project function or method named
  ``attr``.  This is what lets reachability see through registry
  indirection (``experiment.run(context)`` reaches every driver's
  ``run``).
* ``ref`` -- a bare reference to a known function that is not itself a
  call (``Experiment(run=run)``, ``pool.submit(worker_fn, ...)``) --
  the function may be invoked anywhere downstream, so impact analysis
  must assume it is.

``impact`` walks all three tiers; the FLOW taint rules walk ``direct``
edges only, trading recall for a tolerable false-positive rate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.source import Project, SourceModule

MODULE_BODY = "<module>"
"""Pseudo-function name covering a module's top-level statements."""

EDGE_DIRECT = "direct"
EDGE_NAME = "name"
EDGE_REF = "ref"

ALL_EDGE_KINDS: Tuple[str, ...] = (EDGE_DIRECT, EDGE_NAME, EDGE_REF)


@dataclass(frozen=True)
class FunctionInfo:
    """One node of the call graph: a function, method, or module body."""

    qualname: str
    """Fully dotted name (``repro.core.batcheval.evaluate`` or
    ``repro.variation.montecarlo.VariationSampler.sample_chip``); module
    bodies use the ``<module>`` suffix."""
    module: str
    path: str
    name: str
    lineno: int
    end_lineno: int
    class_name: Optional[str] = None

    @property
    def is_module_body(self) -> bool:
        return self.name == MODULE_BODY


@dataclass(frozen=True)
class CallEdge:
    """One conservative caller -> callee edge."""

    caller: str
    callee: str
    kind: str
    lineno: int


@dataclass
class CallGraph:
    """The whole-program function index plus its call edges."""

    project: Project
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    by_name: Dict[str, List[str]] = field(default_factory=dict)
    edges: Dict[str, List[CallEdge]] = field(default_factory=dict)
    reverse_edges: Dict[str, List[CallEdge]] = field(default_factory=dict)
    imports: Dict[str, Dict[str, str]] = field(default_factory=dict)
    """Per module: local name -> dotted target it was imported as."""
    function_nodes: Dict[str, ast.AST] = field(default_factory=dict)
    """qualname -> defining AST node (absent for module bodies)."""
    owner_of_node: Dict[int, str] = field(default_factory=dict)
    """id(ast node) -> qualname of the innermost enclosing function."""

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def callees(
        self, qualname: str, kinds: Optional[Sequence[str]] = None
    ) -> List[CallEdge]:
        selected = self.edges.get(qualname, [])
        if kinds is None:
            return selected
        allowed = set(kinds)
        return [edge for edge in selected if edge.kind in allowed]

    def callers(
        self, qualname: str, kinds: Optional[Sequence[str]] = None
    ) -> List[CallEdge]:
        selected = self.reverse_edges.get(qualname, [])
        if kinds is None:
            return selected
        allowed = set(kinds)
        return [edge for edge in selected if edge.kind in allowed]

    def reachable_from(
        self, entry: str, kinds: Optional[Sequence[str]] = None
    ) -> Set[str]:
        """Every function reachable from ``entry`` (inclusive)."""
        seen: Set[str] = set()
        stack = [entry]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.callees(current, kinds):
                if edge.callee not in seen:
                    stack.append(edge.callee)
        return seen

    def function_at(self, module_name: str, line: int) -> Optional[FunctionInfo]:
        """Innermost function of ``module_name`` covering ``line``."""
        best: Optional[FunctionInfo] = None
        for info in self.functions.values():
            if info.module != module_name:
                continue
            if not (info.lineno <= line <= info.end_lineno):
                continue
            if best is None or (
                info.end_lineno - info.lineno < best.end_lineno - best.lineno
            ):
                best = info
        return best

    def functions_in_module(self, module_name: str) -> List[FunctionInfo]:
        return [
            info for info in self.functions.values()
            if info.module == module_name
        ]

    def owner_of(self, node: ast.AST) -> Optional[str]:
        return self.owner_of_node.get(id(node))

    def resolve_local_name(self, module: str, name: str) -> Optional[str]:
        """What dotted target ``name`` means at module scope, if known."""
        candidate = f"{module}.{name}"
        if candidate in self.functions:
            return candidate
        imported = self.imports.get(module, {}).get(name)
        if imported is None:
            return None
        return self._resolve_export(imported)

    def _resolve_export(self, dotted: str, _depth: int = 0) -> Optional[str]:
        """Follow facade re-export chains to a defining function."""
        if _depth > 16:
            return None
        if dotted in self.functions:
            return dotted
        head, _, leaf = dotted.rpartition(".")
        if not head:
            return None
        forwarded = self.imports.get(head, {}).get(leaf)
        if forwarded is not None and forwarded != dotted:
            return self._resolve_export(forwarded, _depth + 1)
        return None


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------


def _module_imports(module: SourceModule) -> Dict[str, str]:
    table: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                # Relative imports: resolve against the package path.
                package_parts = module.module_name.split(".")
                # ``from . import x`` inside repro/engine/__init__ has
                # module_name repro.engine, level 1 -> base repro.engine.
                if module.path.name == "__init__.py":
                    base_parts = package_parts[: len(package_parts) - node.level + 1]
                else:
                    base_parts = package_parts[: len(package_parts) - node.level]
                base = ".".join(
                    part for part in base_parts if part
                )
                prefix = f"{base}.{node.module}" if node.module else base
            else:
                prefix = node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{prefix}.{alias.name}"
    return table


class _FunctionIndexer(ast.NodeVisitor):
    """First pass: one FunctionInfo per def/class-method/module body."""

    def __init__(self, module: SourceModule, graph: CallGraph) -> None:
        self.module = module
        self.graph = graph
        self.scope: List[str] = []
        self.class_stack: List[str] = []

    def _add(self, node: ast.AST, name: str) -> str:
        qualname = ".".join([self.module.module_name, *self.scope, name])
        end = getattr(node, "end_lineno", None) or node.lineno
        info = FunctionInfo(
            qualname=qualname,
            module=self.module.module_name,
            path=self.module.display_path,
            name=name,
            lineno=node.lineno,
            end_lineno=end,
            class_name=self.class_stack[-1] if self.class_stack else None,
        )
        self.graph.functions[qualname] = info
        self.graph.by_name.setdefault(name, []).append(qualname)
        self.graph.function_nodes[qualname] = node
        return qualname

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        name = getattr(node, "name")
        self._add(node, name)
        self.scope.append(name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()


def _index_module(module: SourceModule, graph: CallGraph) -> None:
    body_qualname = f"{module.module_name}.{MODULE_BODY}"
    graph.functions[body_qualname] = FunctionInfo(
        qualname=body_qualname,
        module=module.module_name,
        path=module.display_path,
        name=MODULE_BODY,
        lineno=1,
        end_lineno=max(len(module.lines), 1),
    )
    _FunctionIndexer(module, graph).visit(module.tree)


def _assign_owners(module: SourceModule, graph: CallGraph) -> None:
    """Map every AST node to the innermost enclosing function qualname."""
    body_qualname = f"{module.module_name}.{MODULE_BODY}"

    def walk(node: ast.AST, owner: str, scope: List[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_qual = ".".join(
                    [module.module_name, *scope, child.name]
                )
                graph.owner_of_node[id(child)] = owner
                scope.append(child.name)
                # Decorators and defaults evaluate in the outer frame.
                for outer_part in [
                    *child.decorator_list,
                    *child.args.defaults,
                    *[d for d in child.args.kw_defaults if d is not None],
                ]:
                    graph.owner_of_node[id(outer_part)] = owner
                    walk(outer_part, owner, scope)
                walk_body(child, child_qual, scope)
                scope.pop()
            elif isinstance(child, ast.ClassDef):
                graph.owner_of_node[id(child)] = owner
                scope.append(child.name)
                walk(child, owner, scope)
                scope.pop()
            else:
                graph.owner_of_node[id(child)] = owner
                walk(child, owner, scope)

    def walk_body(fn: ast.AST, qualname: str, scope: List[str]) -> None:
        for stmt in getattr(fn, "body", []):
            graph.owner_of_node[id(stmt)] = qualname
            walk(stmt, qualname, scope)

    graph.owner_of_node[id(module.tree)] = body_qualname
    walk(module.tree, body_qualname, [])


def _class_of(graph: CallGraph, module: str, owner_qualname: str) -> Optional[str]:
    info = graph.functions.get(owner_qualname)
    if info is None or info.class_name is None:
        return None
    # qualname = module.Class.method -> module.Class
    head, _, _ = owner_qualname.rpartition(".")
    return head


def _extract_edges(module: SourceModule, graph: CallGraph) -> None:
    imports = graph.imports[module.module_name]
    call_func_ids: Set[int] = set()

    def add_edge(caller: str, callee: str, kind: str, lineno: int) -> None:
        edge = CallEdge(caller=caller, callee=callee, kind=kind, lineno=lineno)
        graph.edges.setdefault(caller, []).append(edge)
        graph.reverse_edges.setdefault(callee, []).append(edge)

    def resolve_dotted(chain: List[str]) -> Optional[str]:
        """``mod.sub.func`` through the import table, re-export aware."""
        root = chain[0]
        target = imports.get(root)
        if target is None:
            return None
        dotted = ".".join([target, *chain[1:]])
        return graph._resolve_export(dotted)

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            call_func_ids.add(id(node.func))
            owner = graph.owner_of(node)
            if owner is None:
                continue
            func = node.func
            if isinstance(func, ast.Name):
                resolved = graph.resolve_local_name(
                    module.module_name, func.id
                )
                if resolved is not None:
                    add_edge(owner, resolved, EDGE_DIRECT, node.lineno)
                elif func.id in graph.by_name:
                    # A name bound dynamically (e.g. a function-valued
                    # local); link to same-named project functions.
                    for candidate in graph.by_name[func.id]:
                        add_edge(owner, candidate, EDGE_NAME, node.lineno)
            elif isinstance(func, ast.Attribute):
                chain = _attr_chain(func)
                resolved = None
                if chain is not None:
                    if (
                        chain[0] == "self"
                        and len(chain) == 2
                        and (cls := _class_of(graph, module.module_name, owner))
                    ):
                        method = f"{cls}.{chain[1]}"
                        if method in graph.functions:
                            add_edge(owner, method, EDGE_DIRECT, node.lineno)
                            resolved = method
                    if resolved is None and chain is not None:
                        resolved = resolve_dotted(chain)
                        if resolved is not None:
                            add_edge(owner, resolved, EDGE_DIRECT, node.lineno)
                if resolved is None:
                    for candidate in graph.by_name.get(func.attr, ()):
                        if candidate != owner:
                            add_edge(owner, candidate, EDGE_NAME, node.lineno)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def is invocable by its enclosing frame.
            owner = graph.owner_of(node)
            nested = None
            for qualname, fn_node in graph.function_nodes.items():
                if fn_node is node:
                    nested = qualname
                    break
            if owner is not None and nested is not None and owner != nested:
                if not graph.functions[owner].is_module_body:
                    add_edge(owner, nested, EDGE_REF, node.lineno)

    # Bare references to known functions (callbacks, registry wiring).
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Name) or id(node) in call_func_ids:
            continue
        if not isinstance(node.ctx, ast.Load):
            continue
        owner = graph.owner_of(node)
        if owner is None:
            continue
        resolved = graph.resolve_local_name(module.module_name, node.id)
        if resolved is not None and resolved != owner:
            add_edge(owner, resolved, EDGE_REF, node.lineno)


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.insert(0, node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.insert(0, node.id)
        return parts
    return None


def build_call_graph(project: Project) -> CallGraph:
    """Build the whole-program graph for ``project`` (deterministic)."""
    graph = CallGraph(project=project)
    for module in project:
        graph.imports[module.module_name] = _module_imports(module)
        _index_module(module, graph)
    for module in project:
        _assign_owners(module, graph)
    for module in project:
        _extract_edges(module, graph)
    for name in graph.by_name:
        graph.by_name[name].sort()
    return graph


_GRAPH_ATTR = "_flow_call_graph"


def get_call_graph(project: Project) -> CallGraph:
    """The memoised call graph for ``project`` (built once per run)."""
    cached = getattr(project, _GRAPH_ATTR, None)
    if cached is None:
        cached = build_call_graph(project)
        setattr(project, _GRAPH_ATTR, cached)
    return cached


__all__ = [
    "ALL_EDGE_KINDS",
    "CallEdge",
    "CallGraph",
    "EDGE_DIRECT",
    "EDGE_NAME",
    "EDGE_REF",
    "FunctionInfo",
    "MODULE_BODY",
    "build_call_graph",
    "get_call_graph",
]
