"""Golden-cone impact analysis: which golden suites can a diff affect?

The reproduction's correctness story is anchored on ten paper drivers
(plus the cross-technology sweep) whose outputs are digest-checked in
CI.  Those golden jobs are expensive; a docs-or-tooling PR should not
pay for them, and a PR that touches the evaluation path must never skip
them.  This module decides which case a diff is:

1. every driver's ``run`` entry point gets a forward-reachability cone
   over the whole-program call graph (conservative: ``direct`` +
   ``name`` + ``ref`` edges, so registry indirection and callbacks are
   inside the cone);
2. ``git diff --unified=0 <rev>`` is parsed into changed line sets and
   mapped to the innermost enclosing functions (module bodies count:
   import-time code runs for every suite that imports the module);
3. a suite is *affected* when its cone intersects the changed set.

Changed Python files the graph cannot see (deleted modules, files
outside the analysis root) are treated conservatively: every suite is
affected.  Non-Python changes never affect any suite.
"""

from __future__ import annotations

import json
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.graph import (
    MODULE_BODY,
    CallGraph,
    get_call_graph,
)
from repro.analysis.source import Project, collect_modules

IMPACT_SCHEMA_VERSION = 1

#: ``repro.experiments`` modules that are plumbing, not golden drivers.
NON_DRIVER_MODULES = {
    "runner", "cli", "reporting", "run_all", "__init__", "__main__",
}

_HUNK_RE = re.compile(
    r"^@@ -(?P<old_start>\d+)(?:,(?P<old_count>\d+))? "
    r"\+(?P<new_start>\d+)(?:,(?P<new_count>\d+))? @@"
)


def golden_entry_points(graph: CallGraph) -> Dict[str, str]:
    """Suite name -> qualname of its golden ``run`` entry point."""
    entries: Dict[str, str] = {}
    for qualname, info in graph.functions.items():
        if info.name != "run" or info.class_name is not None:
            continue
        parts = info.module.split(".")
        if len(parts) != 3 or parts[:2] != ["repro", "experiments"]:
            continue
        if parts[2] in NON_DRIVER_MODULES:
            continue
        if qualname != f"{info.module}.run":
            continue  # nested helper named run
        entries[parts[2]] = qualname
    return dict(sorted(entries.items()))


@dataclass
class DiffSummary:
    """Parsed ``git diff --unified=0`` output."""

    changed_lines: Dict[str, Set[int]] = field(default_factory=dict)
    """New-file path -> changed/added line numbers (deletion positions
    map to the surviving neighbour line)."""
    deleted_files: List[str] = field(default_factory=list)


def parse_unified_diff(text: str) -> DiffSummary:
    """Parse a ``--unified=0`` diff into per-file changed-line sets."""
    summary = DiffSummary()
    current: Optional[str] = None
    for line in text.splitlines():
        if line.startswith("+++ "):
            target = line[4:].strip()
            if target == "/dev/null":
                current = None
            else:
                current = target[2:] if target.startswith("b/") else target
                summary.changed_lines.setdefault(current, set())
        elif line.startswith("--- "):
            source = line[4:].strip()
            if source != "/dev/null":
                name = source[2:] if source.startswith("a/") else source
                # Becomes a deletion if no +++ side follows.
                summary.deleted_files.append(name)
        elif line.startswith("@@") and current is not None:
            match = _HUNK_RE.match(line)
            if match is None:
                continue
            start = int(match.group("new_start"))
            count = match.group("new_count")
            span = int(count) if count is not None else 1
            if span == 0:
                # Pure deletion: anchor on the surviving line so the
                # enclosing function still registers as changed.
                summary.changed_lines[current].add(max(start, 1))
            else:
                summary.changed_lines[current].update(
                    range(start, start + span)
                )
    summary.deleted_files = [
        name for name in summary.deleted_files
        if name not in summary.changed_lines
    ]
    return summary


def git_diff_since(rev: str, repo_root: Path) -> str:
    """``git diff --unified=0 <rev>`` over the repository."""
    result = subprocess.run(
        ["git", "diff", "--unified=0", "--no-color", rev, "--", "."],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"git diff against {rev!r} failed: {result.stderr.strip()}"
        )
    return result.stdout


@dataclass
class SuiteImpact:
    """One golden suite's verdict for a diff."""

    suite: str
    entry_point: str
    affected: bool
    witnesses: List[str] = field(default_factory=list)
    """Changed functions inside the suite's cone (capped sample)."""

    def to_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "entry_point": self.entry_point,
            "affected": self.affected,
            "witnesses": list(self.witnesses),
        }


@dataclass
class ImpactReport:
    """The full verdict: per-suite impact plus the evidence."""

    since: str
    suites: List[SuiteImpact]
    changed_functions: List[str]
    unmapped_python_files: List[str]
    non_code_files: List[str]

    @property
    def affected_suites(self) -> List[str]:
        return [s.suite for s in self.suites if s.affected]

    @property
    def unaffected_suites(self) -> List[str]:
        return [s.suite for s in self.suites if not s.affected]

    @property
    def cone_empty(self) -> bool:
        return not self.affected_suites

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": IMPACT_SCHEMA_VERSION,
            "since": self.since,
            "cone_empty": self.cone_empty,
            "affected_suites": self.affected_suites,
            "unaffected_suites": self.unaffected_suites,
            "suites": [s.to_dict() for s in self.suites],
            "changed_functions": list(self.changed_functions),
            "unmapped_python_files": list(self.unmapped_python_files),
            "non_code_files": list(self.non_code_files),
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines: List[str] = [f"impact since {self.since}:"]
        if self.changed_functions:
            lines.append(
                f"  {len(self.changed_functions)} changed function(s):"
            )
            for name in self.changed_functions[:20]:
                lines.append(f"    {name}")
            if len(self.changed_functions) > 20:
                lines.append(
                    f"    ... {len(self.changed_functions) - 20} more"
                )
        else:
            lines.append("  no analyzed source functions changed")
        for entry in self.unmapped_python_files:
            lines.append(
                f"  unmapped python file (conservatively affects "
                f"everything): {entry}"
            )
        if self.non_code_files:
            lines.append(
                f"  {len(self.non_code_files)} non-code file(s) ignored"
            )
        for suite in self.suites:
            if suite.affected:
                witness = (
                    f" (via {', '.join(suite.witnesses[:3])})"
                    if suite.witnesses else ""
                )
                lines.append(f"  AFFECTED  {suite.suite}{witness}")
        for suite in self.suites:
            if not suite.affected:
                lines.append(f"  clear     {suite.suite}")
        verdict = (
            "fast lane: no golden suite is reachable from this diff"
            if self.cone_empty
            else f"{len(self.affected_suites)}/{len(self.suites)} golden "
            "suite(s) must run"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _display_to_module(project: Project) -> Dict[str, str]:
    return {m.display_path: m.module_name for m in project}


def compute_impact(
    project: Project,
    diff: DiffSummary,
    *,
    since: str = "<diff>",
) -> ImpactReport:
    """Intersect a diff's changed functions with every golden cone."""
    graph = get_call_graph(project)
    entries = golden_entry_points(graph)
    by_display = _display_to_module(project)

    changed: Set[str] = set()
    unmapped: List[str] = []
    non_code: List[str] = []

    for path, lines in sorted(diff.changed_lines.items()):
        if not path.endswith(".py"):
            non_code.append(path)
            continue
        module_name = by_display.get(path)
        if module_name is None:
            # Under the analysis root but not parsed (deleted mid-diff)
            # or outside it entirely: only files that *look* like they
            # belong to the analyzed tree are conservative triggers.
            if _looks_analyzed(path, project):
                unmapped.append(path)
            else:
                non_code.append(path)
            continue
        for line in sorted(lines):
            info = graph.function_at(module_name, line)
            if info is not None:
                changed.add(info.qualname)
    for path in diff.deleted_files:
        if not path.endswith(".py"):
            non_code.append(path)
        elif _looks_analyzed(path, project):
            unmapped.append(path)
        else:
            non_code.append(path)

    # Module bodies piggy-back: changing module-level code affects every
    # suite whose cone touches any function of that module (imports run).
    changed_modules = {
        graph.functions[q].module for q in changed
        if graph.functions[q].name == MODULE_BODY
    }

    suites: List[SuiteImpact] = []
    for suite, entry in entries.items():
        cone = graph.reachable_from(entry)
        cone_modules = {graph.functions[q].module for q in cone}
        witnesses = sorted(changed & cone)
        if not witnesses and changed_modules & cone_modules:
            witnesses = sorted(
                f"{m}.{MODULE_BODY}"
                for m in changed_modules & cone_modules
            )
        affected = bool(witnesses) or bool(unmapped)
        if not witnesses and unmapped:
            witnesses = [f"unmapped file {p}" for p in unmapped[:3]]
        suites.append(SuiteImpact(
            suite=suite,
            entry_point=entry,
            affected=affected,
            witnesses=witnesses[:8],
        ))

    return ImpactReport(
        since=since,
        suites=suites,
        changed_functions=sorted(changed),
        unmapped_python_files=sorted(set(unmapped)),
        non_code_files=sorted(set(non_code)),
    )


def _looks_analyzed(path: str, project: Project) -> bool:
    """Heuristic: does ``path`` live under the analyzed source tree?"""
    prefixes: Set[str] = set()
    for module in project:
        display = module.display_path
        if "/" in display:
            prefixes.add(display.split("/", 1)[0])
    head = path.split("/", 1)[0] if "/" in path else ""
    return head in prefixes


def run_impact(
    since: str,
    roots: Sequence[Path],
    repo_root: Optional[Path] = None,
    diff_text: Optional[str] = None,
) -> ImpactReport:
    """End-to-end: diff against ``since``, analyze ``roots``, report."""
    root = repo_root if repo_root is not None else Path.cwd()
    if diff_text is None:
        diff_text = git_diff_since(since, root)
    project = collect_modules(list(roots), root)
    return compute_impact(
        project, parse_unified_diff(diff_text), since=since
    )


__all__ = [
    "DiffSummary",
    "IMPACT_SCHEMA_VERSION",
    "ImpactReport",
    "NON_DRIVER_MODULES",
    "SuiteImpact",
    "compute_impact",
    "git_diff_since",
    "golden_entry_points",
    "parse_unified_diff",
    "run_impact",
]
