"""repro.analysis.flow -- whole-program flow analysis.

The subpackage the interprocedural layer lives in:

* :mod:`~repro.analysis.flow.graph` -- module resolution, function
  indexing, and conservative call-edge extraction (facade re-exports,
  registry indirection) over a parsed :class:`~repro.analysis.Project`;
* :mod:`~repro.analysis.flow.taint` -- demand-driven seed-provenance
  proofs and forward value taint on top of the graph;
* :mod:`~repro.analysis.flow.rules` -- the FLOW001-005 rule families
  (seed provenance, process-boundary flow), registered with the stock
  rule registry on import;
* :mod:`~repro.analysis.flow.impact` -- golden-cone impact analysis
  behind ``python -m repro.analysis impact --since <rev>``.
"""

from repro.analysis.flow.graph import (
    ALL_EDGE_KINDS,
    CallEdge,
    CallGraph,
    FunctionInfo,
    MODULE_BODY,
    build_call_graph,
    get_call_graph,
)
from repro.analysis.flow.impact import (
    DiffSummary,
    ImpactReport,
    SuiteImpact,
    compute_impact,
    golden_entry_points,
    parse_unified_diff,
    run_impact,
)
from repro.analysis.flow.rules import SAMPLING_PACKAGES
from repro.analysis.flow.taint import (
    RngCreation,
    SeedProvenance,
    TaintHit,
    find_rng_creations,
    propagate_to_sinks,
)

__all__ = [
    "ALL_EDGE_KINDS",
    "CallEdge",
    "CallGraph",
    "DiffSummary",
    "FunctionInfo",
    "ImpactReport",
    "MODULE_BODY",
    "RngCreation",
    "SAMPLING_PACKAGES",
    "SeedProvenance",
    "SuiteImpact",
    "TaintHit",
    "build_call_graph",
    "compute_impact",
    "find_rng_creations",
    "get_call_graph",
    "golden_entry_points",
    "parse_unified_diff",
    "propagate_to_sinks",
    "run_impact",
]
