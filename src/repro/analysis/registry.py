"""Pluggable rule registry.

Rules self-register at import time via :func:`register_rule`; the runner
asks :func:`all_rules` for the active set.  Registration is keyed by the
rule id (``DET001`` ...), so a downstream package can *replace* a stock
rule by registering its own class under the same id before running the
analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.analysis.findings import Finding
from repro.analysis.source import Project, SourceModule


class Rule:
    """Base class for one check.

    Subclasses set ``rule_id``/``name``/``description`` and override
    :meth:`check_module` (per-file checks) and/or :meth:`check_project`
    (cross-file checks, run once after every module was visited).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    # ------------------------------------------------------------------

    def finding(
        self, module: SourceModule, line: int, col: int, message: str
    ) -> Finding:
        """Build a finding pinned to ``line`` of ``module``."""
        return Finding(
            path=module.display_path,
            line=line,
            col=col,
            rule=self.rule_id,
            message=message,
            snippet=module.snippet_at(line),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``cls`` to the registry (replacing by id)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    _ensure_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_builtin_rules()
    try:
        return _REGISTRY[rule_id.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def rule_ids() -> List[str]:
    _ensure_builtin_rules()
    return sorted(_REGISTRY)


def _ensure_builtin_rules() -> None:
    # Deferred so "import repro.analysis.registry" alone cannot race the
    # builtin registrations; importing the package wires them in.
    from repro.analysis import rules  # noqa: F401


__all__ = ["Rule", "all_rules", "get_rule", "register_rule", "rule_ids"]
