"""repro.analysis -- static invariants for the reproduction.

An AST-based linter enforcing, at commit time, the properties the
runtime test suite can only spot-check:

* **determinism** (DET001-DET006) -- no global RNG state, wall-clock
  reads, hash-order iteration, worker environment reads, or mutable
  default arguments;
* **unit consistency** (UNIT001-UNIT003) -- physical quantities route
  through :mod:`repro.units` instead of hand-rolled power-of-ten
  factors;
* **API drift** (API001-API003) -- ``__all__`` declarations match
  definitions and the ``repro`` facade re-exports stay consistent;
* **worker safety** (WS001-WS002) -- payloads submitted to
  :class:`~repro.engine.ParallelChipRunner` are statically picklable;
* **whole-program flow** (FLOW001-FLOW005) -- interprocedural seed
  provenance (every RNG reaching sampling code derives from an explicit
  seed parameter) and process-boundary flow (values reaching worker
  payloads and pool initializers are worker-safe), built on the call
  graph in :mod:`repro.analysis.flow`.

Run it with ``python -m repro.analysis src/repro``.  Accepted findings
live in ``analysis-baseline.json`` (with reasons); one-off exemptions
use a ``# repro: ignore[RULE-ID]`` comment on the flagged line --
comments that no longer suppress anything are themselves reported
(META001, gating under ``--strict-suppressions``).

``python -m repro.analysis impact --since <rev>`` runs golden-cone
impact analysis: it intersects the functions changed since ``<rev>``
with the reverse-reachability cone of every experiment suite so CI can
skip the golden jobs on changes that cannot affect them.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    Rule,
    all_rules,
    get_rule,
    register_rule,
    rule_ids,
)
from repro.analysis.reporters import (
    REPORT_SCHEMA_VERSION,
    render_json,
    render_sarif,
    render_text,
    report_to_dict,
    sarif_to_dict,
)
from repro.analysis.runner import (
    AnalysisReport,
    STALE_SUPPRESSION_RULE,
    run_analysis,
)
from repro.analysis.source import Project, SourceModule, collect_modules

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "Project",
    "REPORT_SCHEMA_VERSION",
    "Rule",
    "STALE_SUPPRESSION_RULE",
    "SourceModule",
    "all_rules",
    "collect_modules",
    "get_rule",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "report_to_dict",
    "rule_ids",
    "run_analysis",
    "sarif_to_dict",
]
