"""Text and JSON renderings of an :class:`AnalysisReport`.

The JSON schema is versioned and stable -- CI and editor integrations
parse it -- so additions bump ``REPORT_SCHEMA_VERSION`` and never rename
existing keys.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.runner import AnalysisReport

REPORT_SCHEMA_VERSION = 1


def render_text(report: AnalysisReport) -> str:
    lines: List[str] = []
    for finding in report.new_findings:
        lines.append(finding.render())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if report.baselined:
        lines.append(
            f"{len(report.baselined)} baselined finding(s) suppressed "
            "(see analysis-baseline.json)"
        )
    for entry in report.stale_baseline_entries:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} "
            f"{entry.snippet!r} no longer matches anything -- remove it"
        )
    status = "OK" if report.ok else "FAIL"
    lines.append(
        f"{status}: {len(report.new_findings)} finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed_count} suppressed inline, "
        f"{report.files_scanned} file(s), "
        f"{len(report.rules_run)} rule(s)"
    )
    return "\n".join(lines)


def report_to_dict(report: AnalysisReport) -> Dict[str, Any]:
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "target": report.target,
        "ok": report.ok,
        "rules_run": report.rules_run,
        "files_scanned": report.files_scanned,
        "counts": {
            "new": len(report.new_findings),
            "baselined": len(report.baselined),
            "suppressed_inline": report.suppressed_count,
            "stale_baseline_entries": len(report.stale_baseline_entries),
        },
        "findings": [f.to_dict() for f in report.new_findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "stale_baseline_entries": [
            e.to_dict() for e in report.stale_baseline_entries
        ],
    }


def render_json(report: AnalysisReport) -> str:
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)


__all__ = ["REPORT_SCHEMA_VERSION", "render_json", "render_text", "report_to_dict"]
