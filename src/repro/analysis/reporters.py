"""Text, JSON, and SARIF renderings of an :class:`AnalysisReport`.

The JSON schema is versioned and stable -- CI and editor integrations
parse it -- so additions bump ``REPORT_SCHEMA_VERSION`` and never rename
existing keys.  Version 2 added ``flow_path`` per finding (the
interprocedural evidence chain of the FLOW rules), the
``stale_suppressions`` section, and their counters.

The SARIF rendering targets SARIF 2.1.0 so CI can upload the report as
GitHub code-scanning annotations; baselined findings are carried with a
``suppressions`` entry instead of being dropped, matching SARIF's own
model of accepted results.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.registry import all_rules
from repro.analysis.findings import Finding
from repro.analysis.runner import AnalysisReport, STALE_SUPPRESSION_RULE

REPORT_SCHEMA_VERSION = 2

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: AnalysisReport) -> str:
    lines: List[str] = []
    for finding in report.new_findings:
        lines.append(finding.render())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        for step in finding.flow_path:
            lines.append(f"    flow: {step}")
    if report.baselined:
        lines.append(
            f"{len(report.baselined)} baselined finding(s) suppressed "
            "(see analysis-baseline.json)"
        )
    for entry in report.stale_baseline_entries:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} "
            f"{entry.snippet!r} no longer matches anything -- remove it"
        )
    for finding in report.stale_suppressions:
        lines.append(f"{finding.render()}")
    status = "OK" if report.ok else "FAIL"
    lines.append(
        f"{status}: {len(report.new_findings)} finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed_count} suppressed inline, "
        f"{len(report.stale_suppressions)} stale suppression(s), "
        f"{report.files_scanned} file(s), "
        f"{len(report.rules_run)} rule(s)"
    )
    return "\n".join(lines)


def report_to_dict(report: AnalysisReport) -> Dict[str, Any]:
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "target": report.target,
        "ok": report.ok,
        "rules_run": report.rules_run,
        "files_scanned": report.files_scanned,
        "counts": {
            "new": len(report.new_findings),
            "baselined": len(report.baselined),
            "suppressed_inline": report.suppressed_count,
            "stale_baseline_entries": len(report.stale_baseline_entries),
            "stale_suppressions": len(report.stale_suppressions),
        },
        "findings": [f.to_dict() for f in report.new_findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "stale_baseline_entries": [
            e.to_dict() for e in report.stale_baseline_entries
        ],
        "stale_suppressions": [
            f.to_dict() for f in report.stale_suppressions
        ],
    }


def render_json(report: AnalysisReport) -> str:
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------


def _sarif_location(finding: Finding) -> Dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {
                "uri": finding.path,
                "uriBaseId": "SRCROOT",
            },
            "region": {
                "startLine": max(finding.line, 1),
                "startColumn": max(finding.col + 1, 1),
            },
        },
    }


def _sarif_result(
    finding: Finding, *, baselined: bool = False
) -> Dict[str, Any]:
    message = finding.message
    if finding.flow_path:
        message += "\nflow: " + " -> ".join(finding.flow_path)
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "note" if baselined else "error",
        "message": {"text": message},
        "locations": [_sarif_location(finding)],
    }
    if finding.snippet:
        region = result["locations"][0]["physicalLocation"]["region"]
        region["snippet"] = {"text": finding.snippet}
    if baselined:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "accepted in analysis-baseline.json",
        }]
    return result


def sarif_to_dict(report: AnalysisReport) -> Dict[str, Any]:
    """The full SARIF 2.1.0 log for one analysis run."""
    described: Dict[str, Dict[str, Any]] = {}
    for rule in all_rules():
        described[rule.rule_id] = {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
        }
    described.setdefault(STALE_SUPPRESSION_RULE, {
        "id": STALE_SUPPRESSION_RULE,
        "name": "stale-suppression",
        "shortDescription": {
            "text": "a '# repro: ignore' comment whose rule no longer "
                    "fires on that line",
        },
    })
    results: List[Dict[str, Any]] = []
    for finding in report.new_findings:
        results.append(_sarif_result(finding))
    for finding in report.baselined:
        results.append(_sarif_result(finding, baselined=True))
    for finding in report.stale_suppressions:
        result = _sarif_result(finding)
        result["level"] = "warning"
        results.append(result)
    rule_ids_used = sorted({r["ruleId"] for r in results} | set(report.rules_run))
    rules = [
        described[rule_id] for rule_id in rule_ids_used
        if rule_id in described
    ]
    index_of = {rule["id"]: i for i, rule in enumerate(rules)}
    for result in results:
        if result["ruleId"] in index_of:
            result["ruleIndex"] = index_of[result["ruleId"]]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analysis",
                    "informationUri": (
                        "https://example.invalid/repro/analysis"
                    ),
                    "rules": rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def render_sarif(report: AnalysisReport) -> str:
    return json.dumps(sarif_to_dict(report), indent=2, sort_keys=True)


__all__ = [
    "REPORT_SCHEMA_VERSION",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "render_json",
    "render_sarif",
    "render_text",
    "report_to_dict",
    "sarif_to_dict",
]
