"""Parsed-source model shared by every rule.

A :class:`SourceModule` bundles one file's AST with everything the rules
repeatedly need: the dotted module name (derived from the package layout
on disk, so scoped rules can target ``repro.engine.*``), the raw lines
(for snippets), a parent map (child AST node -> enclosing node), and the
per-line suppression table parsed from ``# repro: ignore[...]`` comments.

A :class:`Project` is the ordered collection of modules under analysis;
cross-file rules (API drift) work at this level.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


def parse_suppressions(text: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule ids (``None`` = every rule).

    Comments are found with :mod:`tokenize`, so a string literal that
    merely *contains* ``# repro: ignore`` does not suppress anything.
    """
    table: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            rules = match.group("rules")
            if rules is None:
                table[line] = None
            else:
                ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
                existing = table.get(line, set())
                if existing is None:
                    continue
                table[line] = existing | ids
    except tokenize.TokenizeError:
        pass
    return table


def module_name_for(path: Path) -> str:
    """Dotted module name from the package layout around ``path``.

    Walks upward while ``__init__.py`` siblings exist, so
    ``src/repro/engine/parallel.py`` resolves to ``repro.engine.parallel``
    no matter which directory the CLI was pointed at.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class SourceModule:
    """One parsed source file plus the derived tables the rules share."""

    path: Path
    display_path: str
    module_name: str
    text: str
    tree: ast.Module
    lines: List[str]
    suppressions: Dict[int, Optional[Set[str]]]
    parents: Dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def from_path(cls, path: Path, display_root: Optional[Path] = None) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        if display_root is not None:
            try:
                display = path.resolve().relative_to(display_root.resolve()).as_posix()
            except ValueError:
                display = path.as_posix()
        else:
            display = path.as_posix()
        module = cls(
            path=path,
            display_path=display,
            module_name=module_name_for(path),
            text=text,
            tree=tree,
            lines=text.splitlines(),
            suppressions=parse_suppressions(text),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                module.parents[id(child)] = parent
        return module

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(id(node))

    def snippet_at(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, line: int, rule: str) -> bool:
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule.upper() in rules

    def in_package(self, prefixes: Tuple[str, ...]) -> bool:
        """True when the module lives under any dotted ``prefixes`` entry."""
        for prefix in prefixes:
            if self.module_name == prefix or self.module_name.startswith(prefix + "."):
                return True
        return False


@dataclass
class Project:
    """The ordered set of modules one analysis run covers."""

    modules: List[SourceModule]

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules)

    def by_module_name(self, name: str) -> Optional[SourceModule]:
        for module in self.modules:
            if module.module_name == name:
                return module
        return None


def collect_modules(paths: List[Path], display_root: Path) -> Project:
    """Parse every ``*.py`` under ``paths`` into a deterministic Project."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    seen: Set[Path] = set()
    modules: List[SourceModule] = []
    for file in files:
        resolved = file.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        modules.append(SourceModule.from_path(file, display_root))
    return Project(modules=modules)


__all__ = [
    "Project",
    "SourceModule",
    "collect_modules",
    "module_name_for",
    "parse_suppressions",
]
