"""``python -m repro.analysis`` -- the command-line entry point.

Two modes share the entry point:

* ``python -m repro.analysis [paths]`` -- run the lint rules (exit
  codes: 0 clean, 1 new findings -- or stale baseline entries under
  ``--strict-baseline``, stale suppressions under
  ``--strict-suppressions`` -- 2 usage/configuration error);
* ``python -m repro.analysis impact --since <rev>`` -- golden-cone
  impact analysis: which experiment suites can observe the changes
  since ``<rev>`` (exit 0 with a report; 2 when git or the arguments
  fail).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    Baseline,
    DEFAULT_BASELINE_NAME,
)
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.runner import run_analysis

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static determinism / unit-consistency / API-drift / "
            "worker-safety / whole-program flow checks for the repro "
            "codebase.  Use the 'impact' subcommand for golden-cone "
            "impact analysis."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=(
            "baseline file of accepted findings (default: "
            f"./{DEFAULT_BASELINE_NAME} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--reason", default="accepted during baseline capture",
        help="justification stored with --write-baseline entries",
    )
    parser.add_argument(
        "--strict-baseline", action="store_true",
        help="fail when baseline entries no longer match anything",
    )
    parser.add_argument(
        "--strict-suppressions", action="store_true",
        help=(
            "fail when '# repro: ignore' comments no longer suppress "
            "anything"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def build_impact_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis impact",
        description=(
            "Golden-cone impact analysis: intersect the functions "
            "changed since a git revision with the reverse-reachability "
            "cone of every experiment suite's evaluate path, and report "
            "which golden suites a change can observe."
        ),
    )
    parser.add_argument(
        "--since", required=True,
        help="git revision to diff against (e.g. origin/main, HEAD~1)",
    )
    parser.add_argument(
        "--root", type=Path, default=None, action="append",
        help="source roots to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="also write the JSON report to this file",
    )
    return parser


def impact_main(argv: Optional[List[str]] = None) -> int:
    from repro.analysis.flow.impact import run_impact

    parser = build_impact_parser()
    args = parser.parse_args(argv)

    roots: List[Path] = args.root or [Path("src/repro")]
    for root in roots:
        if not root.exists():
            print(f"error: no such path: {root}", file=sys.stderr)
            return EXIT_USAGE

    try:
        report = run_impact(args.since, roots)
    except (RuntimeError, OSError, SyntaxError, UnicodeDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE

    if args.out is not None:
        args.out.write_text(report.render_json() + "\n", encoding="utf-8")
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "impact":
        return impact_main(argv[1:])

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.name}")
            print(f"    {rule.description}")
        return EXIT_OK

    paths: List[Path] = args.paths or [Path("src/repro")]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return EXIT_USAGE

    select: Optional[List[str]] = None
    if args.select:
        select = [part.strip().upper() for part in args.select.split(",") if part.strip()]
        if not select:
            print("error: --select given but empty", file=sys.stderr)
            return EXIT_USAGE

    baseline_path: Optional[Path] = None
    baseline: Optional[Baseline] = None
    if not args.no_baseline:
        baseline_path = args.baseline
        if baseline_path is None:
            candidate = Path(DEFAULT_BASELINE_NAME)
            if candidate.exists() or args.write_baseline:
                baseline_path = candidate
        if baseline_path is not None and baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError) as error:
                print(f"error: {error}", file=sys.stderr)
                return EXIT_USAGE

    try:
        report = run_analysis(
            paths,
            select=select,
            baseline=None if args.write_baseline else baseline,
        )
    except SyntaxError as error:
        print(f"error: cannot parse {error.filename}: {error}", file=sys.stderr)
        return EXIT_USAGE
    except UnicodeDecodeError as error:
        print(f"error: cannot decode source file: {error}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as error:
        print(f"error: cannot read source file: {error}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        if baseline_path is None:
            print(
                "error: --write-baseline needs --baseline with --no-baseline",
                file=sys.stderr,
            )
            return EXIT_USAGE
        Baseline.from_findings(report.new_findings, args.reason).save(
            baseline_path
        )
        print(
            f"wrote {len(report.new_findings)} finding(s) to {baseline_path}"
        )
        return EXIT_OK

    if args.format == "json":
        output = render_json(report)
    elif args.format == "sarif":
        output = render_sarif(report)
    else:
        output = render_text(report)
    print(output)

    if not report.ok:
        return EXIT_FINDINGS
    if args.strict_baseline and report.stale_baseline_entries:
        return EXIT_FINDINGS
    if args.strict_suppressions and report.stale_suppressions:
        return EXIT_FINDINGS
    return EXIT_OK


__all__ = [
    "EXIT_FINDINGS",
    "EXIT_OK",
    "EXIT_USAGE",
    "build_impact_parser",
    "build_parser",
    "impact_main",
    "main",
]
