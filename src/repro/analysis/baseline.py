"""Checked-in baseline of accepted findings.

The baseline is the pressure valve that lets the pass ship strict rules:
a justified false positive gets an entry (with a mandatory human-written
``reason``) instead of a weakening of the rule.  Entries match findings
on ``(rule, path, snippet)`` -- content, not line numbers -- so edits
elsewhere in a file do not invalidate them.  Entries that no longer
match anything are reported as stale so the file can only shrink or be
deliberately grown, never rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


@dataclass
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    reason: str
    flow_path: Tuple[str, ...] = ()
    """Interprocedural evidence chain captured with path-carrying (FLOW)
    findings at ``--write-baseline`` time.  Purely documentary: matching
    stays on ``(rule, path, snippet)`` so a refactor elsewhere in the
    chain does not invalidate the accepted entry."""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "reason": self.reason,
        }
        if self.flow_path:
            payload["flow_path"] = list(self.flow_path)
        return payload


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "findings" not in data:
            raise ValueError(f"{path}: not a baseline file")
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: baseline version {version!r}, expected "
                f"{BASELINE_VERSION}"
            )
        entries = []
        for raw in data["findings"]:
            entries.append(BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                snippet=str(raw["snippet"]),
                reason=str(raw.get("reason", "")),
                flow_path=tuple(
                    str(step) for step in raw.get("flow_path", ())
                ),
            ))
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload: Dict[str, Any] = {
            "version": BASELINE_VERSION,
            "findings": [
                entry.to_dict()
                for entry in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(
        cls, findings: List[Finding], reason: str
    ) -> "Baseline":
        entries = [
            BaselineEntry(
                rule=f.rule, path=f.path, snippet=f.snippet, reason=reason,
                flow_path=f.flow_path,
            )
            for f in findings
        ]
        return cls(entries=entries)

    def partition(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (new, baselined); also return stale entries.

        Matching is multiset-aware: one entry absorbs one finding, so a
        *second* occurrence of an already-baselined pattern still fails
        the run.
        """
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key] = budget.get(entry.key, 0) + 1
        new: List[Finding] = []
        matched: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        stale = [e for e in self.entries if budget.get(e.key, 0) > 0]
        consumed: Dict[Tuple[str, str, str], int] = {}
        deduped_stale: List[BaselineEntry] = []
        for entry in stale:
            remaining = budget.get(entry.key, 0)
            used = consumed.get(entry.key, 0)
            if used < remaining:
                deduped_stale.append(entry)
                consumed[entry.key] = used + 1
        return new, matched, deduped_stale


__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
]
