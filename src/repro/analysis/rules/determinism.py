"""Determinism rules (DET).

The reproduction's headline guarantee is that serial and parallel runs,
and controller and batched-kernel replays, are bit-identical.  Every rule
here rejects a construct that can silently break that guarantee: global
RNG state, wall-clock reads, hash-order iteration, environment reads in
worker code, and mutable default arguments.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import SourceModule

# Constructors on numpy.random that are explicitly seeded at the call
# site; everything else on the module is legacy global-state API.
_SEEDED_NUMPY_FACTORIES = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
    "BitGenerator",
}

_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


def _import_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Names the file binds to ``module`` (``import numpy as np`` -> np)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module)
                elif alias.name.startswith(module + ".") and alias.asname is None:
                    aliases.add(module)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name -> original name, for ``from module import ...``."""
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-trivial expressions."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.insert(0, node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.insert(0, node.id)
        return parts
    return None


@register_rule
class RandomModuleCallRule(Rule):
    """DET001: calls into the stdlib ``random`` module's global state."""

    rule_id = "DET001"
    name = "random-module-call"
    description = (
        "stdlib random.* uses interpreter-global RNG state; draw from an "
        "explicitly seeded numpy Generator instead"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        aliases = _import_aliases(module.tree, "random")
        from_names = _from_imports(module.tree, "random")
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            if len(chain) == 2 and chain[0] in aliases:
                if chain[1] != "Random":
                    findings.append(self.finding(
                        module, node.lineno, node.col_offset,
                        f"call to random.{chain[1]}() uses global RNG state",
                    ))
            elif len(chain) == 1 and chain[0] in from_names:
                original = from_names[chain[0]]
                if original != "Random":
                    findings.append(self.finding(
                        module, node.lineno, node.col_offset,
                        f"call to random.{original}() uses global RNG state",
                    ))
        return findings


@register_rule
class LegacyNumpyRandomRule(Rule):
    """DET002: legacy ``numpy.random`` API or unseeded ``default_rng()``."""

    rule_id = "DET002"
    name = "legacy-numpy-random"
    description = (
        "numpy.random legacy functions share module-global state and "
        "default_rng() without a seed is entropy-seeded; both break "
        "replayability"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        numpy_aliases = _import_aliases(module.tree, "numpy")
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None or len(chain) != 3:
                continue
            root, mid, leaf = chain
            if root not in numpy_aliases or mid != "random":
                continue
            if leaf not in _SEEDED_NUMPY_FACTORIES:
                findings.append(self.finding(
                    module, node.lineno, node.col_offset,
                    f"legacy numpy.random.{leaf}() draws from module-global "
                    "state; use a seeded default_rng()",
                ))
            elif leaf == "default_rng" and not node.args and not node.keywords:
                findings.append(self.finding(
                    module, node.lineno, node.col_offset,
                    "default_rng() without a seed is entropy-seeded and "
                    "irreproducible",
                ))
        return findings


@register_rule
class WallClockRule(Rule):
    """DET003: wall-clock reads that can leak into results.

    ``time.perf_counter``/``monotonic`` stay legal -- they time batches
    in observers and never feed simulation state.
    """

    rule_id = "DET003"
    name = "wallclock-read"
    description = (
        "time.time()/datetime.now() make output depend on when the run "
        "happened; results must be a pure function of config and seed"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        datetime_from = _from_imports(module.tree, "datetime")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            # time.time(), datetime.now(), datetime.datetime.now(), ...
            tail = tuple(chain[-2:]) if len(chain) >= 2 else None
            if tail in _WALLCLOCK_CALLS:
                root = chain[0]
                if root in ("time", "datetime") or root in datetime_from:
                    findings.append(self.finding(
                        module, node.lineno, node.col_offset,
                        f"wall-clock read {'.'.join(chain)}() in "
                        "result-affecting code",
                    ))
            elif (
                len(chain) == 1
                and chain[0] in datetime_from
                and datetime_from[chain[0]] in ("now", "utcnow")
            ):
                findings.append(self.finding(
                    module, node.lineno, node.col_offset,
                    f"wall-clock read {chain[0]}() in result-affecting code",
                ))
        return findings


@register_rule
class UnorderedIterationRule(Rule):
    """DET004: iteration whose order the platform, not the code, decides."""

    rule_id = "DET004"
    name = "unordered-iteration"
    description = (
        "iterating sets or os.listdir() visits elements in hash/filesystem "
        "order; wrap the iterable in sorted()"
    )

    _DIR_CALLS = {("os", "listdir"), ("os", "scandir")}

    def _is_unordered(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain is None:
                return None
            if len(chain) == 1 and chain[0] in ("set", "frozenset"):
                return f"{chain[0]}()"
            if tuple(chain) in self._DIR_CALLS:
                return f"{'.'.join(chain)}()"
            if chain[-1] == "iterdir":
                return "Path.iterdir()"
        return None

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        flagged: Set[int] = set()

        def flag(node: ast.AST, what: str) -> None:
            if id(node) in flagged:
                return
            flagged.add(id(node))
            findings.append(self.finding(
                module, node.lineno, node.col_offset,
                f"iteration over {what} has platform-dependent order; "
                "wrap it in sorted()",
            ))

        for node in ast.walk(module.tree):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                what = self._is_unordered(it)
                if what is not None:
                    flag(it, what)
            # os.listdir()/scandir()/iterdir() anywhere outside sorted(...)
            if isinstance(node, ast.Call):
                what = self._is_unordered(node)
                if what is None or not what.endswith("()") or what in (
                    "set()", "frozenset()"
                ):
                    continue
                parent = module.parent_of(node)
                if (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id == "sorted"
                ):
                    continue
                flag(node, what)
        return findings


@register_rule
class WorkerEnvReadRule(Rule):
    """DET005: environment reads inside worker-executed code.

    Scoped to ``repro.engine`` and the batched kernel: anything these
    modules read from the environment can differ between the parent
    process and spawned workers (or between CI and a laptop), splitting
    the "identical in every process" invariant the engine relies on.
    """

    rule_id = "DET005"
    name = "worker-env-read"
    description = (
        "os.environ/os.getenv inside engine workers or the batcheval "
        "kernel makes worker behavior host-dependent; thread config "
        "through EvaluatorSpec / task payloads instead"
    )

    scoped_to: Tuple[str, ...] = ("repro.engine", "repro.core.batcheval")

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if not module.in_package(self.scoped_to):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            dotted: Optional[str] = None
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain is not None and ".".join(chain) in (
                    "os.getenv", "os.environ.get", "os.environ.items",
                    "os.environ.keys", "os.environ.values",
                ):
                    dotted = ".".join(chain)
            elif isinstance(node, ast.Subscript):
                chain = _attr_chain(node.value)
                if chain == ["os", "environ"]:
                    dotted = "os.environ[...]"
            if dotted is not None:
                findings.append(self.finding(
                    module, node.lineno, node.col_offset,
                    f"environment read via {dotted} in worker-executed code",
                ))
        return findings


@register_rule
class MutableDefaultRule(Rule):
    """DET006: mutable default arguments."""

    rule_id = "DET006"
    name = "mutable-default-argument"
    description = (
        "list/dict/set defaults are shared across calls; state leaking "
        "between evaluations is order-dependent nondeterminism"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if not mutable and isinstance(default, ast.Call):
                    mutable = (
                        isinstance(default.func, ast.Name)
                        and default.func.id in ("list", "dict", "set")
                        and not default.args
                        and not default.keywords
                    )
                if mutable:
                    findings.append(self.finding(
                        module, default.lineno, default.col_offset,
                        f"mutable default argument in {node.name}() is "
                        "shared across calls",
                    ))
        return findings


__all__ = [
    "LegacyNumpyRandomRule",
    "MutableDefaultRule",
    "RandomModuleCallRule",
    "UnorderedIterationRule",
    "WallClockRule",
    "WorkerEnvReadRule",
]
