"""Built-in rule families.

Importing this package registers every stock rule with
:mod:`repro.analysis.registry`.  Third-party rules follow the same
pattern: subclass :class:`~repro.analysis.registry.Rule`, decorate with
:func:`~repro.analysis.registry.register_rule`, import before running.
"""

from repro.analysis.rules import api_drift, determinism, units, worker_safety
from repro.analysis.flow import rules as flow

__all__ = ["api_drift", "determinism", "flow", "units", "worker_safety"]
