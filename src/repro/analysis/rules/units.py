"""Unit-consistency rules (UNIT).

The library computes in SI internally; scaled units (``_ns``, ``_ps``,
``_mw`` ...) appear only at boundaries, and ``repro.units`` owns every
conversion.  A raw ``* 1e9`` next to a ``_ns`` name is exactly the kind
of silent factor-of-10^3 bug that CACTI-style config validators exist to
catch before a sweep burns hours on wrong numbers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import SourceModule

#: Name suffixes that declare a scaled (non-SI) unit, mapped to the
#: repro.units helper that performs the conversion the raw factor implies.
UNIT_SUFFIXES: Dict[str, str] = {
    "_ns": "units.ns/units.to_ns",
    "_ps": "units.ps/units.to_ps",
    "_us": "units.us/units.to_us",
    "_nm": "units.nm/units.to_nm",
    "_um": "units.um/units.to_um",
    "_mw": "units.mw/units.to_mw",
    "_fj": "units.fj/units.to_fj",
    "_pj": "units.pj/units.to_pj",
    "_ghz": "units.ghz/units.to_ghz",
    "_mv": "millivolt helpers",
}

#: Power-of-ten factors that only ever mean a unit conversion when they
#: multiply or divide a unit-suffixed quantity.
CONVERSION_FACTORS = {
    1e3, 1e6, 1e9, 1e12, 1e15, 1e-3, 1e-6, 1e-9, 1e-12, 1e-15,
}

#: Packages whose physical quantities must route through repro.units.
WATCHED_PACKAGES: Tuple[str, ...] = (
    "repro.technology",
    "repro.array",
    "repro.cells",
    "repro.cache",
    "repro.core",
    "repro.experiments",
    "repro.variation",
)

#: The conversion module itself is the one place raw factors belong.
EXEMPT_MODULES: Tuple[str, ...] = ("repro.units",)


def unit_suffix(name: str) -> Optional[str]:
    """The scaled-unit suffix of ``name``, or None."""
    lowered = name.lower()
    for suffix in UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return suffix
    return None


def _name_of(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_conversion_factor(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value in CONVERSION_FACTORS
    )


def _contains_conversion_binop(node: ast.AST) -> Optional[ast.BinOp]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(
            sub.op, (ast.Mult, ast.Div)
        ):
            if _is_conversion_factor(sub.left) or _is_conversion_factor(sub.right):
                return sub
    return None


def _suffixed_names_in(node: ast.AST) -> List[str]:
    names: List[str] = []
    for sub in ast.walk(node):
        name = _name_of(sub)
        if name is not None and unit_suffix(name) is not None:
            names.append(name)
    return names


class _UnitRule(Rule):
    """Shared scoping: only watched packages, never repro.units itself."""

    def applies_to(self, module: SourceModule) -> bool:
        if module.in_package(EXEMPT_MODULES):
            return False
        return module.in_package(WATCHED_PACKAGES)


@register_rule
class RawConversionFactorRule(_UnitRule):
    """UNIT001: hand-rolled power-of-ten conversions next to unit names."""

    rule_id = "UNIT001"
    name = "raw-conversion-factor"
    description = (
        "a bare *1e9-style factor converting a _ns/_ps/_mw quantity "
        "bypasses repro.units; use the named helper so the unit is "
        "machine-checkable"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if not self.applies_to(module):
            return ()
        findings: List[Finding] = []
        seen: set = set()

        def flag(binop: ast.BinOp, context_name: str) -> None:
            if id(binop) in seen:
                return
            seen.add(id(binop))
            suffix = unit_suffix(context_name)
            helper = UNIT_SUFFIXES.get(suffix or "", "a repro.units helper")
            findings.append(self.finding(
                module, binop.lineno, binop.col_offset,
                f"raw power-of-ten conversion bound to {context_name!r}; "
                f"route it through {helper}",
            ))

        for node in ast.walk(module.tree):
            targets: List[Tuple[str, ast.AST]] = []
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    name = _name_of(target)
                    if name is not None:
                        targets.append((name, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                name = _name_of(node.target)
                if name is not None:
                    targets.append((name, node.value))
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        targets.append((keyword.arg, keyword.value))
            for name, value in targets:
                if unit_suffix(name) is None:
                    continue
                binop = _contains_conversion_binop(value)
                if binop is not None:
                    flag(binop, name)
            # Conversions *reading* a suffixed quantity back to SI:
            # seconds = retention_ns * 1e-9
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                factor_side = None
                value_side = None
                if _is_conversion_factor(node.left):
                    factor_side, value_side = node.left, node.right
                elif _is_conversion_factor(node.right):
                    factor_side, value_side = node.right, node.left
                if factor_side is None or value_side is None:
                    continue
                suffixed = _suffixed_names_in(value_side)
                if suffixed:
                    flag(node, suffixed[0])
        return findings


@register_rule
class MixedSuffixArithmeticRule(_UnitRule):
    """UNIT002: adding/comparing quantities with different unit suffixes."""

    rule_id = "UNIT002"
    name = "mixed-suffix-arithmetic"
    description = (
        "adding or comparing a _ns quantity to a _ps/_us one without a "
        "conversion is a unit bug by construction"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if not self.applies_to(module):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            pairs: List[Tuple[ast.AST, ast.AST]] = []
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs.append((node.left, node.right))
            elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                pairs.append((node.left, node.comparators[0]))
            for left, right in pairs:
                left_name = _name_of(left)
                right_name = _name_of(right)
                if left_name is None or right_name is None:
                    continue
                left_suffix = unit_suffix(left_name)
                right_suffix = unit_suffix(right_name)
                if (
                    left_suffix is not None
                    and right_suffix is not None
                    and left_suffix != right_suffix
                ):
                    findings.append(self.finding(
                        module, node.lineno, node.col_offset,
                        f"{left_name!r} ({left_suffix}) combined with "
                        f"{right_name!r} ({right_suffix}) without conversion",
                    ))
        return findings


@register_rule
class SuspiciousDefaultMagnitudeRule(_UnitRule):
    """UNIT003: scaled-unit names defaulted to SI-magnitude literals.

    ``retention_ns = 2.5e-9`` almost always means an SI value landed in
    a nanosecond-labelled slot: the suffix promises O(1)-scale numbers.
    """

    rule_id = "UNIT003"
    name = "suspicious-default-magnitude"
    description = (
        "a _ns/_ps/_nm-suffixed parameter or constant bound to a literal "
        "below 1e-3 looks like an unconverted SI value"
    )

    _THRESHOLD = 1e-3

    def _literal_value(self, node: Optional[ast.AST]) -> Optional[float]:
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        ) and not isinstance(node.value, bool):
            return float(node.value)
        return None

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if not self.applies_to(module):
            return ()
        findings: List[Finding] = []

        def check(name: str, value_node: Optional[ast.AST], where: ast.AST) -> None:
            if unit_suffix(name) is None:
                return
            value = self._literal_value(value_node)
            if value is None or value == 0.0:
                return
            if 0.0 < abs(value) < self._THRESHOLD:
                findings.append(self.finding(
                    module, where.lineno, where.col_offset,
                    f"{name!r} bound to {value!r}: a {unit_suffix(name)} "
                    "name should hold O(1)-scale numbers, this looks like "
                    "an unconverted SI value",
                ))

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                positional = args.posonlyargs + args.args
                for arg, default in zip(
                    positional[len(positional) - len(args.defaults):],
                    args.defaults,
                ):
                    check(arg.arg, default, default)
                for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                    if kw_default is not None:
                        check(arg.arg, kw_default, kw_default)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    name = _name_of(target)
                    if name is not None:
                        check(name, node.value, node)
            elif isinstance(node, ast.AnnAssign):
                name = _name_of(node.target)
                if name is not None and node.value is not None:
                    check(name, node.value, node)
        return findings


__all__ = [
    "MixedSuffixArithmeticRule",
    "RawConversionFactorRule",
    "SuspiciousDefaultMagnitudeRule",
    "UNIT_SUFFIXES",
    "WATCHED_PACKAGES",
    "unit_suffix",
]
