"""API-drift rules (API).

``__all__`` is the contract between the packages and the ``repro``
facade; PR 1 and PR 2 both widened it.  These rules keep the contract
honest statically: every exported name must exist, every public
definition must be exported, and the facade's re-export list must agree
with what the subpackages actually declare.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import Project, SourceModule

#: Symbols the top-level facade must keep re-exporting: the evaluation
#: entry points (PR 2) and the engine surface (PR 1).
REQUIRED_FACADE_EXPORTS: Tuple[str, ...] = (
    "evaluate",
    "evaluate_many",
    "Evaluator",
    "ParallelChipRunner",
    "EvaluatorSpec",
    "EvalTask",
    "Experiment",
    "ResultCache",
    "RunObserver",
    "ExecutionService",
)

FACADE_MODULE = "repro"

#: The private boolean kernel probe; everything outside its home module
#: must go through the typed :func:`repro.core.kernel_support` instead.
KERNEL_PROBE_NAME = "_kernel_supported"
KERNEL_PROBE_HOME = "repro.core.batcheval"

#: The cell-backend protocol (PR 7).  A backend subclass that skips one
#: of these methods would only fail at sampling/evaluation time; the
#: static rule moves that failure to lint time.  Kept in sync with
#: ``repro.technology.backends.BACKEND_PROTOCOL_METHODS`` by a test.
BACKEND_BASE_NAME = "TechnologyBackend"
BACKEND_HOME = "repro.technology.backends"
BACKEND_REQUIRED_METHODS: Tuple[str, ...] = (
    "cell_timing",
    "cell_energy",
    "leakage_power",
    "nominal_retention_time",
    "sample_retention_map",
    "refresh_cost",
    "latency_model",
)


def declared_all(tree: ast.Module) -> Optional[List[Tuple[str, int]]]:
    """``__all__`` entries with line numbers, or None when undeclared.

    Handles plain assignment and ``__all__ += [...]`` / ``__all__ =
    __all__ + [...]`` extension, which is how conditional exports are
    usually spelled.
    """
    entries: List[Tuple[str, int]] = []
    found = False

    def harvest(value: ast.AST) -> None:
        nonlocal found
        if isinstance(value, (ast.List, ast.Tuple)):
            found = True
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    entries.append((element.value, element.lineno))
        elif isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
            harvest(value.left)
            harvest(value.right)

    for node in tree.body:
        if isinstance(node, ast.Assign):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in names:
                harvest(node.value)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                harvest(node.value)
    return entries if found else None


def module_bindings(tree: ast.Module) -> Set[str]:
    """Names statically bound at module top level (defs, imports, assigns)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports/definitions still bind on some path.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                    bound.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name.split(".")[0])
    return bound


def getattr_provided_names(tree: ast.Module) -> Set[str]:
    """Names a module-level ``__getattr__`` serves lazily.

    Two idioms count as legitimate exports without a top-level binding:
    string compares (``if name == "ExperimentContext": ...``) and a
    lookup in a module-level registry dict (``_LAZY_EXPORTS[name]``),
    whose string keys are harvested.
    """
    provided: Set[str] = set()
    dict_keys: Dict[str, Set[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        keys = {
            key.value
            for key in node.value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        for target in node.targets:
            if isinstance(target, ast.Name):
                dict_keys[target.id] = keys
    for node in tree.body:
        if not (isinstance(node, ast.FunctionDef) and node.name == "__getattr__"):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Compare):
                operands = [sub.left] + list(sub.comparators)
                names = {o.id for o in operands if isinstance(o, ast.Name)}
                if "name" not in names:
                    continue
                for operand in operands:
                    if isinstance(operand, ast.Constant) and isinstance(
                        operand.value, str
                    ):
                        provided.add(operand.value)
            elif isinstance(sub, ast.Subscript):
                if not isinstance(sub.value, ast.Name):
                    continue
                registry = dict_keys.get(sub.value.id)
                if registry is None:
                    continue
                if any(
                    isinstance(part, ast.Name) and part.id == "name"
                    for part in ast.walk(sub.slice)
                ):
                    provided.update(registry)
    return provided


@register_rule
class ExportedNameUndefinedRule(Rule):
    """API001: ``__all__`` lists a name the module never binds."""

    rule_id = "API001"
    name = "exported-name-undefined"
    description = (
        "a name in __all__ with no top-level binding breaks "
        "'from pkg import name' and wildcard imports"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        exported = declared_all(module.tree)
        if exported is None:
            return ()
        bound = module_bindings(module.tree) | getattr_provided_names(module.tree)
        findings: List[Finding] = []
        for name, line in exported:
            if name not in bound:
                findings.append(self.finding(
                    module, line, 0,
                    f"__all__ exports {name!r} but the module never binds it",
                ))
        return findings


@register_rule
class PublicNameUnexportedRule(Rule):
    """API002: public top-level defs/classes missing from ``__all__``."""

    rule_id = "API002"
    name = "public-name-unexported"
    description = (
        "a public def/class absent from a declared __all__ silently "
        "drops out of the package surface and wildcard imports"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        exported = declared_all(module.tree)
        if exported is None:
            return ()
        exported_names = {name for name, _ in exported}
        findings: List[Finding] = []
        for node in module.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            if node.name.startswith("_"):
                continue
            if node.name not in exported_names:
                findings.append(self.finding(
                    module, node.lineno, node.col_offset,
                    f"public {node.name!r} is defined here but missing "
                    "from __all__",
                ))
        return findings


@register_rule
class FacadeDriftRule(Rule):
    """API003: the ``repro`` facade vs. subpackage ``__all__`` contracts.

    Three checks, all cross-file:

    * every ``from repro.X import name`` in the facade must name something
      ``repro.X.__all__`` actually declares;
    * every name the facade binds via those imports must appear in the
      facade's own ``__all__`` (a re-export that is not exported is
      drift waiting to be noticed);
    * the required evaluation/engine symbols stay in the facade surface.
    """

    rule_id = "API003"
    name = "facade-drift"
    description = (
        "repro/__init__.py re-exports must match subpackage __all__ "
        "declarations and keep the evaluate/evaluate_many/engine surface"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        facade = project.by_module_name(FACADE_MODULE)
        if facade is None:
            return ()
        findings: List[Finding] = []
        facade_all = declared_all(facade.tree)
        facade_names = {name for name, _ in facade_all} if facade_all else set()

        subpackage_alls: Dict[str, Set[str]] = {}
        for imp in facade.tree.body:
            if not isinstance(imp, ast.ImportFrom) or imp.module is None:
                continue
            if not imp.module.startswith(FACADE_MODULE + "."):
                continue
            source = project.by_module_name(imp.module)
            if source is not None and imp.module not in subpackage_alls:
                source_all = declared_all(source.tree)
                if source_all is not None:
                    subpackage_alls[imp.module] = {n for n, _ in source_all}
            declared = subpackage_alls.get(imp.module)
            for alias in imp.names:
                if alias.name == "*":
                    continue
                if declared is not None and alias.name not in declared:
                    findings.append(self.finding(
                        facade, imp.lineno, imp.col_offset,
                        f"facade imports {alias.name!r} from {imp.module} "
                        "but that package does not export it in __all__",
                    ))
                local = alias.asname or alias.name
                if facade_all is not None and local not in facade_names:
                    findings.append(self.finding(
                        facade, imp.lineno, imp.col_offset,
                        f"facade binds {local!r} from {imp.module} but "
                        "omits it from repro.__all__",
                    ))
        if facade_all is not None:
            for required in REQUIRED_FACADE_EXPORTS:
                if required not in facade_names:
                    findings.append(self.finding(
                        facade, 1, 0,
                        f"required facade export {required!r} is missing "
                        "from repro.__all__",
                    ))
        return findings


@register_rule
class PrivateKernelProbeRule(Rule):
    """API004: no new imports or uses of the private kernel probe.

    ``_kernel_supported`` is a boolean implementation detail of
    ``repro.core.batcheval``; the supported surface is the typed
    :func:`repro.core.kernel_support`, which also reports *which* replay
    path (flattened / timeline / event) a cache takes and why.
    """

    rule_id = "API004"
    name = "private-kernel-probe"
    description = (
        "importing or referencing the private _kernel_supported helper "
        "outside repro.core.batcheval bypasses the typed kernel_support "
        "surface"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        if module.module_name == KERNEL_PROBE_HOME:
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == KERNEL_PROBE_NAME:
                        findings.append(self.finding(
                            module, node.lineno, node.col_offset,
                            f"import of private {KERNEL_PROBE_NAME!r}; use "
                            "repro.core.kernel_support (typed KernelSupport "
                            "result) instead",
                        ))
            elif isinstance(node, ast.Attribute):
                if node.attr == KERNEL_PROBE_NAME:
                    findings.append(self.finding(
                        module, node.lineno, node.col_offset,
                        f"reference to private {KERNEL_PROBE_NAME!r}; use "
                        "repro.core.kernel_support (typed KernelSupport "
                        "result) instead",
                    ))
            elif isinstance(node, ast.Name):
                if node.id == KERNEL_PROBE_NAME:
                    findings.append(self.finding(
                        module, node.lineno, node.col_offset,
                        f"reference to private {KERNEL_PROBE_NAME!r}; use "
                        "repro.core.kernel_support (typed KernelSupport "
                        "result) instead",
                    ))
        return findings


@register_rule
class TechnologyBackendConformanceRule(Rule):
    """API005: backend subclasses must satisfy the whole protocol.

    Every class that derives from
    :class:`repro.technology.backends.TechnologyBackend` (directly, by
    plain or attribute-qualified base name) must define all of the
    protocol's methods.  A partial backend imports cleanly and only
    explodes once a chip is sampled or an evaluator configured; this
    rule surfaces the gap statically, next to API001-004 in the same
    baseline/CI gate.
    """

    rule_id = "API005"
    name = "technology-backend-conformance"
    description = (
        "a TechnologyBackend subclass missing protocol methods defers "
        "its failure to chip-sampling time; implement the full "
        "cell_timing/.../latency_model surface"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name == BACKEND_BASE_NAME:
                # The ABC itself declares the protocol.
                continue
            if not any(
                (isinstance(base, ast.Name) and base.id == BACKEND_BASE_NAME)
                or (isinstance(base, ast.Attribute)
                    and base.attr == BACKEND_BASE_NAME)
                for base in node.bases
            ):
                continue
            defined = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            missing = [
                method
                for method in BACKEND_REQUIRED_METHODS
                if method not in defined
            ]
            if missing:
                findings.append(self.finding(
                    module, node.lineno, node.col_offset,
                    f"backend {node.name!r} does not implement protocol "
                    f"method(s) {', '.join(repr(m) for m in missing)}; "
                    "every TechnologyBackend subclass must define the "
                    "full cell/retention/refresh/latency surface",
                ))
        return findings


__all__ = [
    "BACKEND_BASE_NAME",
    "BACKEND_HOME",
    "BACKEND_REQUIRED_METHODS",
    "ExportedNameUndefinedRule",
    "FacadeDriftRule",
    "KERNEL_PROBE_HOME",
    "KERNEL_PROBE_NAME",
    "PrivateKernelProbeRule",
    "PublicNameUnexportedRule",
    "REQUIRED_FACADE_EXPORTS",
    "TechnologyBackendConformanceRule",
    "declared_all",
    "getattr_provided_names",
    "module_bindings",
]
