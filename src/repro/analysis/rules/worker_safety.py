"""Worker-safety rules (WS).

Everything handed to :class:`repro.engine.ParallelChipRunner` crosses a
process boundary by pickling.  Lambdas, closures, and locally defined
classes pickle by *qualified name*, which fails (or worse, resolves to
the wrong object) in a worker.  These rules reject them at the
construction sites of the task payloads and at pool submission calls.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.source import SourceModule

#: Payload types shipped to workers; their constructor arguments must be
#: picklable by value or importable by module-level name.
TASK_CONSTRUCTORS = {"ChipBuildTask", "EvaluatorSpec", "EvalTask"}

#: Runner/executor entry points whose callable arguments cross the
#: process boundary by reference.
POOL_METHODS = {"map", "evaluate", "build_chips", "submit"}


def _callee_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _call_arguments(node: ast.Call) -> List[ast.AST]:
    arguments: List[ast.AST] = list(node.args)
    arguments.extend(kw.value for kw in node.keywords)
    return arguments


def _local_definitions(module: SourceModule) -> Dict[int, Set[str]]:
    """For each function node id: names its body defines locally.

    A name bound by a nested ``def``/``class``/lambda-assignment inside a
    function only exists in that frame -- pickling it in a task payload
    cannot resolve in a worker process.
    """
    table: Dict[int, Set[str]] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local: Set[str] = set()
        for child in ast.iter_child_nodes(node):
            for sub in ast.walk(child):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)) and sub is not node:
                    local.add(sub.name)
                elif isinstance(sub, ast.Assign) and isinstance(
                    sub.value, ast.Lambda
                ):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            local.add(target.id)
        table[id(node)] = local
    return table


def _enclosing_functions(
    module: SourceModule, node: ast.AST
) -> List[ast.AST]:
    chain: List[ast.AST] = []
    current: Optional[ast.AST] = module.parent_of(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            chain.append(current)
        current = module.parent_of(current)
    return chain


class _WorkerSafetyRule(Rule):
    """Shared traversal: flag unpicklable arguments at marked call sites."""

    def _unpicklable_reason(
        self,
        module: SourceModule,
        site: ast.Call,
        argument: ast.AST,
        locals_table: Dict[int, Set[str]],
    ) -> Optional[str]:
        if isinstance(argument, ast.Lambda):
            return "a lambda"
        for sub in ast.walk(argument):
            if isinstance(sub, ast.Lambda):
                return "a lambda"
        if isinstance(argument, ast.Name):
            for function in _enclosing_functions(module, site):
                if argument.id in locals_table.get(id(function), set()):
                    return f"locally defined {argument.id!r}"
        return None

    def _check_sites(
        self,
        module: SourceModule,
        is_site: "_SitePredicate",
        what: str,
    ) -> List[Finding]:
        findings: List[Finding] = []
        locals_table = _local_definitions(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not is_site(node):
                continue
            for argument in _call_arguments(node):
                reason = self._unpicklable_reason(
                    module, node, argument, locals_table
                )
                if reason is not None:
                    findings.append(self.finding(
                        module, argument.lineno, argument.col_offset,
                        f"{reason} passed to {what} cannot be pickled "
                        "into a worker process",
                    ))
        return findings


class _SitePredicate:
    def __call__(self, node: ast.Call) -> bool:  # pragma: no cover
        raise NotImplementedError


@register_rule
class UnpicklableTaskArgumentRule(_WorkerSafetyRule):
    """WS001: unpicklable values inside task-payload constructors."""

    rule_id = "WS001"
    name = "unpicklable-task-argument"
    description = (
        "ChipBuildTask/EvaluatorSpec/EvalTask payloads cross the process "
        "boundary; lambdas and frame-local definitions cannot"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        class Predicate(_SitePredicate):
            def __call__(self, node: ast.Call) -> bool:
                name = _callee_name(node)
                return name is not None and name in TASK_CONSTRUCTORS

        return self._check_sites(
            module, Predicate(), "a worker task payload"
        )


@register_rule
class UnpicklablePoolCallableRule(_WorkerSafetyRule):
    """WS002: unpicklable callables at pool submission points."""

    rule_id = "WS002"
    name = "unpicklable-pool-callable"
    description = (
        "runner.map/evaluate/build_chips and executor.submit ship their "
        "callable by qualified name; it must be module-level"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        class Predicate(_SitePredicate):
            def __call__(self, node: ast.Call) -> bool:
                return (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in POOL_METHODS
                )

        return self._check_sites(
            module, Predicate(), "a process-pool call"
        )


__all__ = [
    "POOL_METHODS",
    "TASK_CONSTRUCTORS",
    "UnpicklablePoolCallableRule",
    "UnpicklableTaskArgumentRule",
]
