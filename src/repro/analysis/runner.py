"""Orchestration: walk files, run rules, apply suppressions and baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, get_rule
from repro.analysis.source import Project, SourceModule, collect_modules

STALE_SUPPRESSION_RULE = "META001"
"""Meta-finding id for ``# repro: ignore[...]`` comments that no longer
suppress anything.  Not a registered rule: it is derived from the run's
own suppression accounting, so it cannot be selected or suppressed."""


@dataclass
class AnalysisReport:
    """Everything one run produced, pre-sorted and pre-partitioned.

    ``new_findings`` is what gates CI; ``baselined`` and
    ``stale_baseline_entries`` keep the accepted-debt ledger visible in
    every report instead of silently absorbed.  ``stale_suppressions``
    does the same for inline ``# repro: ignore`` comments whose rule no
    longer fires on the line -- informational by default, gating under
    ``--strict-suppressions``.
    """

    target: str
    rules_run: List[str]
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    stale_baseline_entries: List[BaselineEntry] = field(default_factory=list)
    stale_suppressions: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.new_findings

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.new_findings + self.baselined)


def resolve_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    if select is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in select]


def run_analysis(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    display_root: Optional[Path] = None,
) -> AnalysisReport:
    """Run the selected rules over ``paths`` and return the report.

    Findings are deterministic: files are visited in sorted order, rules
    in id order, and the result list is fully sorted -- two runs over
    the same tree always emit byte-identical reports.
    """
    root = display_root if display_root is not None else Path.cwd()
    project: Project = collect_modules(list(paths), root)
    rules = resolve_rules(select)

    raw: List[Finding] = []
    for rule in rules:
        for module in project:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(project))

    kept: List[Finding] = []
    suppressed = 0
    used_suppressions: Dict[Tuple[str, int], Set[str]] = {}
    modules_by_path = {m.display_path: m for m in project}
    for finding in raw:
        module = modules_by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.line, finding.rule):
            suppressed += 1
            used_suppressions.setdefault(
                (finding.path, finding.line), set()
            ).add(finding.rule.upper())
        else:
            kept.append(finding)
    kept.sort()

    if baseline is not None:
        new, matched, stale = baseline.partition(kept)
    else:
        new, matched, stale = kept, [], []

    return AnalysisReport(
        target=", ".join(str(p) for p in paths),
        rules_run=[rule.rule_id for rule in rules],
        new_findings=sorted(new),
        baselined=sorted(matched),
        suppressed_count=suppressed,
        stale_baseline_entries=stale,
        stale_suppressions=_stale_suppressions(
            project, [rule.rule_id for rule in rules],
            used_suppressions, full_rule_set=select is None,
        ),
        files_scanned=len(project.modules),
    )


def _stale_suppressions(
    project: Project,
    rules_run: Sequence[str],
    used: Dict[Tuple[str, int], Set[str]],
    *,
    full_rule_set: bool,
) -> List[Finding]:
    """``# repro: ignore`` comments that suppressed nothing this run.

    A named id is judged only when its rule actually ran; a bare (ruleless)
    comment only when the full rule set ran -- otherwise a ``--select``
    subset would mark every unrelated suppression stale.
    """
    active = {rule_id.upper() for rule_id in rules_run}
    findings: List[Finding] = []
    for module in project:
        for line, rule_ids in sorted(module.suppressions.items()):
            consumed = used.get((module.display_path, line), set())
            if rule_ids is None:
                if full_rule_set and not consumed:
                    findings.append(_stale_suppression_finding(
                        module, line,
                        "no rule fires on this line; remove the bare "
                        "'# repro: ignore'",
                    ))
                continue
            for rule_id in sorted(rule_ids):
                if rule_id in active and rule_id not in consumed:
                    findings.append(_stale_suppression_finding(
                        module, line,
                        f"{rule_id} no longer fires on this line; remove "
                        f"it from the '# repro: ignore[{rule_id}]' comment",
                    ))
    findings.sort()
    return findings


def _stale_suppression_finding(
    module: SourceModule, line: int, message: str
) -> Finding:
    return Finding(
        path=module.display_path,
        line=line,
        col=0,
        rule=STALE_SUPPRESSION_RULE,
        message=f"stale suppression: {message}",
        snippet=module.snippet_at(line),
    )


__all__ = [
    "AnalysisReport",
    "STALE_SUPPRESSION_RULE",
    "resolve_rules",
    "run_analysis",
]
