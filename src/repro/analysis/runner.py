"""Orchestration: walk files, run rules, apply suppressions and baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, get_rule
from repro.analysis.source import Project, collect_modules


@dataclass
class AnalysisReport:
    """Everything one run produced, pre-sorted and pre-partitioned.

    ``new_findings`` is what gates CI; ``baselined`` and
    ``stale_baseline_entries`` keep the accepted-debt ledger visible in
    every report instead of silently absorbed.
    """

    target: str
    rules_run: List[str]
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    stale_baseline_entries: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.new_findings

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.new_findings + self.baselined)


def resolve_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    if select is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in select]


def run_analysis(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    display_root: Optional[Path] = None,
) -> AnalysisReport:
    """Run the selected rules over ``paths`` and return the report.

    Findings are deterministic: files are visited in sorted order, rules
    in id order, and the result list is fully sorted -- two runs over
    the same tree always emit byte-identical reports.
    """
    root = display_root if display_root is not None else Path.cwd()
    project: Project = collect_modules(list(paths), root)
    rules = resolve_rules(select)

    raw: List[Finding] = []
    for rule in rules:
        for module in project:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(project))

    kept: List[Finding] = []
    suppressed = 0
    modules_by_path = {m.display_path: m for m in project}
    for finding in raw:
        module = modules_by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.line, finding.rule):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort()

    if baseline is not None:
        new, matched, stale = baseline.partition(kept)
    else:
        new, matched, stale = kept, [], []

    return AnalysisReport(
        target=", ".join(str(p) for p in paths),
        rules_run=[rule.rule_id for rule in rules],
        new_findings=sorted(new),
        baselined=sorted(matched),
        suppressed_count=suppressed,
        stale_baseline_entries=stale,
        files_scanned=len(project.modules),
    )


__all__ = ["AnalysisReport", "resolve_rules", "run_analysis"]
