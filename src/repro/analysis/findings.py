"""The unit of linter output: a :class:`Finding` pinned to one source line.

Findings are value objects: two runs over the same tree produce the same
findings in the same order, which is what lets the baseline file match on
content rather than on line numbers (lines drift; the offending source
text mostly does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped source line the finding points at; the
    baseline matches on ``(rule, path, snippet)`` so renumbering a file
    does not invalidate suppressions recorded for unchanged code.

    ``flow_path`` is the interprocedural evidence chain attached by the
    whole-program FLOW rules (``file:line in qualname`` steps from the
    source of a flow to its sink); single-module rules leave it empty.
    It is carried by every reporter but never participates in ordering
    or baseline matching -- the path explains a finding, it does not
    identify it.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = field(default="", compare=False)
    flow_path: Tuple[str, ...] = field(default=(), compare=False)

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "flow_path": list(self.flow_path),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


__all__ = ["Finding"]
