"""Shared leakage-variation helpers.

Leakage through an off transistor is exponential in its effective threshold
voltage.  Two refinements matter for reproducing the paper's leakage
*distributions* (Figure 7):

* DIBL steepens the effective sensitivity of drain leakage to process
  shifts, so the variation factor uses a slightly lower ideality
  (``LEAKAGE_VARIATION_IDEALITY``) than the absolute-current calibration.
* Not all of a cell's leakage is Vth-sensitive subthreshold current; gate
  and junction leakage are (to first order) Vth-independent.  The
  ``sensitive_share`` parameter mixes an exponential term with a constant
  floor, which compresses the distribution -- the mechanism behind the
  3T1D cache's much tighter leakage spread (never above 4X golden, versus
  the 6T tail beyond 10X).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro import units
from repro.errors import ConfigurationError

ArrayLike = Union[float, np.ndarray]

LEAKAGE_VARIATION_IDEALITY: float = 1.2
"""Effective ideality of the leakage *variation* factor (DIBL-enhanced)."""

LEAKAGE_ROLLOFF_PER_REL_L: float = 0.64
"""Gate-length to threshold coupling for leakage paths, volts per unit of
*relative* gate-length deviation (delta_L / L_nominal).

Expressed relative to the channel length so every node sees the same
coupling for the same percentage variation (0.64 V/unit = 20 mV per nm at
32nm).  Stronger than the drive-side roll-off because drain leakage sees
both the Vth roll-off and DIBL as the channel shortens."""


def leakage_variation_factor(
    delta_vth: ArrayLike,
    delta_l_rel: ArrayLike = 0.0,
    sensitive_share: float = 1.0,
    temperature_c: float = units.SIMULATION_TEMPERATURE_C,
    ideality: float = LEAKAGE_VARIATION_IDEALITY,
) -> ArrayLike:
    """Multiplicative leakage factor relative to the nominal device.

    ``delta_vth`` is the random-dopant threshold shift (V), ``delta_l_rel``
    the *relative* gate-length deviation (delta_L / L_nominal, positive =
    longer channel = less leakage).
    ``sensitive_share`` in (0, 1] is the fraction of nominal leakage that is
    Vth-sensitive; the remainder is a constant floor.  ``ideality`` sets the
    exponential slope: drain leakage of cache cells uses the DIBL-enhanced
    default, while the 3T1D storage node (drain at low bias, no DIBL) uses
    the plain subthreshold ideality.
    """
    if not 0.0 < sensitive_share <= 1.0:
        raise ConfigurationError(
            f"sensitive_share must be in (0, 1], got {sensitive_share!r}"
        )
    if ideality <= 0:
        raise ConfigurationError(f"ideality must be positive, got {ideality!r}")
    slope = ideality * units.thermal_voltage(temperature_c)
    effective_shift = np.asarray(delta_vth) + LEAKAGE_ROLLOFF_PER_REL_L * np.asarray(
        delta_l_rel
    )
    exponential = np.exp(-effective_shift / slope)
    return sensitive_share * exponential + (1.0 - sensitive_share)
