"""3T1D DRAM cell model (paper section 2.2, Figure 3).

The 3T1D cell stores charge on a gated diode (D1).  Writing a "1" through
the write-access transistor T1 leaves a *degraded* level on the storage
node (T1's threshold plus body effect eat into the supply).  During a read
the diode's voltage-dependent capacitance boosts the read transistor's gate
by 1.5-2.5x the stored voltage, letting the cell discharge the bitline as
fast as a 6T cell -- but only while enough charge remains.

Variation enters through:

* ``delta_vth_t1`` -- the write device's threshold: shifts the stored level
  *and* the storage node's subthreshold leakage,
* ``delta_vth_t2`` -- the read stack's threshold: shifts the boosted
  overdrive needed to match 6T speed,
* ``delta_l`` -- the sub-array's correlated gate length (roll-off couples
  it into both thresholds),
* ``boost_eps`` -- relative variation of the gated-diode boost ratio
  (diode area/capacitance mismatch).

All of it is folded into a single number per cell by
:class:`repro.cells.retention.RetentionModel` -- the retention time --
exactly the lumping argument the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.technology import calibration
from repro.technology.node import TechnologyNode
from repro.technology.transistor import Transistor
from repro.cells.leakage import leakage_variation_factor

ArrayLike = Union[float, np.ndarray]

BODY_EFFECT_SHIFT: float = 0.2
"""Extra threshold seen by T1 when writing a "1" (source high), volts.

With Vdd=1.1 and Vth=0.3 this leaves the 0.6 V stored level the paper's
Figure 3b waveform shows."""

BOOST_RATIO: float = 1.883
"""Gated-diode voltage gain onto T2's gate during a read.

0.6 V stored boosts to the 1.13 V the paper reports (section 2.2)."""

READ_OVERDRIVE_REQUIRED: float = 0.385
"""Boosted-gate overdrive (above T2's threshold) at which the 3T1D read
matches the 6T array access time, volts, for the 32nm reference design.
Other nodes derive their value through :func:`read_overdrive_required`."""

MARGIN_VTH_RATIO: float = 0.236 / 0.30
"""Design rule tying the nominal stored-voltage margin to the node's
threshold voltage.  Random threshold sigma scales with Vth (the scenarios
specify sigma_Vth/Vth), so designing each node's read overdrive to leave a
margin proportional to Vth keeps the margin-to-sigma ratio -- and hence
the dead-cell statistics -- consistent across nodes, exactly as a designer
re-targeting the cell per node would.  The constant reproduces the 32nm
reference design's 236 mV margin."""


def read_overdrive_required(node: TechnologyNode) -> float:
    """Design-time read overdrive for ``node``'s 3T1D cell, volts.

    Computed from the node's *reference* voltages (the Table 1 design
    point), so supply-voltage what-if studies shrink the margin instead of
    silently re-designing the cell.
    """
    reference = TechnologyNode.from_name(node.name)
    stored = reference.vdd - reference.vth - BODY_EFFECT_SHIFT
    required = stored - MARGIN_VTH_RATIO * reference.vth
    if required <= 0:
        raise ConfigurationError(
            f"node {node.name!r} leaves no designable 3T1D read margin"
        )
    return required * BOOST_RATIO - reference.vth

STORAGE_SUBTHRESHOLD_SHARE: float = 0.20
"""Fraction of nominal storage-node leakage that is Vth-sensitive
subthreshold current through T1; the rest (gate/junction leakage) is a
constant floor.  Dampens the retention spread relative to pure
subthreshold leakage."""

STORAGE_LEAK_IDEALITY: float = 1.5
"""Subthreshold ideality of the storage-node leakage.  The storage node
sits at a low drain bias, so its leakage follows the plain subthreshold
slope without the DIBL enhancement used for bitline-connected devices."""

DIODE_BOOST_SIGMA_FACTOR: float = 0.30
"""Random sigma of ``boost_eps`` as a multiple of the scenario's relative
threshold sigma (diode capacitance mismatch)."""

DEVICE_AREA_SIGMA_SCALE: float = 0.78
"""Pelgrom mismatch scale of the 3T1D devices relative to a minimum-size
device.  The 3T1D cell packs only three transistors and a diode into the
8-transistor 6T footprint, so its devices can be drawn larger than
minimum; values below 1.0 shrink the random threshold sigma accordingly."""

MARGIN_ROLLOFF_PER_REL_L: float = 0.384
"""Correlated gate-length to threshold coupling on the margin path, volts
per unit of relative gate-length deviation (0.384 V/unit = 12 mV per nm at
32nm; scaling with L keeps the coupling node-appropriate)."""

ACCESS_PERIPHERY_SHARE: float = 0.33
"""Share of the 3T1D array access spent in periphery (decoder, sense amp),
independent of the stored charge.  Sets the floor of the Figure 4 curve."""

LEAKAGE_SENSITIVE_SHARE_3T1D: float = 0.7
"""Vth-sensitive share of the 3T1D cell's (single, weaker) leakage path."""

# Per-node 3T1D/6T nominal cache leakage ratio, from the Table 3 anchors.
_LEAKAGE_RATIO: dict = {
    "65nm": 3.36 / 15.8,
    "45nm": 5.68 / 36.0,
    "32nm": 24.4 / 78.2,
}


@dataclass(frozen=True)
class DRAM3T1DCell:
    """A 3T1D dynamic memory cell, sized to equal the 1X 6T cell area.

    The paper deliberately sizes the 3T1D cell up to the 6T footprint to
    maximise retention (section 3.1), so the cell has no size knob here.
    """

    node: TechnologyNode

    @property
    def label(self) -> str:
        """Paper-style cell label."""
        return "3T1D"

    @property
    def area(self) -> float:
        """Cell area in m^2 (equal to the 1X 6T cell by design)."""
        return self.node.cell_area

    @property
    def write_transistor(self) -> Transistor:
        """T1, the write-access device."""
        return Transistor(node=self.node, width_f=1.0, length_f=1.0)

    @property
    def read_transistor(self) -> Transistor:
        """T2/T3 lumped read stack."""
        return Transistor(node=self.node, width_f=1.0, length_f=1.0)

    @property
    def read_overdrive_required(self) -> float:
        """This node's design-time read overdrive (see module function)."""
        return read_overdrive_required(self.node)

    # ------------------------------------------------------------------
    # storage node voltages
    # ------------------------------------------------------------------

    def stored_voltage(
        self, delta_vth_t1: ArrayLike = 0.0, delta_l: ArrayLike = 0.0
    ) -> ArrayLike:
        """Storage-node voltage right after writing a "1", volts.

        Clamped at zero: a catastrophically high T1 threshold simply fails
        to write any charge.
        """
        vth_t1 = (
            self.node.vth
            + np.asarray(delta_vth_t1)
            + MARGIN_ROLLOFF_PER_REL_L
            * np.asarray(delta_l) / self.node.feature_size
        )
        return np.maximum(self.node.vdd - vth_t1 - BODY_EFFECT_SHIFT, 0.0)

    def boosted_voltage(
        self, stored: ArrayLike, boost_eps: ArrayLike = 0.0
    ) -> ArrayLike:
        """T2 gate voltage during a read, for a given stored level."""
        return BOOST_RATIO * (1.0 + np.asarray(boost_eps)) * np.asarray(stored)

    def required_storage_voltage(
        self,
        delta_vth_t2: ArrayLike = 0.0,
        delta_l: ArrayLike = 0.0,
        boost_eps: ArrayLike = 0.0,
    ) -> ArrayLike:
        """Minimum stored voltage at which the read still matches 6T speed.

        The boosted gate must sit ``READ_OVERDRIVE_REQUIRED`` above T2's
        effective threshold; dividing by the (varied) boost ratio converts
        that back to a storage-node voltage.
        """
        vth_t2 = (
            self.node.vth
            + np.asarray(delta_vth_t2)
            + MARGIN_ROLLOFF_PER_REL_L
            * np.asarray(delta_l) / self.node.feature_size
        )
        # First-order in the boost variation: a diode with eps less boost
        # needs eps more stored voltage.  (Linearised to keep the variation
        # Gaussian; the paper's +-10-15% component spreads never reach the
        # regime where the 1/(1+eps) curvature matters.)
        base = (vth_t2 + self.read_overdrive_required) / BOOST_RATIO
        return base * (1.0 - np.asarray(boost_eps))

    # ------------------------------------------------------------------
    # storage-node decay
    # ------------------------------------------------------------------

    def nominal_margin(self) -> float:
        """Stored-voltage headroom of the nominal cell, volts."""
        return float(self.stored_voltage() - self.required_storage_voltage())

    def nominal_decay_rate(self) -> float:
        """Storage-node decay rate of the nominal cell in V/s.

        Back-solved from the nominal retention anchor (Figure 4: ~5.8 us at
        32nm): decay_rate = margin / retention.
        """
        margin = self.nominal_margin()
        if margin <= 0:
            raise ConfigurationError(
                "nominal 3T1D cell has no read margin; check node voltages"
            )
        return margin / calibration.nominal_retention_time(self.node)

    def decay_rate(
        self, delta_vth_t1: ArrayLike = 0.0, delta_l: ArrayLike = 0.0
    ) -> ArrayLike:
        """Storage-node decay rate in V/s under variation.

        The Vth-sensitive share follows T1's subthreshold leakage
        (exponential in its effective threshold); the remainder is a fixed
        gate/junction leakage floor.
        """
        factor = leakage_variation_factor(
            delta_vth_t1,
            np.asarray(delta_l) / self.node.feature_size,
            sensitive_share=STORAGE_SUBTHRESHOLD_SHARE,
            ideality=STORAGE_LEAK_IDEALITY,
        )
        return self.nominal_decay_rate() * factor

    # ------------------------------------------------------------------
    # cell leakage (supply current, for the power model)
    # ------------------------------------------------------------------

    def nominal_cell_leakage_power(self) -> float:
        """Leakage power of one nominal 3T1D cell in watts.

        Pinned so that the full 64KB 3T1D cache hits the Table 3 leakage
        anchor: the per-node ratio to the 6T cell comes straight from the
        Table 3 columns.
        """
        from repro.cells.sram6t import SRAM6TCell

        try:
            ratio = _LEAKAGE_RATIO[self.node.name]
        except KeyError:
            raise ConfigurationError(
                f"no 3T1D leakage calibration for node {self.node.name!r}"
            ) from None
        return ratio * SRAM6TCell(self.node).nominal_cell_leakage_power()

    def leakage_power(
        self, delta_vth: ArrayLike = 0.0, delta_l: ArrayLike = 0.0
    ) -> ArrayLike:
        """Cell leakage power in watts under the given variation.

        The single weak path plus the Vth-insensitive floor compress the
        spread relative to 6T -- the mechanism behind Figure 7b's tight
        3T1D leakage distribution.
        """
        factor = leakage_variation_factor(
            delta_vth,
            np.asarray(delta_l) / self.node.feature_size,
            sensitive_share=LEAKAGE_SENSITIVE_SHARE_3T1D,
        )
        return self.nominal_cell_leakage_power() * factor
