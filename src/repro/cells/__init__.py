"""Memory-cell circuit models.

* :mod:`repro.cells.sram6t` -- the 6T SRAM cell (actually the paper's
  2-read/1-write 8-transistor variant, called "6T" throughout the paper):
  access-time variation, read-stability bit flips, and leakage.
* :mod:`repro.cells.dram3t1d` -- the 3T1D dynamic cell: degraded stored
  level, gated-diode boost, and leakage.
* :mod:`repro.cells.retention` -- the retention-time solver that converts
  device variation into the single lumped parameter the paper's
  architecture schemes consume (Figure 4).
"""

from repro.cells.sram6t import SRAM6TCell
from repro.cells.dram3t1d import DRAM3T1DCell
from repro.cells.retention import RetentionModel, AccessTimeCurve
from repro.cells import thermal

__all__ = [
    "SRAM6TCell",
    "DRAM3T1DCell",
    "RetentionModel",
    "AccessTimeCurve",
    "thermal",
]
