"""6T SRAM cell model (paper section 2.1).

The paper's "6T" cell is really an 8-transistor 2-read/1-write variant of
the classic 6T cell, but is called 6T throughout; so do we.  Two sizings
are studied:

* ``1X`` -- minimum-size devices (the baseline that suffers most),
* ``2X`` -- every device doubled in width *and* length, which quarters the
  gate-area-limited random mismatch (Pelgrom: sigma_Vth ~ 1/sqrt(W*L)).

Three effects of process variation are modeled, each feeding a different
paper figure:

1. **Access-time variation** (Figure 6a): the read-path drive current of
   each cell varies with its random Vth and its sub-array's correlated
   gate length, and the wordline/decoder periphery varies with correlated
   gate length.  The slowest cell sets the chip's frequency.
2. **Read-stability flips** (section 2.1): threshold mismatch between the
   access and pull-down device can exceed the read static-noise margin and
   flip the bit.  Calibrated to the ~0.4% bit flip rate the paper reports
   at 32nm under typical variation.
3. **Leakage** (Figure 7): three strong leakage paths per cell, each
   exponential in its device's effective threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.technology import calibration
from repro.technology.node import TechnologyNode
from repro.technology.transistor import Transistor
from repro.cells.leakage import leakage_variation_factor

ArrayLike = Union[float, np.ndarray]

STABILITY_MARGIN_VTH_FACTOR: float = 0.375
"""Read static-noise margin expressed as a fraction of nominal Vth.

The cell flips during a read when the access/pull-down threshold mismatch
exceeds this margin.  0.375 * Vth places the margin at 2.65 sigma of the
mismatch distribution under typical variation for a 1X cell, reproducing
the ~0.4% bit-flip rate the paper quotes at 32nm."""

LEAKAGE_SENSITIVE_SHARE_6T: float = 1.0
"""All three strong 6T leakage paths are subthreshold -- fully Vth-sensitive."""

PERIPHERY_VARIATION_WEIGHT: float = 0.35
"""How strongly the decoder/wordline periphery delay tracks the sub-array's
correlated drive-current factor (large multi-finger periphery devices
average out random mismatch but fully see correlated gate length)."""


@dataclass(frozen=True)
class SRAM6TCell:
    """A 6T SRAM cache cell at one node and sizing.

    ``size_factor`` of 1 is the paper's 1X cell; 2 is the 2X cell (width and
    length of every device doubled).
    """

    node: TechnologyNode
    size_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.size_factor <= 0:
            raise ConfigurationError(
                f"size_factor must be positive, got {self.size_factor!r}"
            )

    @property
    def label(self) -> str:
        """Paper-style cell label, e.g. ``"1X 6T"``."""
        if float(self.size_factor).is_integer():
            return f"{int(self.size_factor)}X 6T"
        return f"{self.size_factor:g}X 6T"

    @property
    def read_transistor(self) -> Transistor:
        """The lumped read-path device (access + pull-down in series)."""
        return Transistor(
            node=self.node,
            width_f=self.size_factor,
            length_f=self.size_factor,
        )

    @property
    def area(self) -> float:
        """Cell area in m^2 (scales with the square of the sizing)."""
        return self.node.cell_area * self.size_factor ** 2

    @property
    def mismatch_scale(self) -> float:
        """Pelgrom scaling of random Vth sigma relative to a 1X device."""
        return self.read_transistor.mismatch_sigma_scale()

    # ------------------------------------------------------------------
    # access time
    # ------------------------------------------------------------------

    def nominal_access_time(self) -> float:
        """Ideal array access time in seconds (calibration anchor)."""
        return calibration.nominal_access_time(self.node)

    def read_current_factor(
        self, delta_vth: ArrayLike = 0.0, delta_l: ArrayLike = 0.0
    ) -> ArrayLike:
        """Read-path drive current relative to the nominal cell.

        Zero (a cell that cannot discharge the bitline at all) is possible
        for extreme corners and is treated by callers as an unusable cell.
        """
        transistor = self.read_transistor
        nominal = transistor.on_current()
        actual = transistor.on_current(delta_vth=delta_vth, delta_l=delta_l)
        return actual / nominal

    def access_time(
        self,
        delta_vth: ArrayLike = 0.0,
        delta_l: ArrayLike = 0.0,
        periphery_factor: ArrayLike = 1.0,
    ) -> ArrayLike:
        """Array access time through this cell, in seconds.

        The calibrated nominal access time is split into a bitline share
        (scales with this cell's read current), a wordline/decoder share
        (scales with the sub-array ``periphery_factor``), and a fixed
        sense-amp/output share.  A dead read path yields ``inf``.
        """
        nominal = self.nominal_access_time()
        current = np.asarray(
            self.read_current_factor(delta_vth=delta_vth, delta_l=delta_l)
        )
        with np.errstate(divide="ignore"):
            bitline = np.where(
                current > 0.0,
                calibration.BITLINE_FRACTION / np.maximum(current, 1e-12),
                np.inf,
            )
        wordline = calibration.WORDLINE_FRACTION * np.asarray(periphery_factor)
        periphery = calibration.PERIPHERY_FRACTION
        return nominal * (bitline + wordline + periphery)

    def periphery_delay_factor(self, delta_l_correlated: ArrayLike) -> ArrayLike:
        """Wordline/decoder delay factor of a sub-array.

        Periphery devices are large, so only the correlated gate-length
        component matters; ``PERIPHERY_VARIATION_WEIGHT`` derates the full
        single-device sensitivity to account for the mix of gate and wire
        delay along the path.
        """
        transistor = self.read_transistor
        nominal = transistor.on_current()
        actual = transistor.on_current(delta_l=delta_l_correlated)
        ratio = np.asarray(actual) / nominal
        slowdown = np.where(ratio > 0, 1.0 / np.maximum(ratio, 1e-12), np.inf)
        return 1.0 + PERIPHERY_VARIATION_WEIGHT * (slowdown - 1.0)

    # ------------------------------------------------------------------
    # stability
    # ------------------------------------------------------------------

    def stability_margin(self) -> float:
        """Threshold-mismatch read margin in volts."""
        return STABILITY_MARGIN_VTH_FACTOR * self.node.vth

    def flip_probability(self, sigma_vth: float) -> float:
        """Probability that one bit flips on a read.

        ``sigma_vth`` is the per-device random threshold sigma for a
        *minimum-size* device; Pelgrom scaling for this cell's sizing is
        applied internally.  The mismatch of the critical pair has sigma
        ``sqrt(2) * sigma_vth * mismatch_scale`` and only the tail beyond
        the read margin flips.
        """
        if sigma_vth < 0:
            raise ConfigurationError(f"sigma_vth must be >= 0, got {sigma_vth}")
        if sigma_vth == 0.0:
            return 0.0
        mismatch_sigma = math.sqrt(2.0) * sigma_vth * self.mismatch_scale
        z = self.stability_margin() / mismatch_sigma
        # One-sided tail: only mismatch weakening the pull-down flips.
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    def line_failure_probability(self, sigma_vth: float, line_bits: int = 256) -> float:
        """Probability that at least one bit in a ``line_bits`` line flips.

        Reproduces the paper's observation that a 0.4% bit flip rate makes
        256-bit line redundancy ineffective (64% line failure)."""
        if line_bits < 1:
            raise ConfigurationError(f"line_bits must be >= 1, got {line_bits}")
        p_bit = self.flip_probability(sigma_vth)
        return 1.0 - (1.0 - p_bit) ** line_bits

    # ------------------------------------------------------------------
    # leakage
    # ------------------------------------------------------------------

    def nominal_cell_leakage_power(self) -> float:
        """Leakage power of one nominal cell in watts (three strong paths)."""
        transistor = self.read_transistor
        per_path = transistor.off_current() * self.node.vdd
        return calibration.STRONG_LEAK_PATHS_6T * per_path

    def leakage_power(
        self, delta_vth: ArrayLike = 0.0, delta_l: ArrayLike = 0.0
    ) -> ArrayLike:
        """Cell leakage power in watts under the given variation."""
        factor = leakage_variation_factor(
            delta_vth,
            np.asarray(delta_l) / self.node.feature_size,
            sensitive_share=LEAKAGE_SENSITIVE_SHARE_6T,
        )
        return self.nominal_cell_leakage_power() * factor
