"""Temperature dependence of 3T1D retention.

All circuit numbers in the paper are simulated at 80C (section 3.1), and
retention times are set assuming "worst-case temperatures" (section
4.3.1).  This module supplies the standard first-order link between the
two: storage-node leakage is subthreshold-dominated and roughly doubles
every ``DOUBLING_INTERVAL_C`` degrees, so retention halves at the same
rate.  It feeds the BIST guard band and supports what-if studies of
thermal margins.

The scaling is deliberately kept *out* of the calibrated default models
(everything else in the library is an 80C quantity, like the paper's);
callers opt in through these helpers.
"""

from __future__ import annotations

from repro import units
from repro.errors import ConfigurationError

DOUBLING_INTERVAL_C: float = 15.0
"""Temperature step over which storage-node leakage doubles, Celsius.

DRAM retention measurements commonly show halving every 10-20C; 15C is
the middle of that band and consistent with the subthreshold slope of the
calibrated storage leak at 80C."""


def leakage_temperature_factor(
    temperature_c: float,
    reference_c: float = units.SIMULATION_TEMPERATURE_C,
) -> float:
    """Storage-node leakage multiplier at ``temperature_c`` vs reference."""
    _check_temperature(temperature_c)
    return 2.0 ** ((temperature_c - reference_c) / DOUBLING_INTERVAL_C)


def retention_temperature_factor(
    temperature_c: float,
    reference_c: float = units.SIMULATION_TEMPERATURE_C,
) -> float:
    """Retention multiplier at ``temperature_c`` vs the 80C reference.

    Retention is inversely proportional to the storage-node leakage, so a
    hotter cell retains for less time.
    """
    return 1.0 / leakage_temperature_factor(temperature_c, reference_c)


def guard_band_for(
    max_operating_c: float,
    test_c: float = units.SIMULATION_TEMPERATURE_C,
) -> float:
    """Retention derating a tester at ``test_c`` must apply so the stored
    counter values stay safe up to ``max_operating_c``.

    This is the physical justification for
    :data:`repro.array.bist.TEMPERATURE_GUARD_BAND`: testing at 80C while
    guaranteeing ~82C operation gives the default ~0.9 factor.
    """
    if max_operating_c < test_c:
        raise ConfigurationError(
            "the guard band covers operation *hotter* than the test; "
            f"got max_operating_c={max_operating_c} < test_c={test_c}"
        )
    return retention_temperature_factor(max_operating_c, test_c)


def _check_temperature(temperature_c: float) -> None:
    if not -55.0 <= temperature_c <= 150.0:
        raise ConfigurationError(
            f"temperature {temperature_c}C outside the model's -55..150C range"
        )
