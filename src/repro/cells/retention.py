"""Retention-time solver and the Figure 4 access-time curve.

The paper *redefines* retention time: not the time until the stored value
is lost, but the time during which the 3T1D cell's access speed still
matches the 6T SRAM array access time.  The solver here implements that
definition in closed form:

1. the stored voltage decays linearly at the cell's leakage-driven decay
   rate: ``V_s(t) = V_s0 - R * t``;
2. a read succeeds at 6T speed while the boosted gate overdrive stays
   above the required overdrive, i.e. while ``V_s(t) >= V_s*``;
3. retention time is therefore ``t_ret = max(0, (V_s0 - V_s*) / R)``.

A cell whose margin ``V_s0 - V_s*`` is negative can never be read at 6T
speed even immediately after a write: it is **dead** (retention zero).
Dead cells are what produce the paper's dead cache lines under severe
variation (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.technology import calibration
from repro.technology.node import TechnologyNode
from repro.technology.transistor import ALPHA_POWER_EXPONENT
from repro.cells.dram3t1d import (
    ACCESS_PERIPHERY_SHARE,
    DRAM3T1DCell,
)

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class RetentionModel:
    """Maps device variation of a 3T1D cell to its retention time."""

    cell: DRAM3T1DCell

    @classmethod
    def for_node(cls, node: TechnologyNode) -> "RetentionModel":
        """Convenience constructor from a technology node."""
        return cls(cell=DRAM3T1DCell(node))

    @property
    def node(self) -> TechnologyNode:
        """Technology node of the underlying cell."""
        return self.cell.node

    def nominal_retention_time(self) -> float:
        """Retention of the no-variation cell, seconds (Figure 4 anchor)."""
        return calibration.nominal_retention_time(self.node)

    def retention_time(
        self,
        delta_vth_t1: ArrayLike = 0.0,
        delta_vth_t2: ArrayLike = 0.0,
        delta_l: ArrayLike = 0.0,
        boost_eps: ArrayLike = 0.0,
    ) -> ArrayLike:
        """Retention time in seconds; zero marks a dead cell.

        All arguments broadcast, so a whole sub-array's cells can be solved
        in one vectorised call.
        """
        stored = self.cell.stored_voltage(delta_vth_t1, delta_l)
        required = self.cell.required_storage_voltage(
            delta_vth_t2, delta_l, boost_eps
        )
        margin = np.asarray(stored) - np.asarray(required)
        rate = np.asarray(self.cell.decay_rate(delta_vth_t1, delta_l))
        return np.where(margin > 0.0, margin / rate, 0.0)

    def is_dead(
        self,
        delta_vth_t1: ArrayLike = 0.0,
        delta_vth_t2: ArrayLike = 0.0,
        delta_l: ArrayLike = 0.0,
        boost_eps: ArrayLike = 0.0,
    ) -> ArrayLike:
        """True where the cell cannot meet 6T speed even right after a write."""
        times = self.retention_time(delta_vth_t1, delta_vth_t2, delta_l, boost_eps)
        return np.asarray(times) <= 0.0


@dataclass(frozen=True)
class AccessTimeCurve:
    """The Figure 4 curve: array access time vs. time since the last write.

    ``delta_*`` freeze one cell's corner; :meth:`access_time` then evaluates
    the access time at any elapsed time after a write.  The curve starts
    well below the 6T access time (the boosted read is *faster* than 6T
    right after a write), rises as the stored charge leaks away, crosses
    the 6T line exactly at the cell's retention time, and diverges as the
    boosted overdrive collapses.
    """

    model: RetentionModel
    delta_vth_t1: float = 0.0
    delta_vth_t2: float = 0.0
    delta_l: float = 0.0
    boost_eps: float = 0.0

    @property
    def sram_access_time(self) -> float:
        """The 6T array access time the retention definition compares against."""
        return calibration.nominal_access_time(self.model.node)

    @property
    def retention_time(self) -> float:
        """This corner's retention time in seconds (zero if dead)."""
        return float(
            self.model.retention_time(
                self.delta_vth_t1, self.delta_vth_t2, self.delta_l, self.boost_eps
            )
        )

    def access_time(self, elapsed: ArrayLike) -> ArrayLike:
        """Array access time (seconds) ``elapsed`` seconds after a write.

        Returns ``inf`` once the boosted overdrive reaches zero (the cell
        can no longer discharge the bitline at all).
        """
        elapsed_arr = np.asarray(elapsed, dtype=float)
        if np.any(elapsed_arr < 0):
            raise ConfigurationError("elapsed time must be >= 0")
        cell = self.model.cell
        stored0 = cell.stored_voltage(self.delta_vth_t1, self.delta_l)
        rate = cell.decay_rate(self.delta_vth_t1, self.delta_l)
        stored = np.maximum(np.asarray(stored0) - np.asarray(rate) * elapsed_arr, 0.0)
        boosted = cell.boosted_voltage(stored, self.boost_eps)
        # Effective T2 threshold including roll-off, reconstructed from the
        # required-storage relation: V_req * boost = vth_t2_eff + K.
        required = cell.required_storage_voltage(
            self.delta_vth_t2, self.delta_l, self.boost_eps
        )
        boost = np.asarray(cell.boosted_voltage(1.0, self.boost_eps))
        overdrive_required = cell.read_overdrive_required
        vth_t2_eff = np.asarray(required) * boost - overdrive_required
        overdrive = boosted - vth_t2_eff
        nominal = self.sram_access_time
        periphery = ACCESS_PERIPHERY_SHARE * nominal
        bitline_at_match = (1.0 - ACCESS_PERIPHERY_SHARE) * nominal
        with np.errstate(divide="ignore"):
            bitline = np.where(
                overdrive > 0.0,
                bitline_at_match
                * (overdrive_required / np.maximum(overdrive, 1e-12))
                ** ALPHA_POWER_EXPONENT,
                np.inf,
            )
        result = periphery + bitline
        if np.isscalar(elapsed) or np.ndim(elapsed) == 0:
            return float(result)
        return result

    def matches_sram_speed(self, elapsed: ArrayLike) -> ArrayLike:
        """True while the access time is still within the 6T access time."""
        access = np.asarray(self.access_time(np.asarray(elapsed, dtype=float)))
        # Tiny tolerance: at exactly t = retention the curve touches the line.
        return access <= self.sram_access_time * (1.0 + 1e-9)
