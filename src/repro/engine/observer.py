"""Progress and timing consumers for the engine's typed event stream.

The engine reports through typed events
(:mod:`repro.engine.events`): frozen dataclasses dispatched to any
subscriber with a ``handle(event)`` method.  This module hosts the
standard consumers:

* :class:`CLIProgressReporter` prints human-readable progress lines;
* :class:`JSONMetricsObserver` accumulates a machine-readable timing
  record (optionally including a tracer's per-phase table) and dumps it
  as JSON at the end of the run;
* :class:`CompositeObserver` fans events out to several subscribers (a
  named :class:`~repro.engine.events.EventStream` subclass).

Subscribers are strictly passive -- they never influence results, so
serial, parallel, cached, and traced runs stay bit-identical regardless
of what is attached.

**Removed surface.**  The legacy per-event ``on_*`` callbacks
(``on_task_retried``, ``on_worker_respawned``, ...) and the
``LegacyEmitShims`` emitter mixin completed their deprecation cycle and
are gone (DESIGN.md section 3d).  Subscribers override
:meth:`RunObserver.handle` and match on event types; defining an old
``on_*`` name on a :class:`RunObserver` subclass is now a hard
:class:`~repro.errors.ConfigurationError` at class-definition time, so
a stale subscriber fails loudly instead of silently observing nothing.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from typing import Any, Dict, Optional, Sequence, TextIO, Tuple

from repro.errors import ConfigurationError
from repro.engine.events import (
    BatchEnded,
    BatchStarted,
    ChipCompleted,
    EngineEvent,
    EventStream,
    ExperimentEnded,
    ExperimentStarted,
    KernelPathsCollected,
    RunCheckpointed,
    RunEnded,
    RunResumed,
    RunStarted,
    TaskRetried,
    WorkerRespawned,
)

#: Callback names of the removed legacy observer surface.  A subclass
#: defining any of these almost certainly expected the old ``handle``
#: routing, so class creation rejects them outright.
_REMOVED_CALLBACK_NAMES = frozenset({
    "on_run_start",
    "on_experiment_start",
    "on_experiment_end",
    "on_batch_start",
    "on_chip_done",
    "on_batch_end",
    "on_task_retried",
    "on_worker_respawned",
    "on_run_checkpointed",
    "on_run_resumed",
    "on_run_end",
})


class RunObserver:
    """Base subscriber: override :meth:`handle` and match on event types.

    The base :meth:`handle` ignores every event, so subclasses only
    handle what they care about.  Handlers must be cheap and
    side-effect-free with respect to the computation -- they run on the
    coordinating process, between result arrivals.

    The legacy ``on_*`` callback routing was removed; defining one of
    those names on a subclass raises
    :class:`~repro.errors.ConfigurationError` immediately, naming the
    typed-event surface to migrate to.
    """

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        stale = sorted(_REMOVED_CALLBACK_NAMES.intersection(vars(cls)))
        if stale:
            raise ConfigurationError(
                f"{cls.__name__} defines removed legacy observer "
                f"callback(s) {', '.join(stale)}; the on_* surface was "
                "removed -- override handle(event) and match on "
                "repro.engine.events types instead"
            )

    def handle(self, event: EngineEvent) -> None:
        """Deliver one typed event (base implementation ignores it)."""


NULL_OBSERVER = RunObserver()
"""Shared do-nothing subscriber (the default everywhere)."""


class CompositeObserver(EventStream):
    """Forwards every event to a sequence of subscribers, in order.

    A named :class:`~repro.engine.events.EventStream` subclass whose
    constructor takes the subscriber sequence positionally; ``observers``
    is an alias for :attr:`~repro.engine.events.EventStream.subscribers`.
    """

    def __init__(self, observers: Sequence[Any]):
        super().__init__(observers)

    @property
    def observers(self) -> Tuple[Any, ...]:
        """The wrapped subscribers (dispatch order)."""
        return self.subscribers


class CLIProgressReporter(RunObserver):
    """Prints progress lines suitable for a terminal.

    Per-chip events are throttled to roughly ``updates_per_batch`` lines
    per batch so large Monte-Carlo sweeps don't flood the console.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        updates_per_batch: int = 4,
    ):
        self.stream = stream if stream is not None else sys.stdout
        self.updates_per_batch = max(1, updates_per_batch)

    def _print(self, message: str) -> None:
        print(message, file=self.stream, flush=True)

    def handle(self, event: EngineEvent) -> None:
        if isinstance(event, ChipCompleted):
            step = max(1, event.total // self.updates_per_batch)
            if event.completed == event.total or event.completed % step == 0:
                self._print(
                    f"  [{event.label}] {event.completed}/{event.total}"
                )
        elif isinstance(event, RunStarted):
            self._print(f"running {event.n_experiments} experiments")
        elif isinstance(event, ExperimentStarted):
            self._print(f"{event.name}: running...")
        elif isinstance(event, ExperimentEnded):
            suffix = " (cached)" if event.cached else ""
            self._print(f"{event.name}: done in {event.elapsed_s:.1f}s{suffix}")
        elif isinstance(event, TaskRetried):
            self._print(
                f"  [{event.label}] task {event.index} retry "
                f"#{event.attempt}: {event.reason}"
            )
        elif isinstance(event, WorkerRespawned):
            self._print(
                f"  [{event.label}] worker pool respawned "
                f"(failure #{event.pool_failures})"
            )
        elif isinstance(event, RunResumed):
            self._print(
                f"  [{event.label}] resumed {event.restored} results "
                "from checkpoint"
            )
        elif isinstance(event, RunEnded):
            self._print(f"all experiments done in {event.elapsed_s:.1f}s")


def _empty_robustness() -> Dict[str, int]:
    return {
        "task_retries": 0,
        "worker_respawns": 0,
        "results_checkpointed": 0,
        "results_resumed": 0,
    }


class JSONMetricsObserver(RunObserver):
    """Collects per-experiment/per-batch timings and dumps them as JSON.

    Durations are measured with the monotonic ``time.perf_counter``
    clock (never wall clock, so a suspended laptop or an NTP step cannot
    corrupt them); the single wall-clock read is the intentional
    ``started_at_unix_s`` run timestamp.  Alongside timing, the record
    accumulates the engine's robustness events (retries, pool respawns,
    checkpoint/resume counts) and, when a ``tracer`` is attached, the
    aggregated per-phase trace table under ``trace_phases``.

    The record is available in-memory as :attr:`metrics` and, if a
    ``path`` was given, written to disk when the run ends.
    """

    def __init__(
        self,
        path: Optional[pathlib.Path] = None,
        tracer: Optional[Any] = None,
    ):
        self.path = pathlib.Path(path) if path is not None else None
        self.tracer = tracer
        self.metrics: Dict[str, Any] = self._empty_metrics()
        self._batch_starts: Dict[str, float] = {}
        self._current: Optional[Dict[str, Any]] = None

    @staticmethod
    def _empty_metrics() -> Dict[str, Any]:
        return {
            "experiments": [],
            "total_elapsed_s": None,
            "started_at_unix_s": None,
            "robustness": _empty_robustness(),
            "kernel_paths": {},
        }

    # ------------------------------------------------------------------

    def handle(self, event: EngineEvent) -> None:
        if isinstance(event, RunStarted):
            self._run_started()
        elif isinstance(event, ExperimentStarted):
            self._experiment_started(event.name)
        elif isinstance(event, ExperimentEnded):
            self._experiment_ended(event)
        elif isinstance(event, BatchStarted):
            self._batch_started(event)
        elif isinstance(event, BatchEnded):
            self._batch_ended(event)
        elif isinstance(event, TaskRetried):
            self.metrics["robustness"]["task_retries"] += 1
        elif isinstance(event, WorkerRespawned):
            self.metrics["robustness"]["worker_respawns"] += 1
        elif isinstance(event, RunCheckpointed):
            self.metrics["robustness"]["results_checkpointed"] += event.flushed
        elif isinstance(event, RunResumed):
            self.metrics["robustness"]["results_resumed"] += event.restored
        elif isinstance(event, KernelPathsCollected):
            # scheme/benchmark -> replay path ("flattened" | "timeline"
            # | "event"); later batches overwrite earlier cells, which
            # is fine because paths are a pure function of the scheme.
            self.metrics["kernel_paths"].update(dict(event.paths))
        elif isinstance(event, RunEnded):
            self._run_ended(event.elapsed_s)

    # ------------------------------------------------------------------

    def _run_started(self) -> None:
        self.metrics = self._empty_metrics()
        # Intentional run timestamp: metrics are diagnostics, never
        # results, so recording when the run happened is allowed here.
        self.metrics["started_at_unix_s"] = round(
            time.time(), 3  # repro: ignore[DET003]
        )
        self._current = None

    def _experiment_started(self, name: str) -> None:
        self._current = {
            "name": name,
            "elapsed_s": None,
            "cached": False,
            "batches": [],
        }
        self.metrics["experiments"].append(self._current)

    def _experiment_ended(self, event: ExperimentEnded) -> None:
        if self._current is None or self._current["name"] != event.name:
            self._experiment_started(event.name)
        self._current["elapsed_s"] = round(event.elapsed_s, 4)
        self._current["cached"] = event.cached
        self._current = None

    def _batch_started(self, event: BatchStarted) -> None:
        # Monotonic clock: batch durations must not jump with the wall
        # clock (the recorded elapsed comes from the engine, also
        # perf_counter-based; this start only guards unmatched ends).
        self._batch_starts[event.label] = time.perf_counter()
        if self._current is not None:
            self._current["batches"].append({
                "label": event.label,
                "items": event.total,
                "elapsed_s": None,
            })

    def _batch_ended(self, event: BatchEnded) -> None:
        self._batch_starts.pop(event.label, None)
        if self._current is not None:
            for batch in reversed(self._current["batches"]):
                if batch["label"] == event.label and batch["elapsed_s"] is None:
                    batch["elapsed_s"] = round(event.elapsed_s, 4)
                    break

    def _run_ended(self, elapsed: float) -> None:
        self.metrics["total_elapsed_s"] = round(elapsed, 4)
        if self.tracer is not None:
            self.metrics["trace_phases"] = self.tracer.phase_table()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(self.metrics, indent=2) + "\n")


__all__ = [
    "RunObserver",
    "NULL_OBSERVER",
    "CompositeObserver",
    "CLIProgressReporter",
    "JSONMetricsObserver",
]
