"""Progress and timing hooks for the execution engine.

:class:`RunObserver` is the event surface the engine reports through:
per-run, per-experiment, and per-chip (batch item) events.  Observers are
strictly passive -- they never influence results, so serial, parallel and
cached runs stay bit-identical regardless of which observers are
attached.

Two concrete observers cover the common cases:

* :class:`CLIProgressReporter` prints human-readable progress lines;
* :class:`JSONMetricsObserver` accumulates a machine-readable timing
  record and dumps it as JSON at the end of the run.

Several observers can be fanned out with :class:`CompositeObserver`.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from typing import Any, Dict, Optional, Sequence, TextIO


class RunObserver:
    """Engine event hooks; the base class ignores every event.

    Subclass and override the events you care about.  All callbacks must
    be cheap and side-effect-free with respect to the computation --
    they run on the coordinating process, between result arrivals.
    """

    def on_run_start(self, n_experiments: int) -> None:
        """A multi-experiment run is starting."""

    def on_experiment_start(self, name: str) -> None:
        """One experiment is about to run."""

    def on_experiment_end(self, name: str, elapsed: float, cached: bool) -> None:
        """One experiment finished (``cached`` if served from the cache)."""

    def on_batch_start(self, label: str, total: int) -> None:
        """A chip batch of ``total`` work items is being scheduled."""

    def on_chip_done(self, label: str, completed: int, total: int) -> None:
        """One work item of a batch completed (``completed`` so far)."""

    def on_batch_end(self, label: str, total: int, elapsed: float) -> None:
        """A chip batch fully completed."""

    def on_task_retried(
        self, label: str, index: int, attempt: int, reason: str
    ) -> None:
        """One work item failed and is being retried (``attempt`` so far)."""

    def on_worker_respawned(self, label: str, pool_failures: int) -> None:
        """The worker pool broke (crash/timeout) and was recycled."""

    def on_run_checkpointed(self, label: str, flushed: int) -> None:
        """``flushed`` batch results were durably journalled."""

    def on_run_resumed(self, label: str, restored: int) -> None:
        """``restored`` batch results were served from the run journal."""

    def on_run_end(self, elapsed: float) -> None:
        """The multi-experiment run finished."""


NULL_OBSERVER = RunObserver()
"""Shared do-nothing observer (the default everywhere)."""


class CompositeObserver(RunObserver):
    """Forwards every event to a sequence of observers, in order."""

    def __init__(self, observers: Sequence[RunObserver]):
        self.observers = tuple(observers)

    def on_run_start(self, n_experiments: int) -> None:
        for obs in self.observers:
            obs.on_run_start(n_experiments)

    def on_experiment_start(self, name: str) -> None:
        for obs in self.observers:
            obs.on_experiment_start(name)

    def on_experiment_end(self, name: str, elapsed: float, cached: bool) -> None:
        for obs in self.observers:
            obs.on_experiment_end(name, elapsed, cached)

    def on_batch_start(self, label: str, total: int) -> None:
        for obs in self.observers:
            obs.on_batch_start(label, total)

    def on_chip_done(self, label: str, completed: int, total: int) -> None:
        for obs in self.observers:
            obs.on_chip_done(label, completed, total)

    def on_batch_end(self, label: str, total: int, elapsed: float) -> None:
        for obs in self.observers:
            obs.on_batch_end(label, total, elapsed)

    def on_task_retried(
        self, label: str, index: int, attempt: int, reason: str
    ) -> None:
        for obs in self.observers:
            obs.on_task_retried(label, index, attempt, reason)

    def on_worker_respawned(self, label: str, pool_failures: int) -> None:
        for obs in self.observers:
            obs.on_worker_respawned(label, pool_failures)

    def on_run_checkpointed(self, label: str, flushed: int) -> None:
        for obs in self.observers:
            obs.on_run_checkpointed(label, flushed)

    def on_run_resumed(self, label: str, restored: int) -> None:
        for obs in self.observers:
            obs.on_run_resumed(label, restored)

    def on_run_end(self, elapsed: float) -> None:
        for obs in self.observers:
            obs.on_run_end(elapsed)


class CLIProgressReporter(RunObserver):
    """Prints progress lines suitable for a terminal.

    Per-chip events are throttled to roughly ``updates_per_batch`` lines
    per batch so large Monte-Carlo sweeps don't flood the console.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        updates_per_batch: int = 4,
    ):
        self.stream = stream if stream is not None else sys.stdout
        self.updates_per_batch = max(1, updates_per_batch)

    def _emit(self, message: str) -> None:
        print(message, file=self.stream, flush=True)

    def on_run_start(self, n_experiments: int) -> None:
        self._emit(f"running {n_experiments} experiments")

    def on_experiment_start(self, name: str) -> None:
        self._emit(f"{name}: running...")

    def on_experiment_end(self, name: str, elapsed: float, cached: bool) -> None:
        suffix = " (cached)" if cached else ""
        self._emit(f"{name}: done in {elapsed:.1f}s{suffix}")

    def on_chip_done(self, label: str, completed: int, total: int) -> None:
        step = max(1, total // self.updates_per_batch)
        if completed == total or completed % step == 0:
            self._emit(f"  [{label}] {completed}/{total}")

    def on_task_retried(
        self, label: str, index: int, attempt: int, reason: str
    ) -> None:
        self._emit(f"  [{label}] task {index} retry #{attempt}: {reason}")

    def on_worker_respawned(self, label: str, pool_failures: int) -> None:
        self._emit(
            f"  [{label}] worker pool respawned (failure #{pool_failures})"
        )

    def on_run_resumed(self, label: str, restored: int) -> None:
        self._emit(f"  [{label}] resumed {restored} results from checkpoint")

    def on_run_end(self, elapsed: float) -> None:
        self._emit(f"all experiments done in {elapsed:.1f}s")


def _empty_robustness() -> Dict[str, int]:
    return {
        "task_retries": 0,
        "worker_respawns": 0,
        "results_checkpointed": 0,
        "results_resumed": 0,
    }


class JSONMetricsObserver(RunObserver):
    """Collects per-experiment/per-batch timings and dumps them as JSON.

    Durations are measured with the monotonic ``time.perf_counter``
    clock (never wall clock, so a suspended laptop or an NTP step cannot
    corrupt them); the single wall-clock read is the intentional
    ``started_at_unix_s`` run timestamp.  Alongside timing, the record
    accumulates the engine's robustness events: retries, pool respawns,
    and checkpoint/resume counts.

    The record is available in-memory as :attr:`metrics` and, if a
    ``path`` was given, written to disk when the run ends.
    """

    def __init__(self, path: Optional[pathlib.Path] = None):
        self.path = pathlib.Path(path) if path is not None else None
        self.metrics: Dict[str, Any] = self._empty_metrics()
        self._batch_starts: Dict[str, float] = {}
        self._current: Optional[Dict[str, Any]] = None

    @staticmethod
    def _empty_metrics() -> Dict[str, Any]:
        return {
            "experiments": [],
            "total_elapsed_s": None,
            "started_at_unix_s": None,
            "robustness": _empty_robustness(),
        }

    # ------------------------------------------------------------------

    def on_run_start(self, n_experiments: int) -> None:
        self.metrics = self._empty_metrics()
        # Intentional run timestamp: metrics are diagnostics, never
        # results, so recording when the run happened is allowed here.
        self.metrics["started_at_unix_s"] = round(
            time.time(), 3  # repro: ignore[DET003]
        )
        self._current = None

    def on_experiment_start(self, name: str) -> None:
        self._current = {
            "name": name,
            "elapsed_s": None,
            "cached": False,
            "batches": [],
        }
        self.metrics["experiments"].append(self._current)

    def on_experiment_end(self, name: str, elapsed: float, cached: bool) -> None:
        if self._current is None or self._current["name"] != name:
            self.on_experiment_start(name)
        self._current["elapsed_s"] = round(elapsed, 4)
        self._current["cached"] = cached
        self._current = None

    def on_batch_start(self, label: str, total: int) -> None:
        # Monotonic clock: batch durations must not jump with the wall
        # clock (the recorded elapsed comes from the engine, also
        # perf_counter-based; this start only guards unmatched ends).
        self._batch_starts[label] = time.perf_counter()
        if self._current is not None:
            self._current["batches"].append({
                "label": label,
                "items": total,
                "elapsed_s": None,
            })

    def on_batch_end(self, label: str, total: int, elapsed: float) -> None:
        self._batch_starts.pop(label, None)
        if self._current is not None:
            for batch in reversed(self._current["batches"]):
                if batch["label"] == label and batch["elapsed_s"] is None:
                    batch["elapsed_s"] = round(elapsed, 4)
                    break

    def on_task_retried(
        self, label: str, index: int, attempt: int, reason: str
    ) -> None:
        self.metrics["robustness"]["task_retries"] += 1

    def on_worker_respawned(self, label: str, pool_failures: int) -> None:
        self.metrics["robustness"]["worker_respawns"] += 1

    def on_run_checkpointed(self, label: str, flushed: int) -> None:
        self.metrics["robustness"]["results_checkpointed"] += flushed

    def on_run_resumed(self, label: str, restored: int) -> None:
        self.metrics["robustness"]["results_resumed"] += restored

    def on_run_end(self, elapsed: float) -> None:
        self.metrics["total_elapsed_s"] = round(elapsed, 4)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(self.metrics, indent=2) + "\n")


__all__ = [
    "RunObserver",
    "NULL_OBSERVER",
    "CompositeObserver",
    "CLIProgressReporter",
    "JSONMetricsObserver",
]
