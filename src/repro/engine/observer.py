"""Progress and timing consumers for the engine's typed event stream.

The engine reports through typed events
(:mod:`repro.engine.events`): frozen dataclasses dispatched to any
subscriber with a ``handle(event)`` method.  This module hosts the
standard consumers:

* :class:`CLIProgressReporter` prints human-readable progress lines;
* :class:`JSONMetricsObserver` accumulates a machine-readable timing
  record (optionally including a tracer's per-phase table) and dumps it
  as JSON at the end of the run;
* :class:`CompositeObserver` fans events out to several subscribers (a
  thin legacy veneer over :class:`~repro.engine.events.EventStream`).

Subscribers are strictly passive -- they never influence results, so
serial, parallel, cached, and traced runs stay bit-identical regardless
of what is attached.

**Deprecated surface.**  :class:`RunObserver`'s per-event ``on_*``
callbacks (``on_task_retried``, ``on_worker_respawned``, ...) are the
legacy observer API.  They keep working: the base class's
``handle(event)`` routes each typed event to the matching overridden
callback (warning once per class), and the built-in consumers accept
direct ``on_*`` calls through :class:`LegacyEmitShims`.  New code should
subscribe with ``handle(event)`` and match on event types.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
import warnings
from typing import Any, Callable, Dict, Optional, Sequence, TextIO, Tuple, Type

from repro.engine.events import (
    BatchEnded,
    BatchStarted,
    ChipCompleted,
    EngineEvent,
    EventStream,
    ExperimentEnded,
    ExperimentStarted,
    KernelPathsCollected,
    RunCheckpointed,
    RunEnded,
    RunResumed,
    RunStarted,
    TaskRetried,
    WorkerRespawned,
)

#: Typed event -> (legacy callback name, positional-argument unpacker).
_LEGACY_ROUTES: Dict[
    Type[EngineEvent], Tuple[str, Callable[[Any], Tuple[Any, ...]]]
] = {
    RunStarted: ("on_run_start", lambda e: (e.n_experiments,)),
    ExperimentStarted: ("on_experiment_start", lambda e: (e.name,)),
    ExperimentEnded: (
        "on_experiment_end", lambda e: (e.name, e.elapsed_s, e.cached)
    ),
    BatchStarted: ("on_batch_start", lambda e: (e.label, e.total)),
    ChipCompleted: ("on_chip_done", lambda e: (e.label, e.completed, e.total)),
    BatchEnded: ("on_batch_end", lambda e: (e.label, e.total, e.elapsed_s)),
    TaskRetried: (
        "on_task_retried", lambda e: (e.label, e.index, e.attempt, e.reason)
    ),
    WorkerRespawned: (
        "on_worker_respawned", lambda e: (e.label, e.pool_failures)
    ),
    RunCheckpointed: ("on_run_checkpointed", lambda e: (e.label, e.flushed)),
    RunResumed: ("on_run_resumed", lambda e: (e.label, e.restored)),
    RunEnded: ("on_run_end", lambda e: (e.elapsed_s,)),
}

_LEGACY_WARNED: set = set()


def _warn_legacy(cls: type, what: str, event_name: str) -> None:
    """One consolidated deprecation message for every ``on_*`` shim.

    Always names the typed-event replacement so the migration is
    copy-pasteable from the warning itself.
    """
    if cls in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(cls)
    warnings.warn(
        f"{what} is deprecated; the typed-event replacement is "
        f"repro.engine.events.{event_name}: subscribe with handle(event) "
        "and match on the event type",
        DeprecationWarning,
        stacklevel=3,
    )


class RunObserver:
    """Legacy observer base: typed events routed to ``on_*`` callbacks.

    Subclassing this and overriding ``on_*`` still works anywhere a
    subscriber is accepted -- :meth:`handle` routes each typed event to
    the matching overridden callback (and warns once per class that the
    callback surface is deprecated).  New subscribers should override
    :meth:`handle` directly.  All callbacks must be cheap and
    side-effect-free with respect to the computation -- they run on the
    coordinating process, between result arrivals.
    """

    def handle(self, event: EngineEvent) -> None:
        """Deliver one typed event (routes to legacy ``on_*`` overrides)."""
        route = _LEGACY_ROUTES.get(type(event))
        if route is None:
            return  # new event kinds are invisible to legacy observers
        name, unpack = route
        if getattr(type(self), name, None) is getattr(RunObserver, name):
            return  # callback not overridden: nothing to do
        _warn_legacy(
            type(self), f"overriding RunObserver.{name}",
            type(event).__name__,
        )
        getattr(self, name)(*unpack(event))

    # -- deprecated callback surface (each is routed from handle()) ----

    def on_run_start(self, n_experiments: int) -> None:
        """A multi-experiment run is starting."""

    def on_experiment_start(self, name: str) -> None:
        """One experiment is about to run."""

    def on_experiment_end(self, name: str, elapsed: float, cached: bool) -> None:
        """One experiment finished (``cached`` if served from the cache)."""

    def on_batch_start(self, label: str, total: int) -> None:
        """A chip batch of ``total`` work items is being scheduled."""

    def on_chip_done(self, label: str, completed: int, total: int) -> None:
        """One work item of a batch completed (``completed`` so far)."""

    def on_batch_end(self, label: str, total: int, elapsed: float) -> None:
        """A chip batch fully completed."""

    def on_task_retried(
        self, label: str, index: int, attempt: int, reason: str
    ) -> None:
        """One work item failed and is being retried (``attempt`` so far)."""

    def on_worker_respawned(self, label: str, pool_failures: int) -> None:
        """The worker pool broke (crash/timeout) and was recycled."""

    def on_run_checkpointed(self, label: str, flushed: int) -> None:
        """``flushed`` batch results were durably journalled."""

    def on_run_resumed(self, label: str, restored: int) -> None:
        """``restored`` batch results were served from the run journal."""

    def on_run_end(self, elapsed: float) -> None:
        """The multi-experiment run finished."""


NULL_OBSERVER = RunObserver()
"""Shared do-nothing subscriber (the default everywhere)."""


class LegacyEmitShims:
    """Deprecated ``on_*`` *emitter* methods over a ``handle()`` surface.

    Mixed into the built-in consumers so code that still calls the old
    positional callbacks directly (``observer.on_chip_done(...)``) keeps
    working: each shim builds the typed event and feeds it to
    ``self.handle``.
    """

    def _emit_legacy(self, event: EngineEvent) -> None:
        _warn_legacy(
            type(self), "calling the on_* emitter surface",
            type(event).__name__,
        )
        self.handle(event)  # type: ignore[attr-defined]

    def on_run_start(self, n_experiments: int) -> None:
        self._emit_legacy(RunStarted(n_experiments))

    def on_experiment_start(self, name: str) -> None:
        self._emit_legacy(ExperimentStarted(name))

    def on_experiment_end(self, name: str, elapsed: float, cached: bool) -> None:
        self._emit_legacy(ExperimentEnded(name, elapsed, cached))

    def on_batch_start(self, label: str, total: int) -> None:
        self._emit_legacy(BatchStarted(label, total))

    def on_chip_done(self, label: str, completed: int, total: int) -> None:
        self._emit_legacy(ChipCompleted(label, completed, total))

    def on_batch_end(self, label: str, total: int, elapsed: float) -> None:
        self._emit_legacy(BatchEnded(label, total, elapsed))

    def on_task_retried(
        self, label: str, index: int, attempt: int, reason: str
    ) -> None:
        self._emit_legacy(TaskRetried(label, index, attempt, reason))

    def on_worker_respawned(self, label: str, pool_failures: int) -> None:
        self._emit_legacy(WorkerRespawned(label, pool_failures))

    def on_run_checkpointed(self, label: str, flushed: int) -> None:
        self._emit_legacy(RunCheckpointed(label, flushed))

    def on_run_resumed(self, label: str, restored: int) -> None:
        self._emit_legacy(RunResumed(label, restored))

    def on_run_end(self, elapsed: float) -> None:
        self._emit_legacy(RunEnded(elapsed))


class CompositeObserver(LegacyEmitShims, EventStream):
    """Forwards every event to a sequence of subscribers, in order.

    Retained for compatibility; new code should build an
    :class:`~repro.engine.events.EventStream` directly.
    """

    def __init__(self, observers: Sequence[Any]):
        EventStream.__init__(self, observers)

    @property
    def observers(self) -> Tuple[Any, ...]:
        """The wrapped subscribers (dispatch order)."""
        return self.subscribers


class CLIProgressReporter(LegacyEmitShims, RunObserver):
    """Prints progress lines suitable for a terminal.

    Per-chip events are throttled to roughly ``updates_per_batch`` lines
    per batch so large Monte-Carlo sweeps don't flood the console.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        updates_per_batch: int = 4,
    ):
        self.stream = stream if stream is not None else sys.stdout
        self.updates_per_batch = max(1, updates_per_batch)

    def _print(self, message: str) -> None:
        print(message, file=self.stream, flush=True)

    def handle(self, event: EngineEvent) -> None:
        if isinstance(event, ChipCompleted):
            step = max(1, event.total // self.updates_per_batch)
            if event.completed == event.total or event.completed % step == 0:
                self._print(
                    f"  [{event.label}] {event.completed}/{event.total}"
                )
        elif isinstance(event, RunStarted):
            self._print(f"running {event.n_experiments} experiments")
        elif isinstance(event, ExperimentStarted):
            self._print(f"{event.name}: running...")
        elif isinstance(event, ExperimentEnded):
            suffix = " (cached)" if event.cached else ""
            self._print(f"{event.name}: done in {event.elapsed_s:.1f}s{suffix}")
        elif isinstance(event, TaskRetried):
            self._print(
                f"  [{event.label}] task {event.index} retry "
                f"#{event.attempt}: {event.reason}"
            )
        elif isinstance(event, WorkerRespawned):
            self._print(
                f"  [{event.label}] worker pool respawned "
                f"(failure #{event.pool_failures})"
            )
        elif isinstance(event, RunResumed):
            self._print(
                f"  [{event.label}] resumed {event.restored} results "
                "from checkpoint"
            )
        elif isinstance(event, RunEnded):
            self._print(f"all experiments done in {event.elapsed_s:.1f}s")


def _empty_robustness() -> Dict[str, int]:
    return {
        "task_retries": 0,
        "worker_respawns": 0,
        "results_checkpointed": 0,
        "results_resumed": 0,
    }


class JSONMetricsObserver(LegacyEmitShims, RunObserver):
    """Collects per-experiment/per-batch timings and dumps them as JSON.

    Durations are measured with the monotonic ``time.perf_counter``
    clock (never wall clock, so a suspended laptop or an NTP step cannot
    corrupt them); the single wall-clock read is the intentional
    ``started_at_unix_s`` run timestamp.  Alongside timing, the record
    accumulates the engine's robustness events (retries, pool respawns,
    checkpoint/resume counts) and, when a ``tracer`` is attached, the
    aggregated per-phase trace table under ``trace_phases``.

    The record is available in-memory as :attr:`metrics` and, if a
    ``path`` was given, written to disk when the run ends.
    """

    def __init__(
        self,
        path: Optional[pathlib.Path] = None,
        tracer: Optional[Any] = None,
    ):
        self.path = pathlib.Path(path) if path is not None else None
        self.tracer = tracer
        self.metrics: Dict[str, Any] = self._empty_metrics()
        self._batch_starts: Dict[str, float] = {}
        self._current: Optional[Dict[str, Any]] = None

    @staticmethod
    def _empty_metrics() -> Dict[str, Any]:
        return {
            "experiments": [],
            "total_elapsed_s": None,
            "started_at_unix_s": None,
            "robustness": _empty_robustness(),
            "kernel_paths": {},
        }

    # ------------------------------------------------------------------

    def handle(self, event: EngineEvent) -> None:
        if isinstance(event, RunStarted):
            self._run_started()
        elif isinstance(event, ExperimentStarted):
            self._experiment_started(event.name)
        elif isinstance(event, ExperimentEnded):
            self._experiment_ended(event)
        elif isinstance(event, BatchStarted):
            self._batch_started(event)
        elif isinstance(event, BatchEnded):
            self._batch_ended(event)
        elif isinstance(event, TaskRetried):
            self.metrics["robustness"]["task_retries"] += 1
        elif isinstance(event, WorkerRespawned):
            self.metrics["robustness"]["worker_respawns"] += 1
        elif isinstance(event, RunCheckpointed):
            self.metrics["robustness"]["results_checkpointed"] += event.flushed
        elif isinstance(event, RunResumed):
            self.metrics["robustness"]["results_resumed"] += event.restored
        elif isinstance(event, KernelPathsCollected):
            # scheme/benchmark -> replay path ("flattened" | "timeline"
            # | "event"); later batches overwrite earlier cells, which
            # is fine because paths are a pure function of the scheme.
            self.metrics["kernel_paths"].update(dict(event.paths))
        elif isinstance(event, RunEnded):
            self._run_ended(event.elapsed_s)

    # ------------------------------------------------------------------

    def _run_started(self) -> None:
        self.metrics = self._empty_metrics()
        # Intentional run timestamp: metrics are diagnostics, never
        # results, so recording when the run happened is allowed here.
        self.metrics["started_at_unix_s"] = round(
            time.time(), 3  # repro: ignore[DET003]
        )
        self._current = None

    def _experiment_started(self, name: str) -> None:
        self._current = {
            "name": name,
            "elapsed_s": None,
            "cached": False,
            "batches": [],
        }
        self.metrics["experiments"].append(self._current)

    def _experiment_ended(self, event: ExperimentEnded) -> None:
        if self._current is None or self._current["name"] != event.name:
            self._experiment_started(event.name)
        self._current["elapsed_s"] = round(event.elapsed_s, 4)
        self._current["cached"] = event.cached
        self._current = None

    def _batch_started(self, event: BatchStarted) -> None:
        # Monotonic clock: batch durations must not jump with the wall
        # clock (the recorded elapsed comes from the engine, also
        # perf_counter-based; this start only guards unmatched ends).
        self._batch_starts[event.label] = time.perf_counter()
        if self._current is not None:
            self._current["batches"].append({
                "label": event.label,
                "items": event.total,
                "elapsed_s": None,
            })

    def _batch_ended(self, event: BatchEnded) -> None:
        self._batch_starts.pop(event.label, None)
        if self._current is not None:
            for batch in reversed(self._current["batches"]):
                if batch["label"] == event.label and batch["elapsed_s"] is None:
                    batch["elapsed_s"] = round(event.elapsed_s, 4)
                    break

    def _run_ended(self, elapsed: float) -> None:
        self.metrics["total_elapsed_s"] = round(elapsed, 4)
        if self.tracer is not None:
            self.metrics["trace_phases"] = self.tracer.phase_table()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(self.metrics, indent=2) + "\n")


__all__ = [
    "RunObserver",
    "NULL_OBSERVER",
    "LegacyEmitShims",
    "CompositeObserver",
    "CLIProgressReporter",
    "JSONMetricsObserver",
]
