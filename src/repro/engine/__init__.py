"""repro.engine -- parallel Monte-Carlo execution behind a unified API.

The engine has six pieces:

* :mod:`repro.engine.config` -- :class:`EngineConfig`, the consolidated
  execution/robustness configuration every entry point shares (pool
  width, cache directories, checkpointing, supervision budgets, fault
  plan).  None of its knobs ever change results.
* :mod:`repro.engine.parallel` -- :class:`ParallelChipRunner`, the
  supervised process-pool chip-batch scheduler.  Chip draws are reserved
  serially (per-chip seeds) and realized in parallel; evaluations ship an
  :class:`EvaluatorSpec` so each worker rebuilds identical seeded traces.
  The supervisor adds per-task timeouts, bounded retries with
  deterministic backoff, crashed-worker respawn, poison-task quarantine,
  and graceful degradation to serial execution.  Serial, parallel, and
  recovered runs are bit-identical.
* :mod:`repro.engine.checkpoint` -- :class:`RunJournal`, the write-ahead
  run journal.  Every completed work item is flushed durably under its
  content digest (:func:`task_key`), so an interrupted run restarted
  with ``--resume`` recomputes only what is missing.
* :mod:`repro.engine.faults` -- :class:`FaultPlan`, seeded deterministic
  fault injection (worker crashes, errors, hangs, corrupted payloads)
  that makes the recovery paths testable in CI, gated on output
  identity.
* :mod:`repro.engine.cache` -- :class:`ResultCache`, an on-disk
  content-keyed result store (package version + experiment source digest
  + context fingerprint), so re-running ``run_all`` after editing one
  experiment skips the untouched sweeps.
* :mod:`repro.engine.events` -- the typed event stream: one frozen
  dataclass per thing the engine can report, dispatched through a single
  :class:`EventStream` ``emit``/``subscribe`` surface that progress
  reporters, metrics collectors, and the tracer all consume.
* :mod:`repro.engine.observer` -- the standard event consumers
  (CLI progress, JSON metrics) built on the typed :class:`RunObserver`
  ``handle(event)`` base (the legacy ``on_*`` shims were removed).
* :mod:`repro.engine.trace` -- cross-process hierarchical tracing and
  profiling: ambient :func:`span` context managers, worker-side span
  collection shipped home with task results, Chrome ``trace_event``
  export, and the aggregated per-phase table in ``metrics.json``.
* :mod:`repro.engine.registry` -- the uniform :class:`Experiment`
  protocol (``run`` / ``report`` / optional ``csv_rows`` and
  ``default_context_overrides``, plus the cached ``execute`` path and
  the shared ``cli`` entry point) and the ordered registry that drives
  ``run_all`` without experiment-name special cases.
"""

from repro.engine.cache import (
    CacheStats,
    ResultCache,
    ShardedResultCache,
    resolve_cache,
    source_digest,
)
from repro.engine.checkpoint import RunJournal, canonical_dumps, task_key
from repro.engine.config import (
    EngineConfig,
    LOCAL_BACKEND,
    SUBPROCESS_FLEET_BACKEND,
)
from repro.engine.events import (
    BatchEnded,
    BatchStarted,
    ChipCompleted,
    EngineEvent,
    EventStream,
    ExperimentEnded,
    ExperimentStarted,
    RunCheckpointed,
    RunEnded,
    RunResumed,
    RunStarted,
    KernelPathsCollected,
    SpansCollected,
    Subscriber,
    TaskRetried,
    WorkerRespawned,
    decode_event,
    dispatch,
    encode_event,
)
from repro.engine.trace import (
    NULL_SPAN,
    Instant,
    Span,
    TracedResult,
    Tracer,
    activate,
    collect_task_spans,
    current_tracer,
    peak_rss_kb,
    span,
    tracing_active,
)
from repro.engine.faults import (
    CRASH_EXIT_CODE,
    CorruptedPayload,
    FAULT_KINDS,
    FaultPlan,
    InjectedFaultError,
)
from repro.engine.observer import (
    CLIProgressReporter,
    CompositeObserver,
    JSONMetricsObserver,
    NULL_OBSERVER,
    RunObserver,
)
from repro.engine.parallel import (
    DEFAULT_EVALUATOR_CACHE_SIZE,
    EvalTask,
    EvaluatorSpec,
    ParallelChipRunner,
    RunnerStats,
    SchemeOutcome,
    evaluator_cache_size,
    evaluator_for,
    run_build_task,
    run_eval_task,
    set_evaluator_cache_size,
)
from repro.engine.registry import (
    CsvExport,
    Experiment,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "ShardedResultCache",
    "resolve_cache",
    "source_digest",
    "RunJournal",
    "canonical_dumps",
    "task_key",
    "EngineConfig",
    "LOCAL_BACKEND",
    "SUBPROCESS_FLEET_BACKEND",
    "CRASH_EXIT_CODE",
    "CorruptedPayload",
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFaultError",
    "EngineEvent",
    "RunStarted",
    "ExperimentStarted",
    "ExperimentEnded",
    "RunEnded",
    "BatchStarted",
    "ChipCompleted",
    "BatchEnded",
    "TaskRetried",
    "WorkerRespawned",
    "RunCheckpointed",
    "RunResumed",
    "KernelPathsCollected",
    "SpansCollected",
    "Subscriber",
    "dispatch",
    "encode_event",
    "decode_event",
    "EventStream",
    "Span",
    "Instant",
    "NULL_SPAN",
    "TracedResult",
    "Tracer",
    "peak_rss_kb",
    "current_tracer",
    "tracing_active",
    "span",
    "activate",
    "collect_task_spans",
    "RunObserver",
    "NULL_OBSERVER",
    "CompositeObserver",
    "CLIProgressReporter",
    "JSONMetricsObserver",
    "ParallelChipRunner",
    "RunnerStats",
    "DEFAULT_EVALUATOR_CACHE_SIZE",
    "EvaluatorSpec",
    "EvalTask",
    "SchemeOutcome",
    "evaluator_cache_size",
    "evaluator_for",
    "run_build_task",
    "run_eval_task",
    "set_evaluator_cache_size",
    "CsvExport",
    "Experiment",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "experiment_names",
]
