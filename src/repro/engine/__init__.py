"""repro.engine -- parallel Monte-Carlo execution behind a unified API.

The engine has six pieces:

* :mod:`repro.engine.config` -- :class:`EngineConfig`, the consolidated
  execution/robustness configuration every entry point shares (pool
  width, cache directories, checkpointing, supervision budgets, fault
  plan).  None of its knobs ever change results.
* :mod:`repro.engine.parallel` -- :class:`ParallelChipRunner`, the
  supervised process-pool chip-batch scheduler.  Chip draws are reserved
  serially (per-chip seeds) and realized in parallel; evaluations ship an
  :class:`EvaluatorSpec` so each worker rebuilds identical seeded traces.
  The supervisor adds per-task timeouts, bounded retries with
  deterministic backoff, crashed-worker respawn, poison-task quarantine,
  and graceful degradation to serial execution.  Serial, parallel, and
  recovered runs are bit-identical.
* :mod:`repro.engine.checkpoint` -- :class:`RunJournal`, the write-ahead
  run journal.  Every completed work item is flushed durably under its
  content digest (:func:`task_key`), so an interrupted run restarted
  with ``--resume`` recomputes only what is missing.
* :mod:`repro.engine.faults` -- :class:`FaultPlan`, seeded deterministic
  fault injection (worker crashes, errors, hangs, corrupted payloads)
  that makes the recovery paths testable in CI, gated on output
  identity.
* :mod:`repro.engine.cache` -- :class:`ResultCache`, an on-disk
  content-keyed result store (package version + experiment source digest
  + context fingerprint), so re-running ``run_all`` after editing one
  experiment skips the untouched sweeps.
* :mod:`repro.engine.observer` -- the :class:`RunObserver` event protocol
  (per-run / per-experiment / per-chip, plus the robustness events
  ``on_task_retried`` / ``on_worker_respawned`` / ``on_run_checkpointed``
  / ``on_run_resumed``) with CLI-progress and JSON-metrics consumers.
* :mod:`repro.engine.registry` -- the uniform :class:`Experiment`
  protocol (``run`` / ``report`` / optional ``csv_rows`` and
  ``default_context_overrides``, plus the cached ``execute`` path and
  the shared ``cli`` entry point) and the ordered registry that drives
  ``run_all`` without experiment-name special cases.
"""

from repro.engine.cache import ResultCache, resolve_cache, source_digest
from repro.engine.checkpoint import RunJournal, task_key
from repro.engine.config import EngineConfig
from repro.engine.faults import (
    CRASH_EXIT_CODE,
    CorruptedPayload,
    FAULT_KINDS,
    FaultPlan,
    InjectedFaultError,
)
from repro.engine.observer import (
    CLIProgressReporter,
    CompositeObserver,
    JSONMetricsObserver,
    NULL_OBSERVER,
    RunObserver,
)
from repro.engine.parallel import (
    DEFAULT_EVALUATOR_CACHE_SIZE,
    EvalTask,
    EvaluatorSpec,
    ParallelChipRunner,
    RunnerStats,
    SchemeOutcome,
    evaluator_cache_size,
    evaluator_for,
    run_build_task,
    run_eval_task,
    set_evaluator_cache_size,
)
from repro.engine.registry import (
    CsvExport,
    Experiment,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
)

__all__ = [
    "ResultCache",
    "resolve_cache",
    "source_digest",
    "RunJournal",
    "task_key",
    "EngineConfig",
    "CRASH_EXIT_CODE",
    "CorruptedPayload",
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFaultError",
    "RunObserver",
    "NULL_OBSERVER",
    "CompositeObserver",
    "CLIProgressReporter",
    "JSONMetricsObserver",
    "ParallelChipRunner",
    "RunnerStats",
    "DEFAULT_EVALUATOR_CACHE_SIZE",
    "EvaluatorSpec",
    "EvalTask",
    "SchemeOutcome",
    "evaluator_cache_size",
    "evaluator_for",
    "run_build_task",
    "run_eval_task",
    "set_evaluator_cache_size",
    "CsvExport",
    "Experiment",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "experiment_names",
]
