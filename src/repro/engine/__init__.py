"""repro.engine -- parallel Monte-Carlo execution behind a unified API.

The engine has four pieces:

* :mod:`repro.engine.parallel` -- :class:`ParallelChipRunner`, the
  process-pool chip-batch scheduler.  Chip draws are reserved serially
  (per-chip seeds) and realized in parallel; evaluations ship an
  :class:`EvaluatorSpec` so each worker rebuilds identical seeded traces.
  Serial and parallel runs are bit-identical.
* :mod:`repro.engine.cache` -- :class:`ResultCache`, an on-disk
  content-keyed result store (package version + experiment source digest
  + context fingerprint), so re-running ``run_all`` after editing one
  experiment skips the untouched sweeps.
* :mod:`repro.engine.observer` -- the :class:`RunObserver` event protocol
  (per-run / per-experiment / per-chip) with CLI-progress and
  JSON-metrics consumers.
* :mod:`repro.engine.registry` -- the uniform :class:`Experiment`
  protocol (``run`` / ``report`` / optional ``csv_rows`` and
  ``default_context_overrides``) plus the ordered registry that drives
  ``run_all`` without experiment-name special cases.
"""

from repro.engine.cache import ResultCache, source_digest
from repro.engine.observer import (
    CLIProgressReporter,
    CompositeObserver,
    JSONMetricsObserver,
    NULL_OBSERVER,
    RunObserver,
)
from repro.engine.parallel import (
    DEFAULT_EVALUATOR_CACHE_SIZE,
    EvalTask,
    EvaluatorSpec,
    ParallelChipRunner,
    SchemeOutcome,
    evaluator_cache_size,
    evaluator_for,
    run_build_task,
    run_eval_task,
    set_evaluator_cache_size,
)
from repro.engine.registry import (
    CsvExport,
    Experiment,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
)

__all__ = [
    "ResultCache",
    "source_digest",
    "RunObserver",
    "NULL_OBSERVER",
    "CompositeObserver",
    "CLIProgressReporter",
    "JSONMetricsObserver",
    "ParallelChipRunner",
    "DEFAULT_EVALUATOR_CACHE_SIZE",
    "EvaluatorSpec",
    "EvalTask",
    "SchemeOutcome",
    "evaluator_cache_size",
    "evaluator_for",
    "run_build_task",
    "run_eval_task",
    "set_evaluator_cache_size",
    "CsvExport",
    "Experiment",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "experiment_names",
]
