"""Typed engine events and the single emit/subscribe surface.

The engine used to report progress through a zoo of positional
callbacks on :class:`~repro.engine.observer.RunObserver`
(``on_task_retried``, ``on_worker_respawned``, ...); every new
capability grew the callback list and every consumer had to override
the right subset.  This module replaces that surface with *typed
events*: one frozen dataclass per thing that can happen, dispatched
through a single :meth:`EventStream.emit` call to any number of
subscribers.

A subscriber is anything with a ``handle(event)`` method (a plain
callable also works).  The legacy ``on_*`` routing shims completed
their deprecation cycle and were removed (DESIGN.md section 3d);
``handle``/``dispatch`` is the only delivery surface.

Events are strictly *observational*: they carry timings and counters,
never results, so attaching or detaching subscribers can never change
what an experiment computes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union


@dataclass(frozen=True)
class EngineEvent:
    """Base class for everything the engine can report."""


# ----------------------------------------------------------------------
# run / experiment lifecycle
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunStarted(EngineEvent):
    """A multi-experiment run is starting."""

    n_experiments: int


@dataclass(frozen=True)
class ExperimentStarted(EngineEvent):
    """One experiment is about to run."""

    name: str


@dataclass(frozen=True)
class ExperimentEnded(EngineEvent):
    """One experiment finished (``cached`` if served from the cache)."""

    name: str
    elapsed_s: float
    cached: bool


@dataclass(frozen=True)
class RunEnded(EngineEvent):
    """The multi-experiment run finished."""

    elapsed_s: float


# ----------------------------------------------------------------------
# batch progress
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchStarted(EngineEvent):
    """A chip batch of ``total`` work items is being scheduled."""

    label: str
    total: int


@dataclass(frozen=True)
class ChipCompleted(EngineEvent):
    """One work item of a batch completed (``completed`` so far)."""

    label: str
    completed: int
    total: int


@dataclass(frozen=True)
class BatchEnded(EngineEvent):
    """A chip batch fully completed."""

    label: str
    total: int
    elapsed_s: float


# ----------------------------------------------------------------------
# robustness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaskRetried(EngineEvent):
    """One work item failed and is being retried (``attempt`` so far)."""

    label: str
    index: int
    attempt: int
    reason: str


@dataclass(frozen=True)
class WorkerRespawned(EngineEvent):
    """The worker pool broke (crash/timeout) and was recycled."""

    label: str
    pool_failures: int


@dataclass(frozen=True)
class RunCheckpointed(EngineEvent):
    """``flushed`` batch results were durably journalled."""

    label: str
    flushed: int


@dataclass(frozen=True)
class RunResumed(EngineEvent):
    """``restored`` batch results were served from the run journal."""

    label: str
    restored: int


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpansCollected(EngineEvent):
    """Trace spans shipped back from one completed worker task.

    ``spans`` is a tuple of :class:`~repro.engine.trace.Span`; the event
    exists so worker-side profiling data flows through the same emit
    surface as every other engine signal (a tracer subscribes, legacy
    observers ignore it).  ``peak_rss_kb`` is the worker's peak resident
    set size at the time the task finished (0 when unavailable).
    """

    label: str
    spans: Tuple[Any, ...]
    pid: int
    peak_rss_kb: int = 0


@dataclass(frozen=True)
class KernelPathsCollected(EngineEvent):
    """Replay paths taken by one completed evaluation batch.

    ``paths`` maps ``"scheme/benchmark"`` cells to the replay path that
    produced their statistics (``"flattened"``, ``"timeline"`` or
    ``"event"`` -- see :func:`repro.core.kernel_support`).  Purely
    observational: the paths are bit-identity-gated, so which kernel ran
    never changes a result, only how long it took.
    """

    label: str
    paths: Tuple[Tuple[str, str], ...]


# ----------------------------------------------------------------------
# JSON codec (the execution service's durable event stream)
# ----------------------------------------------------------------------

#: Event classes that survive a JSON round trip.  ``SpansCollected`` is
#: deliberately absent: span payloads are arbitrary objects and the
#: service's ``events.jsonl`` files only carry progress-shaped records.
_CODEC_EVENT_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        RunStarted,
        ExperimentStarted,
        ExperimentEnded,
        RunEnded,
        BatchStarted,
        ChipCompleted,
        BatchEnded,
        TaskRetried,
        WorkerRespawned,
        RunCheckpointed,
        RunResumed,
        KernelPathsCollected,
    )
}


def encode_event(event: EngineEvent) -> Optional[Dict[str, Any]]:
    """``event`` as a JSON-ready dict, or ``None`` if not encodable.

    The dict carries a ``"type"`` discriminator plus the event's fields;
    :func:`decode_event` inverts it.  Events outside the codec set
    (currently only :class:`SpansCollected`, whose span payloads are not
    JSON-shaped) encode to ``None`` so writers can skip them.
    """
    name = type(event).__name__
    if name not in _CODEC_EVENT_TYPES:
        return None
    record: Dict[str, Any] = {"type": name}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if isinstance(value, tuple):
            value = [
                list(item) if isinstance(item, tuple) else item
                for item in value
            ]
        record[field.name] = value
    return record


def decode_event(record: Dict[str, Any]) -> EngineEvent:
    """The typed event a :func:`encode_event` dict stands for."""
    payload = dict(record)
    try:
        name = payload.pop("type")
        cls = _CODEC_EVENT_TYPES[name]
    except KeyError:
        raise ValueError(
            f"not a decodable engine event record: {record!r}"
        ) from None
    for field in dataclasses.fields(cls):
        value = payload.get(field.name)
        if isinstance(value, list):
            payload[field.name] = tuple(
                tuple(item) if isinstance(item, list) else item
                for item in value
            )
    return cls(**payload)


#: A subscriber: an object with ``handle(event)`` or a bare callable.
Subscriber = Union[Callable[[EngineEvent], None], Any]


def dispatch(subscriber: Subscriber, event: EngineEvent) -> None:
    """Deliver one event to one subscriber (``handle`` or call)."""
    handler = getattr(subscriber, "handle", None)
    if handler is not None:
        handler(event)
    else:
        subscriber(event)


class EventStream:
    """Fans every emitted event out to its subscribers, in order.

    The stream is itself a valid subscriber (``handle`` aliases
    ``emit``), so streams compose;
    :class:`~repro.engine.observer.CompositeObserver` is the named
    composition the runner and drivers build on.
    """

    def __init__(self, subscribers: Iterable[Subscriber] = ()):
        self._subscribers: List[Subscriber] = list(subscribers)

    @property
    def subscribers(self) -> Tuple[Subscriber, ...]:
        """The current subscribers, in dispatch order."""
        return tuple(self._subscribers)

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Add a subscriber; returns it (usable as a decorator)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove a subscriber (no error if absent)."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    def emit(self, event: EngineEvent) -> None:
        """Deliver ``event`` to every subscriber, in subscription order."""
        for subscriber in self._subscribers:
            dispatch(subscriber, event)

    def handle(self, event: EngineEvent) -> None:
        """Alias for :meth:`emit`: a stream is a composable subscriber."""
        self.emit(event)


__all__ = [
    "EngineEvent",
    "RunStarted",
    "ExperimentStarted",
    "ExperimentEnded",
    "RunEnded",
    "BatchStarted",
    "ChipCompleted",
    "BatchEnded",
    "TaskRetried",
    "WorkerRespawned",
    "RunCheckpointed",
    "RunResumed",
    "SpansCollected",
    "KernelPathsCollected",
    "Subscriber",
    "dispatch",
    "encode_event",
    "decode_event",
    "EventStream",
]
