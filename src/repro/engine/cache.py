"""On-disk, content-keyed result cache for experiment runs.

A cache entry is keyed by everything that determines an experiment's
result:

* the package version;
* the experiment's *source content* (a digest of its defining module, so
  editing one experiment invalidates only that experiment's entries);
* the :class:`~repro.experiments.runner.ExperimentContext` fingerprint --
  technology node, chip count, trace length, seed, and benchmark suite.

Variation scenarios and scheme sets are constants of each experiment
module and are therefore covered by the source digest.  Worker count and
observers are deliberately *not* part of the key: serial and parallel
runs produce bit-identical results, so they share entries.

Values are stored as pickle files, written atomically; any unreadable or
stale entry behaves as a miss.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pathlib
import pickle
import tempfile
from typing import Any, Optional

from repro.engine.trace import span as trace_span


def source_digest(module_name: str) -> str:
    """SHA-256 of a module's source file ('' if it cannot be read)."""
    try:
        module = importlib.import_module(module_name)
        source_file = module.__file__
        if source_file is None:
            return ""
        return hashlib.sha256(
            pathlib.Path(source_file).read_bytes()
        ).hexdigest()
    except Exception:
        return ""


def resolve_cache(
    out_dir: Optional[pathlib.Path] = None,
    cache_dir: Optional[pathlib.Path] = None,
    enabled: bool = True,
) -> Optional["ResultCache"]:
    """The result cache a CLI invocation should use, or ``None``.

    One shared policy for ``run_all`` and the per-experiment entry
    points: an explicit ``cache_dir`` wins; otherwise the cache lives
    under ``out_dir/.cache``; with neither (or ``enabled=False``, the
    ``--no-cache`` flag) caching is off.
    """
    if not enabled:
        return None
    if cache_dir is None:
        if out_dir is None:
            return None
        cache_dir = pathlib.Path(out_dir) / ".cache"
    return ResultCache(cache_dir)


class ResultCache:
    """Content-keyed pickle store under one directory."""

    def __init__(self, directory: pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def key_for(self, experiment: Any, context: Any) -> str:
        """The cache key of ``experiment`` run under ``context``.

        ``experiment`` is an :class:`~repro.engine.registry.Experiment`
        (anything with ``name`` and ``module`` attributes works);
        ``context`` must provide ``cache_fingerprint()``.
        """
        from repro import __version__

        parts = [
            __version__,
            experiment.name,
            source_digest(experiment.module) if experiment.module else "",
            context.cache_fingerprint(),
        ]
        return hashlib.sha256("|".join(parts).encode()).hexdigest()

    def path_for(self, key: str) -> pathlib.Path:
        """File backing one cache key."""
        return self.directory / f"{key}.pkl"

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or ``None`` on a miss or unreadable entry."""
        path = self.path_for(key)
        with trace_span("cache_get", cat="cache_io", key=key[:12]) as sp:
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                sp.set(hit=False)
                return None
            except Exception:
                # A truncated or version-incompatible entry is just a miss.
                sp.set(hit=False)
                return None
            sp.set(hit=True)
            return value

    def put(self, key: str, value: Any) -> pathlib.Path:
        """Store ``value`` under ``key`` (atomic replace)."""
        path = self.path_for(key)
        with trace_span("cache_put", cat="cache_io", key=key[:12]):
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        value, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink()
            removed += 1
        return removed


__all__ = ["ResultCache", "resolve_cache", "source_digest"]
