"""On-disk, content-keyed result cache for experiment runs.

A cache entry is keyed by everything that determines an experiment's
result:

* the package version;
* the experiment's *source content* (a digest of its defining module, so
  editing one experiment invalidates only that experiment's entries);
* the :class:`~repro.experiments.runner.ExperimentContext` fingerprint --
  technology node, chip count, trace length, seed, and benchmark suite.

Variation scenarios and scheme sets are constants of each experiment
module and are therefore covered by the source digest.  Worker count and
observers are deliberately *not* part of the key: serial and parallel
runs produce bit-identical results, so they share entries.

Values are stored as pickle files, written atomically; any unreadable or
stale entry behaves as a miss.

:class:`ShardedResultCache` is the fleet-wide variant the execution
service uses: entries are spread over ``shard-XX`` subdirectories by
key prefix, and every shard access runs under an advisory per-shard file
lock, so many concurrent jobs (from many client processes) can share one
cache directory and dedupe work without contending on a single lock.
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib
import os
import pathlib
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Iterator, Optional

try:  # POSIX advisory locks; sharding degrades gracefully without them.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import ConfigurationError
from repro.engine.trace import span as trace_span


def source_digest(module_name: str) -> str:
    """SHA-256 of a module's source file ('' if it cannot be read)."""
    try:
        module = importlib.import_module(module_name)
        source_file = module.__file__
        if source_file is None:
            return ""
        return hashlib.sha256(
            pathlib.Path(source_file).read_bytes()
        ).hexdigest()
    except Exception:
        return ""


def resolve_cache(
    out_dir: Optional[pathlib.Path] = None,
    cache_dir: Optional[pathlib.Path] = None,
    enabled: bool = True,
) -> Optional["ResultCache"]:
    """The result cache a CLI invocation should use, or ``None``.

    One shared policy for ``run_all`` and the per-experiment entry
    points: an explicit ``cache_dir`` wins; otherwise the cache lives
    under ``out_dir/.cache``; with neither (or ``enabled=False``, the
    ``--no-cache`` flag) caching is off.
    """
    if not enabled:
        return None
    if cache_dir is None:
        if out_dir is None:
            return None
        cache_dir = pathlib.Path(out_dir) / ".cache"
    return ResultCache(cache_dir)


@dataclass
class CacheStats:
    """Hit/miss/store counters one cache instance accumulates.

    Purely diagnostic -- the counters never feed results -- but the
    execution service's dedupe gates read them (a second identical job
    must arrive as a hit, not a recompute)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    def as_dict(self) -> dict:
        """JSON-ready snapshot of the counters."""
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}


class ResultCache:
    """Content-keyed pickle store under one directory."""

    def __init__(self, directory: pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def key_for(self, experiment: Any, context: Any) -> str:
        """The cache key of ``experiment`` run under ``context``.

        ``experiment`` is an :class:`~repro.engine.registry.Experiment`
        (anything with ``name`` and ``module`` attributes works);
        ``context`` must provide ``cache_fingerprint()``.
        """
        from repro import __version__

        parts = [
            __version__,
            experiment.name,
            source_digest(experiment.module) if experiment.module else "",
            context.cache_fingerprint(),
        ]
        return hashlib.sha256("|".join(parts).encode()).hexdigest()

    def path_for(self, key: str) -> pathlib.Path:
        """File backing one cache key."""
        return self.directory / f"{key}.pkl"

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or ``None`` on a miss or unreadable entry."""
        path = self.path_for(key)
        with trace_span("cache_get", cat="cache_io", key=key[:12]) as sp:
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except FileNotFoundError:
                sp.set(hit=False)
                self.stats.misses += 1
                return None
            except Exception:
                # A truncated or version-incompatible entry is just a miss.
                sp.set(hit=False)
                self.stats.misses += 1
                return None
            sp.set(hit=True)
            self.stats.hits += 1
            return value

    def put(self, key: str, value: Any) -> pathlib.Path:
        """Store ``value`` under ``key`` (atomic replace)."""
        path = self.path_for(key)
        with trace_span("cache_put", cat="cache_io", key=key[:12]):
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        value, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        self.stats.puts += 1
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in sorted(self.directory.glob("*.pkl")):
            path.unlink()
            removed += 1
        return removed


class ShardedResultCache(ResultCache):
    """A :class:`ResultCache` sharded by key prefix with per-shard locks.

    Entries live under ``shard-<prefix>/`` subdirectories chosen by the
    first ``shard_prefix_len`` hex characters of the (sha256) cache key,
    and each shard's reads and writes run under an advisory ``flock`` on
    that shard's ``.lock`` file.  Concurrent jobs -- in one process, in
    many service worker threads, or in entirely separate client
    processes -- therefore share entries safely, and writers to
    *different* shards never contend with each other.

    The interface is exactly :class:`ResultCache`'s, so
    :meth:`~repro.engine.registry.Experiment.execute` and every other
    call site accept either transparently.  On platforms without
    ``fcntl`` the locks degrade to no-ops; atomic-rename puts keep even
    the unlocked cache corruption-free (a concurrent reader sees the old
    or the new entry, never a torn one).
    """

    def __init__(
        self, directory: pathlib.Path, shard_prefix_len: int = 2
    ):
        if not 1 <= shard_prefix_len <= 8:
            raise ConfigurationError(
                "shard_prefix_len must be in [1, 8], got "
                f"{shard_prefix_len}"
            )
        self.shard_prefix_len = shard_prefix_len
        super().__init__(directory)

    # ------------------------------------------------------------------

    def shard_for(self, key: str) -> pathlib.Path:
        """The shard directory holding ``key``'s entry."""
        prefix = key[: self.shard_prefix_len].lower()
        return self.directory / f"shard-{prefix}"

    def path_for(self, key: str) -> pathlib.Path:
        """File backing one cache key (inside its shard)."""
        return self.shard_for(key) / f"{key}.pkl"

    @contextlib.contextmanager
    def _shard_lock(self, key: str, exclusive: bool) -> Iterator[None]:
        """Advisory per-shard lock (shared for reads, exclusive for
        writes); a no-op where ``fcntl`` is unavailable."""
        shard = self.shard_for(key)
        shard.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = shard.with_name(shard.name + ".lock")
        with open(lock_path, "a+b") as handle:
            fcntl.flock(
                handle.fileno(),
                fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH,
            )
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The cached value, under the shard's shared lock."""
        with self._shard_lock(key, exclusive=False):
            return super().get(key)

    def put(self, key: str, value: Any) -> pathlib.Path:
        """Store ``value``, under the shard's exclusive lock."""
        with self._shard_lock(key, exclusive=True):
            return super().put(key, value)

    def clear(self) -> int:
        """Delete every entry in every shard; returns the number removed."""
        removed = 0
        for shard in sorted(self.directory.glob("shard-*")):
            if not shard.is_dir():
                continue
            with self._shard_lock(shard.name.split("-", 1)[1], True):
                for path in sorted(shard.glob("*.pkl")):
                    path.unlink()
                    removed += 1
        return removed


__all__ = [
    "CacheStats",
    "ResultCache",
    "ShardedResultCache",
    "resolve_cache",
    "source_digest",
]
