"""Cross-process hierarchical tracing and profiling for engine runs.

The engine's cost is spread across processes (chip builds and scheme
evaluations run in pool workers) and layers (trace generation, kernel
replay, cache I/O, journalling).  This module makes every component
individually reportable:

* :func:`span` -- a context manager recording one named, monotonic-clock
  timed region into the process-ambient :class:`Tracer` (a no-op when
  tracing is off, so instrumentation can stay in hot paths);
* worker-side collection -- :func:`collect_task_spans` installs a
  per-task collector in a worker; the runner ships the collected spans
  back with the task result (see
  :class:`~repro.engine.parallel.ParallelChipRunner`) wrapped in a
  :class:`TracedResult`, and re-emits them on the event stream as
  :class:`~repro.engine.events.SpansCollected`;
* :class:`Tracer` -- the coordinator-side sink: it subscribes to the
  typed event stream (run / experiment / batch events become spans,
  robustness events become instants), absorbs worker span batches, and
  exports the merged timeline as Chrome ``trace_event`` JSON
  (``chrome://tracing`` / Perfetto-loadable) plus an aggregated
  per-phase table for ``metrics.json``.

Tracing is strictly observational: span timestamps come from the
monotonic clock, never touch results, task payloads, journal records,
or cache fingerprints, so traced and untraced runs are bit-identical
(enforced by tests and the ``--inject-faults`` identity gate).

Cross-process timestamps are comparable because ``time.monotonic_ns``
reads ``CLOCK_MONOTONIC``, which is system-wide on Linux; on platforms
where worker clocks are not aligned the per-process timelines remain
internally consistent.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

import os


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 if unavailable)."""
    if resource is None:
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # Linux reports ru_maxrss in KiB; macOS in bytes.
    rss = int(usage.ru_maxrss)
    return rss // 1024 if rss > 1 << 30 else rss


@dataclass(frozen=True)
class Span:
    """One named, closed region of the merged timeline.

    ``args`` is a tuple of ``(key, value)`` pairs (not a dict) so spans
    stay frozen, hashable-free, and cheaply picklable across the worker
    boundary.
    """

    name: str
    cat: str
    start_ns: int
    duration_ns: int
    pid: int
    tid: int
    args: Tuple[Tuple[str, Any], ...] = ()

    @property
    def end_ns(self) -> int:
        """Monotonic end timestamp in nanoseconds."""
        return self.start_ns + self.duration_ns

    @property
    def duration_s(self) -> float:
        """Span duration in seconds."""
        return self.duration_ns / 1e9


@dataclass(frozen=True)
class Instant:
    """One point-in-time annotation (retry, respawn, checkpoint)."""

    name: str
    cat: str
    at_ns: int
    pid: int
    args: Tuple[Tuple[str, Any], ...] = ()


class _OpenSpan:
    """Context manager recording one span into a tracer on exit."""

    __slots__ = ("_tracer", "name", "cat", "_args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Tuple[Tuple[str, Any], ...]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self._args = args
        self._start_ns = 0

    def set(self, **args: Any) -> None:
        """Attach extra args discovered mid-span (e.g. a cache hit)."""
        self._args = self._args + tuple(args.items())

    def __enter__(self) -> "_OpenSpan":
        self._start_ns = time.monotonic_ns()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = time.monotonic_ns()
        self._tracer.add_span(Span(
            name=self.name,
            cat=self.cat,
            start_ns=self._start_ns,
            duration_ns=end - self._start_ns,
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFF,
            args=self._args,
        ))


class _NullSpan:
    """Do-nothing span used when no tracer is active."""

    __slots__ = ()

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


NULL_SPAN = _NullSpan()
"""Shared no-op span (returned by :func:`span` when tracing is off)."""


@dataclass(frozen=True)
class TracedResult:
    """A task result bundled with the spans its execution produced.

    The wrapper exists only on the wire between a worker and the
    supervisor: the runner unwraps it *before* results are journalled,
    cached, or returned, so profiling data can never leak into outputs.
    """

    value: Any
    spans: Tuple[Span, ...] = ()
    pid: int = 0
    peak_rss_kb: int = 0


class Tracer:
    """Collects spans from every process into one exportable timeline.

    The tracer is both the ambient span sink (:func:`activate` /
    :func:`span`) and a typed-event subscriber: run, experiment, and
    batch lifecycle events open and close spans; robustness events
    become instant markers; :class:`SpansCollected` batches from workers
    are merged in.  Thread-safe: the supervisor and pool callbacks may
    record concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._instants: List[Instant] = []
        self._open: Dict[Tuple[str, str], int] = {}
        self._rss_kb: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def span(self, name: str, cat: str = "task", **args: Any) -> _OpenSpan:
        """A context manager timing one region into this tracer."""
        return _OpenSpan(self, name, cat, tuple(args.items()))

    def add_span(self, span_: Span) -> None:
        """Record one closed span."""
        with self._lock:
            self._spans.append(span_)

    def extend(self, spans: Tuple[Span, ...]) -> None:
        """Merge a batch of spans (e.g. shipped back from a worker)."""
        with self._lock:
            self._spans.extend(spans)

    def add_instant(self, name: str, cat: str, **args: Any) -> None:
        """Record one point-in-time marker at 'now'."""
        with self._lock:
            self._instants.append(Instant(
                name=name, cat=cat, at_ns=time.monotonic_ns(),
                pid=os.getpid(), args=tuple(args.items()),
            ))

    def note_rss(self, pid: int, rss_kb: int) -> None:
        """Track the peak resident set size observed for one process."""
        if rss_kb <= 0:
            return
        with self._lock:
            if rss_kb > self._rss_kb.get(pid, 0):
                self._rss_kb[pid] = rss_kb

    # ------------------------------------------------------------------
    # typed-event subscription
    # ------------------------------------------------------------------

    def handle(self, event: Any) -> None:
        """Consume one typed engine event (the subscriber surface)."""
        # Local import: events.py must stay importable without trace.py.
        from repro.engine import events

        now = time.monotonic_ns()
        if isinstance(event, events.RunStarted):
            self._open_span(("run", ""), now)
        elif isinstance(event, events.RunEnded):
            self._close_span(("run", ""), "run", "run", now)
        elif isinstance(event, events.ExperimentStarted):
            self._open_span(("experiment", event.name), now)
        elif isinstance(event, events.ExperimentEnded):
            self._close_span(
                ("experiment", event.name), event.name, "experiment", now,
                cached=event.cached,
            )
        elif isinstance(event, events.BatchStarted):
            self._open_span(("batch", event.label), now)
        elif isinstance(event, events.BatchEnded):
            self._close_span(
                ("batch", event.label), event.label, "batch", now,
                items=event.total,
            )
        elif isinstance(event, events.SpansCollected):
            self.extend(event.spans)
            self.note_rss(event.pid, event.peak_rss_kb)
        elif isinstance(event, events.TaskRetried):
            self.add_instant(
                "task_retried", "robustness", label=event.label,
                index=event.index, attempt=event.attempt,
            )
        elif isinstance(event, events.WorkerRespawned):
            self.add_instant(
                "worker_respawned", "robustness", label=event.label,
                pool_failures=event.pool_failures,
            )
        elif isinstance(event, events.RunCheckpointed):
            self.add_instant(
                "run_checkpointed", "robustness", label=event.label,
                flushed=event.flushed,
            )
        elif isinstance(event, events.RunResumed):
            self.add_instant(
                "run_resumed", "robustness", label=event.label,
                restored=event.restored,
            )
        # ChipCompleted is deliberately not recorded: per-item progress
        # would dominate the trace; worker task spans already cover it.

    def _open_span(self, key: Tuple[str, str], now: int) -> None:
        with self._lock:
            self._open[key] = now

    def _close_span(self, key: Tuple[str, str], name: str, cat: str,
                    now: int, **args: Any) -> None:
        with self._lock:
            start = self._open.pop(key, None)
        if start is None:
            # Unmatched end (observer attached mid-run): drop silently.
            return
        self.add_span(Span(
            name=name, cat=cat, start_ns=start, duration_ns=now - start,
            pid=os.getpid(), tid=threading.get_ident() & 0xFFFF,
            args=tuple(args.items()),
        ))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def spans(self) -> Tuple[Span, ...]:
        """Every recorded span (insertion order)."""
        with self._lock:
            return tuple(self._spans)

    def instants(self) -> Tuple[Instant, ...]:
        """Every recorded instant marker (insertion order)."""
        with self._lock:
            return tuple(self._instants)

    def _epoch_ns(self) -> int:
        """The earliest timestamp, used as the exported time origin."""
        with self._lock:
            starts = [s.start_ns for s in self._spans]
            starts.extend(i.at_ns for i in self._instants)
        return min(starts) if starts else 0

    def chrome_events(self) -> List[Dict[str, Any]]:
        """The merged timeline as Chrome ``trace_event`` dicts."""
        epoch = self._epoch_ns()
        events_out: List[Dict[str, Any]] = []
        for s in self.spans():
            events_out.append({
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": (s.start_ns - epoch) / 1000.0,
                "dur": s.duration_ns / 1000.0,
                "pid": s.pid,
                "tid": s.tid,
                "args": dict(s.args),
            })
        for i in self.instants():
            events_out.append({
                "name": i.name,
                "cat": i.cat,
                "ph": "i",
                "s": "g",
                "ts": (i.at_ns - epoch) / 1000.0,
                "pid": i.pid,
                "tid": 0,
                "args": dict(i.args),
            })
        with self._lock:
            rss_items = sorted(self._rss_kb.items())
        for pid, rss in rss_items:
            events_out.append({
                "name": "peak_rss",
                "ph": "C",
                "ts": 0.0,
                "pid": pid,
                "tid": 0,
                "args": {"rss_kb": rss},
            })
        return events_out

    def to_chrome(self, path: pathlib.Path) -> pathlib.Path:
        """Write the timeline as a Chrome-loadable ``trace_event`` file."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "metadata": {"producer": "repro.engine.trace"},
        }
        path.write_text(json.dumps(document, indent=1) + "\n")
        return path

    def phase_table(self) -> Dict[str, Any]:
        """Aggregated per-phase durations for ``metrics.json``.

        Phases are span categories; within each phase the table breaks
        totals down by span name.  ``wall_clock_coverage`` is the
        fraction of the root run span covered by the union of its
        coordinator-side child spans (1.0 when no run span exists yet).
        """
        table: Dict[str, Dict[str, Any]] = {}
        run_span: Optional[Span] = None
        top_intervals: List[Tuple[int, int]] = []
        for s in self.spans():
            phase = table.setdefault(s.cat, {"total_s": 0.0, "spans": 0,
                                             "by_name": {}})
            phase["total_s"] += s.duration_s
            phase["spans"] += 1
            entry = phase["by_name"].setdefault(
                s.name, {"total_s": 0.0, "spans": 0}
            )
            entry["total_s"] += s.duration_s
            entry["spans"] += 1
            if s.cat == "run":
                run_span = s
            elif s.cat == "experiment":
                top_intervals.append((s.start_ns, s.end_ns))
        for phase in table.values():
            phase["total_s"] = round(phase["total_s"], 6)
            for entry in phase["by_name"].values():
                entry["total_s"] = round(entry["total_s"], 6)
        coverage = 1.0
        if run_span is not None and run_span.duration_ns > 0:
            covered = _union_ns(top_intervals, run_span.start_ns,
                                run_span.end_ns)
            coverage = covered / run_span.duration_ns
        rss = dict(sorted(self._rss_kb.items())) if self._rss_kb else {}
        return {
            "phases": table,
            "wall_clock_coverage": round(coverage, 4),
            "peak_rss_kb_by_pid": {str(k): v for k, v in rss.items()},
        }


def _union_ns(intervals: List[Tuple[int, int]], lo: int, hi: int) -> int:
    """Total length of the union of ``intervals`` clipped to [lo, hi]."""
    clipped = sorted(
        (max(a, lo), min(b, hi)) for a, b in intervals if b > lo and a < hi
    )
    total = 0
    end = lo
    for a, b in clipped:
        if b <= end:
            continue
        total += b - max(a, end)
        end = b
    return total


# ----------------------------------------------------------------------
# process-ambient tracer
# ----------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The process-ambient tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def tracing_active() -> bool:
    """True when a tracer is collecting in this process."""
    return _ACTIVE is not None


def span(name: str, cat: str = "task", **args: Any) -> Any:
    """Time one region into the ambient tracer (no-op when inactive).

    Designed for permanent instrumentation of hot paths: when no tracer
    is active the returned context manager is a shared do-nothing
    singleton, so the cost is one global read and one call.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, cat, **args)


class activate:
    """Install ``tracer`` as the process-ambient span sink.

    Usable as a context manager; ``activate(None)`` is a no-op context
    (convenient for optional-tracing call sites).  Re-entrant: the
    previous tracer is restored on exit.
    """

    def __init__(self, tracer: Optional[Tracer]):
        self.tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        global _ACTIVE
        self._previous = _ACTIVE
        if self.tracer is not None:
            _ACTIVE = self.tracer
        return self.tracer

    def __exit__(self, *exc_info: Any) -> None:
        global _ACTIVE
        if self.tracer is not None:
            _ACTIVE = self._previous


class collect_task_spans:
    """Collect spans produced during one worker task.

    Installs a fresh :class:`Tracer` as the process-ambient sink for the
    duration of the ``with`` block and exposes the recorded spans via
    :attr:`spans` afterwards.  Used by the runner's worker shim so
    instrumented code (chip builds, the batched kernel) records into a
    per-task collector that ships home with the result.
    """

    def __init__(self) -> None:
        self._collector = Tracer()
        self._activation = activate(self._collector)
        self.spans: Tuple[Span, ...] = ()

    def __enter__(self) -> "collect_task_spans":
        self._activation.__enter__()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._activation.__exit__(*exc_info)
        self.spans = self._collector.spans()


__all__ = [
    "Span",
    "Instant",
    "NULL_SPAN",
    "TracedResult",
    "Tracer",
    "peak_rss_kb",
    "current_tracer",
    "tracing_active",
    "span",
    "activate",
    "collect_task_spans",
]
