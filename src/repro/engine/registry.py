"""The unified Experiment protocol and registry.

Every paper experiment registers one :class:`Experiment`: a uniform
``run(context) -> result`` / ``report(result) -> str`` pair plus two
optional hooks that remove the special cases ``run_all`` used to carry:

* ``csv_rows(result)`` yields :class:`CsvExport` rows for plot-shaped
  experiments (previously an if/elif chain keyed on experiment name);
* ``default_context_overrides(context)`` returns context-field overrides
  the experiment wants by default (previously ``table3`` silently halved
  the chip count inside ``run_all``).

The registry preserves registration order, which is the canonical
paper order (``repro.experiments.__init__`` imports the modules in that
order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError


class CsvExport(NamedTuple):
    """One machine-readable series emitted by an experiment."""

    filename: str
    headers: Sequence[str]
    rows: Iterable[Sequence[object]]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment behind the uniform engine API."""

    name: str
    run: Callable[[Any], Any]
    """``run(context) -> result``; the context is an
    :class:`~repro.experiments.runner.ExperimentContext`."""
    report: Callable[[Any], str]
    """``report(result) -> str``: the paper-style text rendering."""
    csv_rows: Optional[Callable[[Any], Iterable[CsvExport]]] = None
    """Optional hook yielding machine-readable exports of the result."""
    default_context_overrides: Optional[
        Callable[[Any], Mapping[str, Any]]
    ] = None
    """Optional hook mapping the base context to field overrides this
    experiment applies by default (e.g. table3 halves the chip count)."""
    module: Optional[str] = None
    """Defining module (dotted name), used for content-keyed caching."""

    def context_for(self, context: Any) -> Any:
        """The context this experiment actually runs under."""
        if self.default_context_overrides is None:
            return context
        overrides = dict(self.default_context_overrides(context))
        if not overrides:
            return context
        return context.with_overrides(**overrides)

    def csv_exports(self, result: Any) -> Tuple[CsvExport, ...]:
        """All machine-readable exports for ``result`` (may be empty)."""
        if self.csv_rows is None:
            return ()
        return tuple(self.csv_rows(result))

    def execute(
        self, context: Any, cache: Optional[Any] = None
    ) -> Tuple[Any, bool]:
        """Run under this experiment's effective context, memoised.

        Applies ``default_context_overrides``, consults ``cache`` (a
        :class:`~repro.engine.cache.ResultCache`, keyed on the effective
        context) when given, and stores fresh results back.  Returns
        ``(result, cached)`` -- the one code path ``run_all`` and the
        per-experiment CLIs share, so cached and recomputed runs cannot
        drift apart.
        """
        context = self.context_for(context)
        key = None
        if cache is not None:
            key = cache.key_for(self, context)
            hit = cache.get(key)
            if hit is not None:
                return hit, True
        result = self.run(context)
        if cache is not None and key is not None:
            cache.put(key, result)
        return result, False

    def cli(self, argv: Optional[Sequence[str]] = None) -> None:
        """Run this experiment's command-line entry point.

        Every registered experiment exposes the shared engine flags
        (``--workers``/``--cache-dir``/``--metrics``/``--resume``/
        ``--checkpoint-dir``/...); see
        :func:`repro.experiments.cli.experiment_main`.
        """
        # Lazy: the registry must not pull the driver CLI in at import.
        from repro.experiments.cli import experiment_main

        experiment_main(self, argv)


_REGISTRY: Dict[str, Experiment] = {}


def register_experiment(experiment: Experiment) -> Experiment:
    """Add (or re-register) an experiment; returns it for assignment."""
    if not experiment.name:
        raise ConfigurationError("experiment name must be non-empty")
    _REGISTRY[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> Experiment:
    """Look up one registered experiment by name."""
    _populate()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> Tuple[Experiment, ...]:
    """Every registered experiment, in registration (paper) order."""
    _populate()
    return tuple(_REGISTRY.values())


def experiment_names() -> Tuple[str, ...]:
    """Names of all registered experiments, in registration order."""
    return tuple(e.name for e in all_experiments())


def _populate() -> None:
    # Importing the experiments package registers every driver module;
    # lazy so the engine itself never depends on the drivers at import.
    import repro.experiments  # noqa: F401


__all__ = [
    "CsvExport",
    "Experiment",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "experiment_names",
]
