"""Write-ahead run journal: durable per-task results for resumable runs.

A :class:`RunJournal` is an append-only file of ``(key, value)`` records,
where the key is the content digest of one engine task
(:func:`task_key`: the task function's qualified name plus the pickled
task payload) and the value is that task's result.  The
:class:`~repro.engine.parallel.ParallelChipRunner` flushes every
completed work item to the journal as soon as it arrives, so a run
killed at any point -- including mid-write -- restarts with ``--resume``
and recomputes only the missing items.

Because keys are content digests, resumed entries are only ever reused
for *byte-identical* task payloads executed by the same function: any
change to the context (seed, scale, node, schemes) changes the task
bytes and misses the journal, which is what keeps resumed runs
bit-identical to uninterrupted ones.

Record format (after a magic header)::

    <u64 little-endian blob length> <16-byte sha256 prefix> <pickle blob>

Each record is flushed and fsynced before the runner reports the item
complete (write-ahead with respect to downstream consumers).  On load,
the first record whose length or digest does not check out -- a torn
tail from a SIGKILL mid-write -- is dropped along with everything after
it, and the file is truncated back to the last durable record.
"""

from __future__ import annotations

import hashlib
import io
import os
import pathlib
import pickle
import struct
from typing import Any, Callable, Dict

from repro.engine.trace import span as trace_span

MAGIC = b"REPRO-JOURNAL-1\n"

_LENGTH = struct.Struct("<Q")
_DIGEST_BYTES = 16

#: Cap on a single record's pickle blob; a longer length prefix is
#: treated as corruption rather than an allocation request.
MAX_RECORD_BYTES = 1 << 31


def canonical_dumps(task: Any) -> bytes:
    """Pickle ``task`` without memoization, so equal values give equal
    bytes.

    A plain ``pickle.dumps`` emits memo *backreferences* whenever the
    same object appears twice (e.g. a chip's technology node that is
    identical to the evaluator spec's), which makes the bytes depend on
    object identity -- and identity differs between a fresh run and one
    whose inputs were restored from a journal.  Task payloads are
    acyclic, so memo-free "fast" pickling is safe and canonical.
    """
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    pickler.fast = True
    pickler.dump(task)
    return buffer.getvalue()


def task_key(fn: Callable[..., Any], task: Any) -> str:
    """Content digest identifying one unit of engine work.

    Two keys are equal exactly when the same module-level function would
    run over a value-identical pickled payload -- the precondition for
    reusing a journalled result.
    """
    ident = "{}:{}".format(
        getattr(fn, "__module__", ""), getattr(fn, "__qualname__", repr(fn))
    )
    return hashlib.sha256(
        ident.encode() + b"\x00" + canonical_dumps(task)
    ).hexdigest()


class RunJournal:
    """Append-only durable store of completed task results for one run.

    ``resume=True`` loads every intact record from an existing file
    (truncating a torn tail); ``resume=False`` starts the journal fresh.
    The journal is an engine-internal durability layer: entries are keyed
    by :func:`task_key` digests, never inspected by experiments.
    """

    def __init__(self, path: pathlib.Path, resume: bool = False):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._entries: Dict[str, Any] = {}
        self.restored = 0
        """Number of intact records loaded from a pre-existing journal."""
        durable_end = 0
        if resume and self.path.exists():
            durable_end = self._load()
            self.restored = len(self._entries)
        if durable_end >= len(MAGIC):
            self._handle = open(self.path, "r+b")
            self._handle.seek(durable_end)
            self._handle.truncate()
        else:
            # Fresh start -- including over a file whose header did not
            # verify, which must be rewritten, not appended to.
            self._handle = open(self.path, "wb")
            self._handle.write(MAGIC)
            self._handle.flush()

    @staticmethod
    def path_for(directory: pathlib.Path, run_key: str) -> pathlib.Path:
        """Journal file for one run, named by the run key's digest."""
        digest = hashlib.sha256(run_key.encode()).hexdigest()[:16]
        return pathlib.Path(directory) / f"run-{digest}.journal"

    # ------------------------------------------------------------------

    def _load(self) -> int:
        """Read intact records; returns the offset of the durable end."""
        with trace_span("journal_load", cat="checkpoint"), \
                open(self.path, "rb") as handle:
            header = handle.read(len(MAGIC))
            if header != MAGIC:
                # Not a journal (or a torn header): start over.
                return 0
            durable_end = handle.tell()
            while True:
                raw_length = handle.read(_LENGTH.size)
                if len(raw_length) < _LENGTH.size:
                    break
                (length,) = _LENGTH.unpack(raw_length)
                if length > MAX_RECORD_BYTES:
                    break
                digest = handle.read(_DIGEST_BYTES)
                if len(digest) < _DIGEST_BYTES:
                    break
                blob = handle.read(length)
                if len(blob) < length:
                    break
                if hashlib.sha256(blob).digest()[:_DIGEST_BYTES] != digest:
                    break
                try:
                    key, value = pickle.loads(blob)
                except Exception:
                    break
                self._entries[key] = value
                durable_end = handle.tell()
            return durable_end

    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str, default: Any = None) -> Any:
        """The journalled result for ``key``, or ``default``."""
        return self._entries.get(key, default)

    def record(self, key: str, value: Any) -> bool:
        """Durably append one completed result; False if already stored.

        The record is flushed and fsynced before returning, so a crash
        immediately after cannot lose it.
        """
        if key in self._entries:
            return False
        with trace_span("journal_record", cat="checkpoint"):
            blob = pickle.dumps(
                (key, value), protocol=pickle.HIGHEST_PROTOCOL
            )
            self._handle.write(_LENGTH.pack(len(blob)))
            self._handle.write(hashlib.sha256(blob).digest()[:_DIGEST_BYTES])
            self._handle.write(blob)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._entries[key] = value
        return True

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "MAGIC",
    "MAX_RECORD_BYTES",
    "RunJournal",
    "canonical_dumps",
    "task_key",
]
