"""Seeded fault injection for the execution engine.

A :class:`FaultPlan` deterministically decides, per (task, attempt)
pair, whether a worker should crash, raise, hang, or corrupt its result
payload.  The decision is a pure function of the plan's seed, the task's
content digest, and the attempt number, so a given plan reproduces the
same fault pattern for the same work regardless of scheduling -- which
makes the engine's recovery paths (retry, respawn, quarantine, serial
degradation) testable in CI.

Faults never touch the computation itself: a task that survives (or
exhausts) its injected faults produces exactly the result a fault-free
run would, so fault-injected runs are gated on output identity.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, fields
from typing import Optional

from repro.errors import ConfigurationError

#: Exit status used by hard crash injection so a supervising test can
#: distinguish an injected worker death from an organic one.
CRASH_EXIT_CODE = 113

#: Fault kinds in cumulative-draw order.
FAULT_KINDS = ("crash", "error", "hang", "corrupt")


class InjectedFaultError(Exception):
    """An error raised on purpose by fault injection.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults stand in for arbitrary worker failures, so they must travel
    the same unhandled path a real bug would.
    """


@dataclass(frozen=True)
class CorruptedPayload:
    """The result envelope an injected ``corrupt`` fault returns.

    The supervisor treats any :class:`CorruptedPayload` result as a task
    failure (standing in for a checksum mismatch on a real corrupted
    payload) and retries the task.
    """

    task_key: str
    attempt: int


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected worker faults.

    Rates are per-(task, attempt) probabilities evaluated against a hash
    of ``(seed, task_key, attempt)``; they must sum to at most 1.  A task
    is only ever faulted on its first ``max_faults_per_task`` attempts,
    which guarantees forward progress as long as the supervisor's retry
    budget is at least that large.

    ``crash`` kills the worker process outright (``os._exit``) when
    running in a pool, exercising the broken-pool respawn path; inline it
    degrades to a raised :class:`InjectedFaultError`.  ``error`` raises,
    ``hang`` sleeps for ``hang_s`` (tripping a configured task timeout),
    and ``corrupt`` replaces the result with a :class:`CorruptedPayload`.
    """

    seed: int = 0
    crash_rate: float = 0.0
    error_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_s: float = 30.0
    max_faults_per_task: int = 1

    def __post_init__(self) -> None:
        for name in ("crash_rate", "error_rate", "hang_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.total_rate > 1.0:
            raise ConfigurationError(
                f"fault rates must sum to <= 1, got {self.total_rate}"
            )
        if self.hang_s < 0:
            raise ConfigurationError(f"hang_s must be >= 0, got {self.hang_s}")
        if self.max_faults_per_task < 0:
            raise ConfigurationError(
                "max_faults_per_task must be >= 0, got "
                f"{self.max_faults_per_task}"
            )

    # ------------------------------------------------------------------

    @property
    def total_rate(self) -> float:
        """Combined probability that an eligible attempt is faulted."""
        return (
            self.crash_rate + self.error_rate
            + self.hang_rate + self.corrupt_rate
        )

    def draw(self, task_key: str, attempt: int) -> float:
        """The deterministic uniform [0, 1) draw for one attempt."""
        digest = hashlib.sha256(
            f"{self.seed}|{task_key}|{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def decision(self, task_key: str, attempt: int) -> Optional[str]:
        """The fault kind injected for this attempt, or ``None``.

        Attempts at or beyond ``max_faults_per_task`` are never faulted.
        """
        if attempt >= self.max_faults_per_task:
            return None
        draw = self.draw(task_key, attempt)
        threshold = 0.0
        for kind, rate in zip(FAULT_KINDS, (
            self.crash_rate, self.error_rate,
            self.hang_rate, self.corrupt_rate,
        )):
            threshold += rate
            if draw < threshold:
                return kind
        return None

    def apply(self, task_key: str, attempt: int, hard: bool) -> Optional[str]:
        """Execute this attempt's pre-task fault, if any.

        ``hard`` is True in pool workers, where a ``crash`` fault kills
        the process; inline (serial or degraded execution) it raises
        instead, since killing the coordinating process would defeat the
        harness.  Returns the injected kind (``corrupt`` is returned for
        the caller to apply to the result after the task runs).
        """
        kind = self.decision(task_key, attempt)
        if kind == "crash":
            if hard:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFaultError(
                f"injected worker crash (task {task_key[:12]}, "
                f"attempt {attempt})"
            )
        if kind == "error":
            raise InjectedFaultError(
                f"injected task error (task {task_key[:12]}, "
                f"attempt {attempt})"
            )
        if kind == "hang":
            time.sleep(self.hang_s)
        return kind

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a CLI spec like ``"seed=7,crash=0.2,hang_s=5"``.

        Keys are the rate names with the ``_rate`` suffix optional
        (``crash`` == ``crash_rate``) plus ``seed``, ``hang_s``, and
        ``max_faults_per_task``.
        """
        known = {f.name: f for f in fields(cls)}
        values = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigurationError(
                    f"bad fault spec entry {part!r}; expected key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key in FAULT_KINDS:
                key = f"{key}_rate"
            if key not in known:
                raise ConfigurationError(
                    f"unknown fault spec key {key!r}; expected one of "
                    f"{sorted(known)}"
                )
            try:
                values[key] = (
                    int(raw) if known[key].type == "int" else float(raw)
                )
            except ValueError:
                raise ConfigurationError(
                    f"bad fault spec value {raw!r} for {key!r}"
                ) from None
        return cls(**values)


__all__ = [
    "CRASH_EXIT_CODE",
    "CorruptedPayload",
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFaultError",
]
