"""Process-pool chip-batch scheduler for Monte-Carlo experiments.

:class:`ParallelChipRunner` fans two kinds of work across worker
processes:

* **chip builds** -- :class:`~repro.array.chip.ChipBuildTask` items whose
  per-chip seeds were reserved *serially* from the sampler's root
  generator, so a parallel batch reproduces the serial chip sequence
  bit for bit;
* **chip evaluations** -- :class:`EvalTask` items that rebuild a worker-
  local :class:`~repro.core.evaluation.Evaluator` from an
  :class:`EvaluatorSpec` (traces are seeded, hence identical in every
  process) and reduce each (chip, scheme) evaluation to a small
  :class:`SchemeOutcome` payload.

With ``workers <= 1`` the runner executes the very same task functions
inline, in submission order; because every task is self-contained and
deterministically seeded, serial and parallel runs return identical
results -- only wall-clock differs.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.technology.node import TechnologyNode
from repro.array.chip import ChipBuildTask, DRAM3T1DChipSample
from repro.array.power import CachePowerModel
from repro.cache.config import CacheConfig
from repro.core.architecture import IdealCacheArchitecture
from repro.core.batcheval import evaluate_many
from repro.core.evaluation import Evaluator
from repro.core.schemes import get_scheme
from repro.engine.observer import NULL_OBSERVER, RunObserver


@dataclass(frozen=True)
class EvaluatorSpec:
    """Everything needed to rebuild an :class:`Evaluator` in any process.

    Two processes holding equal specs build evaluators with identical
    (seeded) traces, which is what makes parallel evaluation bit-identical
    to serial evaluation.
    """

    node: TechnologyNode
    ways: int = 4
    n_references: int = 8000
    seed: int = 2007
    benchmarks: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.benchmarks is not None:
            object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        if self.ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {self.ways}")

    def build(self) -> Evaluator:
        """Construct the evaluator this spec describes."""
        config = CacheConfig()
        if self.ways != config.geometry.ways:
            config = config.with_ways(self.ways)
        return Evaluator(
            self.node,
            config=config,
            n_references=self.n_references,
            seed=self.seed,
            benchmarks=self.benchmarks,
        )


# Per-process evaluator cache: workers (and the serial path) reuse the
# expensive benchmark traces across tasks that share a spec.  Bounded so
# long-lived processes running many differently-scaled contexts don't
# accumulate traces without limit.
DEFAULT_EVALUATOR_CACHE_SIZE = 6

_EVALUATOR_CACHE: "OrderedDict[EvaluatorSpec, Evaluator]" = OrderedDict()
_EVALUATOR_CACHE_MAX = DEFAULT_EVALUATOR_CACHE_SIZE


def evaluator_cache_size() -> int:
    """The current process-local evaluator LRU capacity."""
    return _EVALUATOR_CACHE_MAX


def set_evaluator_cache_size(size: int) -> None:
    """Resize the process-local evaluator LRU (evicting if shrinking).

    Worker processes inherit the size from the
    :class:`ParallelChipRunner` that spawned them; raise it when one run
    interleaves more than ``DEFAULT_EVALUATOR_CACHE_SIZE`` distinct
    :class:`EvaluatorSpec` shapes and trace regeneration shows up in
    profiles.
    """
    global _EVALUATOR_CACHE_MAX
    if size < 1:
        raise ConfigurationError(
            f"evaluator cache size must be >= 1, got {size}"
        )
    _EVALUATOR_CACHE_MAX = size
    while len(_EVALUATOR_CACHE) > _EVALUATOR_CACHE_MAX:
        _EVALUATOR_CACHE.popitem(last=False)


def evaluator_for(spec: EvaluatorSpec) -> Evaluator:
    """The process-local cached evaluator for ``spec``."""
    evaluator = _EVALUATOR_CACHE.get(spec)
    if evaluator is None:
        evaluator = spec.build()
        _EVALUATOR_CACHE[spec] = evaluator
        while len(_EVALUATOR_CACHE) > _EVALUATOR_CACHE_MAX:
            _EVALUATOR_CACHE.popitem(last=False)
    else:
        _EVALUATOR_CACHE.move_to_end(spec)
    return evaluator


def _init_worker(cache_size: int) -> None:
    """Process-pool initializer: propagate the evaluator LRU capacity."""
    set_evaluator_cache_size(cache_size)


@dataclass(frozen=True)
class SchemeOutcome:
    """The scalar reduction of one (chip, scheme) evaluation.

    Carries everything any experiment driver consumes, so the full
    :class:`~repro.core.evaluation.ChipEvaluation` (with its per-benchmark
    cache statistics) never crosses a process boundary.
    """

    scheme: str
    discarded: bool = False
    normalized_performance: float = 0.0
    dynamic_power_normalized: float = 0.0
    bips: float = 0.0
    worst_benchmark: str = ""
    worst_performance: float = 0.0
    mean_dynamic_power_watts: float = 0.0
    ideal_power_watts: float = 0.0
    refresh_power_normalized: float = 0.0
    """Closed-form global-refresh share of ``dynamic_power_normalized``;
    zero for line-level schemes."""


@dataclass(frozen=True, eq=False)
class EvalTask:
    """One unit of evaluation work shipped to a worker.

    ``kind`` selects the payload:

    * ``"schemes"`` -- evaluate ``chip`` under each named scheme; returns
      a tuple of :class:`SchemeOutcome` (one per scheme, in order).
    * ``"ideal_ipc"`` -- per-benchmark IPC of the golden design on the
      spec's suite; returns a tuple of floats.
    """

    evaluator: EvaluatorSpec
    kind: str = "schemes"
    chip: Optional[DRAM3T1DChipSample] = None
    schemes: Tuple[str, ...] = ()
    benchmarks: Optional[Tuple[str, ...]] = None
    """Optional benchmark subset passed to ``Evaluator.evaluate`` (the
    evaluator still hosts the full suite's traces)."""

    def __post_init__(self) -> None:
        if self.kind not in ("schemes", "ideal_ipc"):
            raise ConfigurationError(f"unknown EvalTask kind {self.kind!r}")
        if self.kind == "schemes":
            if self.chip is None:
                raise ConfigurationError("a 'schemes' task needs a chip")
            if not self.schemes:
                raise ConfigurationError(
                    "a 'schemes' task needs at least one scheme"
                )


def _evaluate_schemes(
    evaluator: Evaluator, task: EvalTask
) -> Tuple[SchemeOutcome, ...]:
    evaluations = evaluate_many(
        [task.chip], task.schemes, evaluator, benchmarks=task.benchmarks
    )[0]
    outcomes: List[SchemeOutcome] = []
    for name, evaluation in zip(task.schemes, evaluations):
        scheme = get_scheme(name)
        if evaluation is None:
            outcomes.append(SchemeOutcome(scheme=name, discarded=True))
            continue
        results = evaluation.results
        worst_name, worst_perf = evaluation.worst_benchmark
        ideal_watts = float(np.mean([
            r.dynamic_power_watts / max(r.dynamic_power_normalized, 1e-12)
            for r in results.values()
        ]))
        refresh_norm = 0.0
        if scheme.is_global:
            power_model = CachePowerModel(
                evaluator.node, cell_kind="3T1D",
                geometry=evaluator.config.geometry,
            )
            refresh_watts = power_model.global_refresh_power(
                task.chip.chip_retention_time
            )
            refresh_norm = refresh_watts / ideal_watts
        outcomes.append(
            SchemeOutcome(
                scheme=name,
                normalized_performance=evaluation.normalized_performance,
                dynamic_power_normalized=evaluation.dynamic_power_normalized,
                bips=evaluation.bips,
                worst_benchmark=worst_name,
                worst_performance=worst_perf,
                mean_dynamic_power_watts=float(np.mean(
                    [r.dynamic_power_watts for r in results.values()]
                )),
                ideal_power_watts=ideal_watts,
                refresh_power_normalized=refresh_norm,
            )
        )
    return tuple(outcomes)


def run_eval_task(task: EvalTask):
    """Execute one evaluation task (in a worker or inline)."""
    evaluator = evaluator_for(task.evaluator)
    if task.kind == "ideal_ipc":
        ideal = IdealCacheArchitecture(evaluator.node, config=evaluator.config)
        return tuple(
            evaluator.evaluate_benchmark(ideal, name).ipc
            for name in evaluator.benchmarks
        )
    return _evaluate_schemes(evaluator, task)


def run_build_task(task: ChipBuildTask):
    """Execute one chip-build task (in a worker or inline)."""
    return task.build()


class ParallelChipRunner:
    """Schedules chip batches over a (lazily created) process pool.

    ``workers=1`` (or a single-item batch) runs inline in the calling
    process; results are always returned in task order, and are
    bit-identical across worker counts because every task is
    deterministically seeded and self-contained.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        evaluator_cache_size: Optional[int] = None,
    ):
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if evaluator_cache_size is not None:
            # Applies to the serial/inline path immediately; worker
            # processes pick it up through the pool initializer.
            set_evaluator_cache_size(evaluator_cache_size)
        self.evaluator_cache_size = (
            evaluator_cache_size
            if evaluator_cache_size is not None
            else _EVALUATOR_CACHE_MAX
        )
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.evaluator_cache_size,),
            )
        return self._executor

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        observer: RunObserver = NULL_OBSERVER,
        label: str = "batch",
    ) -> List[Any]:
        """Run ``fn`` over ``tasks``; results come back in task order.

        ``fn`` must be a module-level callable (it crosses the process
        boundary by reference).  The observer sees one ``on_chip_done``
        event per completed item, in completion order.
        """
        tasks = list(tasks)
        total = len(tasks)
        observer.on_batch_start(label, total)
        start = time.perf_counter()
        if self.workers <= 1 or total <= 1:
            results = []
            for index, task in enumerate(tasks):
                results.append(fn(task))
                observer.on_chip_done(label, index + 1, total)
        else:
            executor = self._ensure_executor()
            futures = {
                executor.submit(fn, task): index
                for index, task in enumerate(tasks)
            }
            results = [None] * total
            completed = 0
            for future in as_completed(futures):
                results[futures[future]] = future.result()
                completed += 1
                observer.on_chip_done(label, completed, total)
        observer.on_batch_end(label, total, time.perf_counter() - start)
        return results

    def build_chips(
        self,
        tasks: Sequence[ChipBuildTask],
        observer: RunObserver = NULL_OBSERVER,
        label: str = "sample chips",
    ) -> List[Any]:
        """Realize reserved chip-build tasks (order = reservation order)."""
        return self.map(run_build_task, tasks, observer=observer, label=label)

    def evaluate(
        self,
        tasks: Sequence[EvalTask],
        observer: RunObserver = NULL_OBSERVER,
        label: str = "evaluate chips",
    ) -> List[Any]:
        """Run evaluation tasks; one result per task, in task order."""
        return self.map(run_eval_task, tasks, observer=observer, label=label)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (a later batch re-creates it)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelChipRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "DEFAULT_EVALUATOR_CACHE_SIZE",
    "EvaluatorSpec",
    "EvalTask",
    "SchemeOutcome",
    "ParallelChipRunner",
    "evaluator_cache_size",
    "evaluator_for",
    "run_eval_task",
    "run_build_task",
    "set_evaluator_cache_size",
]
