"""Process-pool chip-batch scheduler for Monte-Carlo experiments.

:class:`ParallelChipRunner` fans two kinds of work across worker
processes:

* **chip builds** -- :class:`~repro.array.chip.ChipBuildTask` items whose
  per-chip seeds were reserved *serially* from the sampler's root
  generator, so a parallel batch reproduces the serial chip sequence
  bit for bit;
* **chip evaluations** -- :class:`EvalTask` items that rebuild a worker-
  local :class:`~repro.core.evaluation.Evaluator` from an
  :class:`EvaluatorSpec` (traces are seeded, hence identical in every
  process) and reduce each (chip, scheme) evaluation to a small
  :class:`SchemeOutcome` payload.

With ``workers <= 1`` the runner executes the very same task functions
inline, in submission order; because every task is self-contained and
deterministically seeded, serial and parallel runs return identical
results -- only wall-clock differs.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ExecutionError
from repro.technology.node import TechnologyNode
from repro.array.chip import ChipBuildTask, DRAM3T1DChipSample
from repro.array.geometry import CacheGeometry
from repro.array.power import CachePowerModel
from repro.cache.config import CacheConfig
from repro.core.architecture import IdealCacheArchitecture
from repro.core.batcheval import evaluate_many
from repro.core.evaluation import Evaluator
from repro.core.schemes import get_scheme
from repro.engine import trace as trace_mod
from repro.engine.checkpoint import RunJournal, task_key
from repro.engine.config import EngineConfig, LOCAL_BACKEND
from repro.engine.events import (
    BatchEnded,
    BatchStarted,
    ChipCompleted,
    KernelPathsCollected,
    RunCheckpointed,
    RunResumed,
    SpansCollected,
    Subscriber,
    TaskRetried,
    WorkerRespawned,
    dispatch,
)
from repro.engine.faults import CorruptedPayload, FaultPlan
from repro.engine.observer import NULL_OBSERVER


@dataclass(frozen=True)
class EvaluatorSpec:
    """Everything needed to rebuild an :class:`Evaluator` in any process.

    Two processes holding equal specs build evaluators with identical
    (seeded) traces, which is what makes parallel evaluation bit-identical
    to serial evaluation.
    """

    node: TechnologyNode
    ways: int = 4
    n_references: int = 8000
    seed: int = 2007
    benchmarks: Optional[Tuple[str, ...]] = None
    technology: str = "3t1d"
    """Registered technology backend; non-default backends adjust the
    cache timing (read/write hit latency) from their latency model."""
    geometry: Optional["CacheGeometry"] = None
    """L1 organisation to evaluate; ``None`` keeps the legacy ways-based
    paper-geometry path (bit-identical to pre-geometry specs).  When
    set, its associativity must agree with ``ways``."""

    def __post_init__(self) -> None:
        if self.benchmarks is not None:
            object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        if self.ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {self.ways}")
        if self.geometry is not None and self.geometry.ways != self.ways:
            raise ConfigurationError(
                f"spec ways={self.ways} disagrees with geometry.ways="
                f"{self.geometry.ways}"
            )

    def build(self) -> Evaluator:
        """Construct the evaluator this spec describes."""
        if self.geometry is not None:
            config = CacheConfig(geometry=self.geometry)
        else:
            config = CacheConfig()
            if self.ways != config.geometry.ways:
                config = config.with_ways(self.ways)
        if self.technology != "3t1d":
            from repro.technology.backends import get_backend

            latency = get_backend(self.technology).latency_model(
                self.node, config.geometry
            )
            config = replace(
                config,
                hit_latency_cycles=latency.read_hit_cycles,
                write_hit_extra_cycles=latency.write_extra_cycles,
            )
        return Evaluator(
            self.node,
            config=config,
            n_references=self.n_references,
            seed=self.seed,
            benchmarks=self.benchmarks,
        )


# Per-process evaluator cache: workers (and the serial path) reuse the
# expensive benchmark traces across tasks that share a spec.  Bounded so
# long-lived processes running many differently-scaled contexts don't
# accumulate traces without limit.
DEFAULT_EVALUATOR_CACHE_SIZE = 6

_EVALUATOR_CACHE: "OrderedDict[EvaluatorSpec, Evaluator]" = OrderedDict()
_EVALUATOR_CACHE_MAX = DEFAULT_EVALUATOR_CACHE_SIZE


def evaluator_cache_size() -> int:
    """The current process-local evaluator LRU capacity."""
    return _EVALUATOR_CACHE_MAX


def set_evaluator_cache_size(size: int) -> None:
    """Resize the process-local evaluator LRU (evicting if shrinking).

    Worker processes inherit the size from the
    :class:`ParallelChipRunner` that spawned them; raise it when one run
    interleaves more than ``DEFAULT_EVALUATOR_CACHE_SIZE`` distinct
    :class:`EvaluatorSpec` shapes and trace regeneration shows up in
    profiles.
    """
    global _EVALUATOR_CACHE_MAX
    if size < 1:
        raise ConfigurationError(
            f"evaluator cache size must be >= 1, got {size}"
        )
    _EVALUATOR_CACHE_MAX = size
    while len(_EVALUATOR_CACHE) > _EVALUATOR_CACHE_MAX:
        _EVALUATOR_CACHE.popitem(last=False)


def evaluator_for(spec: EvaluatorSpec) -> Evaluator:
    """The process-local cached evaluator for ``spec``."""
    evaluator = _EVALUATOR_CACHE.get(spec)
    if evaluator is None:
        with trace_mod.span(
            "build_evaluator", cat="traces",
            node=getattr(spec.node, "name", str(spec.node)),
            n_references=spec.n_references,
        ):
            evaluator = spec.build()
        _EVALUATOR_CACHE[spec] = evaluator
        while len(_EVALUATOR_CACHE) > _EVALUATOR_CACHE_MAX:
            _EVALUATOR_CACHE.popitem(last=False)
    else:
        _EVALUATOR_CACHE.move_to_end(spec)
    return evaluator


def _init_worker(cache_size: int) -> None:
    """Process-pool initializer: propagate the evaluator LRU capacity."""
    set_evaluator_cache_size(cache_size)


@dataclass(frozen=True)
class SchemeOutcome:
    """The scalar reduction of one (chip, scheme) evaluation.

    Carries everything any experiment driver consumes, so the full
    :class:`~repro.core.evaluation.ChipEvaluation` (with its per-benchmark
    cache statistics) never crosses a process boundary.
    """

    scheme: str
    discarded: bool = False
    normalized_performance: float = 0.0
    dynamic_power_normalized: float = 0.0
    bips: float = 0.0
    worst_benchmark: str = ""
    worst_performance: float = 0.0
    mean_dynamic_power_watts: float = 0.0
    ideal_power_watts: float = 0.0
    refresh_power_normalized: float = 0.0
    """Closed-form global-refresh share of ``dynamic_power_normalized``;
    zero for line-level schemes."""
    mean_miss_rate: float = 0.0
    """Suite-mean L1 miss rate (includes expiry-induced misses)."""
    mean_expired_miss_rate: float = 0.0
    """Suite-mean rate of accesses that missed because the line's
    retention expired (or the line is dead) -- the technology-variation
    signal the cross-backend comparison tracks."""
    kernel_paths: Tuple[Tuple[str, str], ...] = ()
    """Per-benchmark replay path (``(benchmark, path)`` pairs, in suite
    order) that produced this outcome's statistics -- see
    :func:`repro.core.kernel_support`.  Empty for discarded chips."""


@dataclass(frozen=True, eq=False)
class EvalTask:
    """One unit of evaluation work shipped to a worker.

    ``kind`` selects the payload:

    * ``"schemes"`` -- evaluate ``chip`` under each named scheme; returns
      a tuple of :class:`SchemeOutcome` (one per scheme, in order).
    * ``"ideal_ipc"`` -- per-benchmark IPC of the golden design on the
      spec's suite; returns a tuple of floats.
    """

    evaluator: EvaluatorSpec
    kind: str = "schemes"
    chip: Optional[DRAM3T1DChipSample] = None
    schemes: Tuple[str, ...] = ()
    benchmarks: Optional[Tuple[str, ...]] = None
    """Optional benchmark subset passed to ``Evaluator.evaluate`` (the
    evaluator still hosts the full suite's traces)."""

    def __post_init__(self) -> None:
        if self.kind not in ("schemes", "ideal_ipc"):
            raise ConfigurationError(f"unknown EvalTask kind {self.kind!r}")
        if self.kind == "schemes":
            if self.chip is None:
                raise ConfigurationError("a 'schemes' task needs a chip")
            if not self.schemes:
                raise ConfigurationError(
                    "a 'schemes' task needs at least one scheme"
                )


def _evaluate_schemes(
    evaluator: Evaluator, task: EvalTask
) -> Tuple[SchemeOutcome, ...]:
    evaluations = evaluate_many(
        [task.chip], task.schemes, evaluator, benchmarks=task.benchmarks
    )[0]
    outcomes: List[SchemeOutcome] = []
    for name, evaluation in zip(task.schemes, evaluations):
        scheme = get_scheme(name)
        if evaluation is None:
            outcomes.append(SchemeOutcome(scheme=name, discarded=True))
            continue
        results = evaluation.results
        worst_name, worst_perf = evaluation.worst_benchmark
        ideal_watts = float(np.mean([
            r.dynamic_power_watts / max(r.dynamic_power_normalized, 1e-12)
            for r in results.values()
        ]))
        refresh_norm = 0.0
        if scheme.is_global:
            technology = getattr(task.chip, "technology", "3t1d")
            power_model = CachePowerModel(
                evaluator.node,
                cell_kind="3T1D" if technology == "3t1d" else technology,
                geometry=evaluator.config.geometry,
            )
            refresh_watts = power_model.global_refresh_power(
                task.chip.chip_retention_time
            )
            refresh_norm = refresh_watts / ideal_watts
        with_stats = [r for r in results.values() if r.stats is not None]
        outcomes.append(
            SchemeOutcome(
                scheme=name,
                normalized_performance=evaluation.normalized_performance,
                dynamic_power_normalized=evaluation.dynamic_power_normalized,
                bips=evaluation.bips,
                worst_benchmark=worst_name,
                worst_performance=worst_perf,
                mean_dynamic_power_watts=float(np.mean(
                    [r.dynamic_power_watts for r in results.values()]
                )),
                ideal_power_watts=ideal_watts,
                refresh_power_normalized=refresh_norm,
                mean_miss_rate=float(np.mean(
                    [r.stats.miss_rate for r in with_stats]
                )) if with_stats else 0.0,
                mean_expired_miss_rate=float(np.mean(
                    [r.stats.expired_miss_rate for r in with_stats]
                )) if with_stats else 0.0,
                kernel_paths=tuple(
                    (bench, result.kernel_path)
                    for bench, result in results.items()
                ),
            )
        )
    return tuple(outcomes)


def run_eval_task(task: EvalTask):
    """Execute one evaluation task (in a worker or inline)."""
    evaluator = evaluator_for(task.evaluator)
    if task.kind == "ideal_ipc":
        with trace_mod.span("ideal_ipc", cat="evaluate"):
            ideal = IdealCacheArchitecture(
                evaluator.node, config=evaluator.config
            )
            return tuple(
                evaluator.evaluate_benchmark(ideal, name).ipc
                for name in evaluator.benchmarks
            )
    with trace_mod.span(
        "evaluate_chip", cat="evaluate",
        chip_id=getattr(task.chip, "chip_id", -1),
        schemes=len(task.schemes),
    ):
        return _evaluate_schemes(evaluator, task)


def run_build_task(task: ChipBuildTask):
    """Execute one chip-build task (in a worker or inline)."""
    with trace_mod.span(
        "build_chip", cat="build", chip_id=getattr(task, "chip_id", -1)
    ):
        return task.build()


@dataclass
class RunnerStats:
    """Robustness counters one :class:`ParallelChipRunner` accumulates."""

    task_retries: int = 0
    worker_respawns: int = 0
    tasks_quarantined: int = 0
    results_checkpointed: int = 0
    results_resumed: int = 0


def _supervised_call(
    fn: Callable[[Any], Any],
    task: Any,
    plan: Optional[FaultPlan],
    key: str,
    attempt: int,
    hard_faults: bool,
    collect_spans: bool = False,
):
    """Run one task under the (optional) fault plan.

    Module-level so it pickles by name into workers; ``hard_faults``
    selects process-killing crash injection (pool) vs. raising (inline).

    With ``collect_spans`` (pool submissions of a traced run) the task
    runs under a per-task span collector and the result travels home
    wrapped in a :class:`~repro.engine.trace.TracedResult` -- which the
    supervisor unwraps *before* journalling or returning anything, so
    profiling never touches outputs.  The inline path never wraps: the
    coordinator's ambient tracer receives spans directly.
    """
    kind = None
    if plan is not None:
        kind = plan.apply(key, attempt, hard_faults)
    if not collect_spans:
        result = fn(task)
        if kind == "corrupt":
            return CorruptedPayload(task_key=key, attempt=attempt)
        return result
    with trace_mod.collect_task_spans() as collected:
        result = fn(task)
    if kind == "corrupt":
        result = CorruptedPayload(task_key=key, attempt=attempt)
    return trace_mod.TracedResult(
        value=result,
        spans=collected.spans,
        pid=os.getpid(),
        peak_rss_kb=trace_mod.peak_rss_kb(),
    )


_MISSING = object()

#: How long the supervisor blocks waiting for completions before it
#: re-checks task deadlines and due retries.
_SUPERVISION_TICK = 0.1


class ParallelChipRunner:
    """Schedules chip batches over a supervised process pool.

    ``workers=1`` (or a single-item batch) runs inline in the calling
    process; results are always returned in task order, and are
    bit-identical across worker counts because every task is
    deterministically seeded and self-contained.

    The runner is configured by an :class:`EngineConfig`; the legacy
    ``workers=`` / ``evaluator_cache_size=`` keywords completed their
    deprecation cycle and were removed.  Beyond scheduling, it supervises the
    pool: per-task timeouts, bounded retries with deterministic backoff,
    crashed-worker respawn, poison-task quarantine (a task that exhausts
    its pool retry budget finishes inline instead), and graceful
    degradation to serial execution after repeated pool failures.  When
    the config names a ``checkpoint_dir``, every completed work item is
    flushed to a :class:`~repro.engine.checkpoint.RunJournal` keyed by
    the task's content digest, and ``resume=True`` restores completed
    items instead of recomputing them -- none of which changes results.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        *,
        run_key: str = "",
    ):
        if config is None:
            config = EngineConfig()
        elif not isinstance(config, EngineConfig):
            raise TypeError(
                "ParallelChipRunner takes an EngineConfig; the legacy "
                "workers=/evaluator_cache_size= arguments were removed "
                "-- pass EngineConfig(workers=..., "
                "evaluator_cache_size=...) instead"
            )
        self.config = config
        self.workers = config.effective_workers
        if config.evaluator_cache_size is not None:
            # Applies to the serial/inline path immediately; worker
            # processes pick it up through the pool initializer.
            set_evaluator_cache_size(config.evaluator_cache_size)
        self.evaluator_cache_size = (
            config.evaluator_cache_size
            if config.evaluator_cache_size is not None
            else _EVALUATOR_CACHE_MAX
        )
        self.run_key = run_key
        self.stats = RunnerStats()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._backend_executor: Optional[Any] = None
        self._journal: Optional[RunJournal] = None
        self._journal_opened = False
        self._degraded = False
        self._pool_failures = 0

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once repeated pool failures forced serial execution."""
        return self._degraded

    @property
    def pool_failures(self) -> int:
        """Pool breakdowns (crashes/timeouts) seen so far."""
        return self._pool_failures

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.evaluator_cache_size,),
            )
        return self._executor

    def _shutdown_executor(self, force: bool = False) -> None:
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        if not force:
            executor.shutdown()
            return
        # A broken or hung pool: don't wait for it, and reclaim any
        # worker still grinding on a timed-out task.  ``_processes`` is
        # private, so treat the kill as best-effort.
        processes = getattr(executor, "_processes", None) or {}
        alive = list(processes.values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in alive:
            try:
                process.kill()
            except Exception:
                pass

    def _ensure_journal(self) -> Optional[RunJournal]:
        if not self._journal_opened:
            self._journal_opened = True
            if self.config.checkpoint_dir is not None:
                path = RunJournal.path_for(
                    self.config.checkpoint_dir, self.run_key
                )
                self._journal = RunJournal(path, resume=self.config.resume)
        return self._journal

    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        observer: Subscriber = NULL_OBSERVER,
        label: str = "batch",
    ) -> List[Any]:
        """Run ``fn`` over ``tasks``; results come back in task order.

        ``fn`` must be a module-level callable (it crosses the process
        boundary by reference).  ``observer`` is any typed-event
        subscriber (an :class:`~repro.engine.events.EventStream`, a
        legacy :class:`RunObserver`, or a bare callable); it sees one
        :class:`~repro.engine.events.ChipCompleted` per computed item in
        completion order, the batch lifecycle events, the robustness
        events when recovery paths fire, and -- on traced pool runs --
        one :class:`~repro.engine.events.SpansCollected` per task.
        """
        tasks = list(tasks)
        total = len(tasks)
        dispatch(observer, BatchStarted(label, total))
        start = time.perf_counter()
        journal = self._ensure_journal()
        plan = self.config.fault_plan
        keys: Optional[List[str]] = None
        if (
            journal is not None
            or plan is not None
            or self.config.backend != LOCAL_BACKEND
        ):
            keys = [task_key(fn, task) for task in tasks]
        results: List[Any] = [_MISSING] * total
        if journal is not None:
            restored = 0
            with trace_mod.span("journal_restore", cat="checkpoint",
                                label=label) as restore_span:
                for index in range(total):
                    if keys[index] in journal:
                        results[index] = journal.get(keys[index])
                        restored += 1
                restore_span.set(restored=restored)
            if restored:
                self.stats.results_resumed += restored
                dispatch(observer, RunResumed(label, restored))
        remaining = [i for i in range(total) if results[i] is _MISSING]
        state = {"completed": total - len(remaining), "flushed": 0}

        def finish(index: int, value: Any) -> None:
            results[index] = value
            state["completed"] += 1
            if journal is not None and journal.record(keys[index], value):
                state["flushed"] += 1
            dispatch(observer, ChipCompleted(label, state["completed"], total))

        if remaining:
            if self.config.backend != LOCAL_BACKEND:
                self._run_backend(fn, tasks, keys, remaining, finish,
                                  observer, label)
            elif self.workers <= 1 or len(remaining) <= 1 or self._degraded:
                self._run_serial(fn, tasks, keys, remaining, finish,
                                 observer, label)
            else:
                self._run_pool(fn, tasks, keys, remaining, finish,
                               observer, label)
                leftovers = [i for i in remaining if results[i] is _MISSING]
                if leftovers:
                    # Quarantined tasks and the tail of a degraded run
                    # finish inline, where a persistent failure surfaces
                    # as a real traceback.
                    self._run_serial(fn, tasks, keys, leftovers, finish,
                                     observer, label)
        if state["flushed"]:
            self.stats.results_checkpointed += state["flushed"]
            dispatch(observer, RunCheckpointed(label, state["flushed"]))
        dispatch(observer, BatchEnded(label, total,
                                      time.perf_counter() - start))
        return results

    # ------------------------------------------------------------------

    def _run_serial(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        keys: Optional[List[str]],
        indices: Sequence[int],
        finish: Callable[[int, Any], None],
        observer: Subscriber,
        label: str,
    ) -> None:
        """Inline execution with the same retry budget as the pool."""
        plan = self.config.fault_plan
        for index in indices:
            key = keys[index] if keys is not None else ""
            failures = 0
            while True:
                try:
                    value = _supervised_call(
                        fn, tasks[index], plan, key, failures, False
                    )
                    if isinstance(value, CorruptedPayload):
                        raise ExecutionError(
                            f"corrupted payload from task {index} of "
                            f"{label!r} (attempt {value.attempt})"
                        )
                    break
                except Exception as exc:
                    failures += 1
                    if failures > self.config.max_retries:
                        raise ExecutionError(
                            f"task {index} of batch {label!r} failed "
                            f"{failures} times; giving up"
                        ) from exc
                    self.stats.task_retries += 1
                    dispatch(
                        observer, TaskRetried(label, index, failures, repr(exc))
                    )
                    time.sleep(self.config.retry_backoff(failures))
            finish(index, value)

    def _run_backend(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        keys: Optional[List[str]],
        remaining: Sequence[int],
        finish: Callable[[int, Any], None],
        observer: Subscriber,
        label: str,
    ) -> None:
        """Route a batch through the configured execution backend.

        Non-local backends (``"subprocess-fleet"`` and anything
        registered via
        :func:`repro.service.backends.register_execution_backend`) come
        here; the executor is created lazily on first use and lives
        until :meth:`close`, so a persistent fleet amortises across
        batches.  Supervision events the executor reports are folded
        into :attr:`stats` exactly like the pool path's.
        """
        from repro.service.backends import BatchItem, get_execution_backend

        if self._backend_executor is None:
            backend = get_execution_backend(self.config.backend)
            self._backend_executor = backend.executor(self.config)

        def notify(event: Any) -> None:
            if isinstance(event, TaskRetried):
                self.stats.task_retries += 1
            elif isinstance(event, WorkerRespawned):
                self.stats.worker_respawns += 1
            dispatch(observer, event)

        items = [BatchItem(i, keys[i], tasks[i]) for i in remaining]
        for index, value in self._backend_executor.run_batch(
            fn, items, notify, label=label
        ):
            finish(index, value)

    def _run_pool(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        keys: Optional[List[str]],
        remaining: Sequence[int],
        finish: Callable[[int, Any], None],
        observer: Subscriber,
        label: str,
    ) -> None:
        """The supervision loop: submit, watch deadlines, retry, respawn."""
        config = self.config
        plan = config.fault_plan
        # Decided once per batch: traced runs ask workers to collect and
        # ship their spans home alongside each result.
        collect_spans = trace_mod.tracing_active()
        attempts: Dict[int, int] = {index: 0 for index in remaining}
        failures: Dict[int, int] = {index: 0 for index in remaining}
        pending: Dict[Any, int] = {}
        deadlines: Dict[Any, float] = {}
        delayed: List[Tuple[float, int]] = []
        quarantined: List[int] = []

        def submit(index: int) -> bool:
            """Submit one task; respawns the pool if submission breaks."""
            key = keys[index] if keys is not None else ""
            while not self._degraded:
                executor = self._ensure_executor()
                try:
                    future = executor.submit(
                        _supervised_call, fn, tasks[index], plan, key,
                        attempts[index], True, collect_spans,
                    )
                except BrokenExecutor:
                    note_pool_failure()
                    continue
                pending[future] = index
                if config.task_timeout is not None:
                    deadlines[future] = (
                        time.monotonic() + config.task_timeout
                    )
                return True
            return False

        def note_pool_failure() -> None:
            self._pool_failures += 1
            self.stats.worker_respawns += 1
            self._shutdown_executor(force=True)
            dispatch(observer, WorkerRespawned(label, self._pool_failures))
            if self._pool_failures >= config.max_pool_failures:
                self._degraded = True

        def task_failed(index: int, reason: str) -> None:
            failures[index] += 1
            attempts[index] += 1
            if failures[index] > config.max_retries:
                quarantined.append(index)
                self.stats.tasks_quarantined += 1
            else:
                self.stats.task_retries += 1
                dispatch(
                    observer,
                    TaskRetried(label, index, failures[index], reason),
                )
                delayed.append((
                    time.monotonic() + config.retry_backoff(failures[index]),
                    index,
                ))

        for index in remaining:
            if not submit(index):
                return
        while (pending or delayed) and not self._degraded:
            now = time.monotonic()
            for entry in [e for e in delayed if e[0] <= now]:
                delayed.remove(entry)
                if not submit(entry[1]):
                    return
            if not pending:
                if not delayed:
                    break
                next_due = min(entry[0] for entry in delayed)
                pause = min(_SUPERVISION_TICK, next_due - time.monotonic())
                if pause > 0:
                    time.sleep(pause)
                continue
            done, _ = wait(
                list(pending), timeout=_SUPERVISION_TICK,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            in_flight_casualties: List[int] = []
            for future in done:
                index = pending.pop(future)
                deadlines.pop(future, None)
                try:
                    value = future.result()
                except BrokenExecutor:
                    # The pool died under this task; it may or may not
                    # be the culprit, so it is resubmitted (with a fresh
                    # attempt number) rather than charged a failure.
                    broken = True
                    in_flight_casualties.append(index)
                    continue
                except Exception as exc:
                    task_failed(index, repr(exc))
                    continue
                if isinstance(value, trace_mod.TracedResult):
                    # Unwrap BEFORE journalling/returning: profiling
                    # data must never reach results or checkpoints.
                    dispatch(observer, SpansCollected(
                        label, value.spans, value.pid, value.peak_rss_kb,
                    ))
                    value = value.value
                if isinstance(value, CorruptedPayload):
                    task_failed(
                        index,
                        f"corrupted payload (attempt {value.attempt})",
                    )
                    continue
                finish(index, value)
            now = time.monotonic()
            timed_out = [
                future for future, deadline in deadlines.items()
                if deadline <= now
            ]
            for future in timed_out:
                index = pending.pop(future)
                deadlines.pop(future, None)
                task_failed(
                    index, f"task timeout after {config.task_timeout:g}s"
                )
                # The worker is still grinding on the hung task; the
                # only way to reclaim it is to recycle the pool.
                broken = True
            if broken:
                survivors = sorted(pending.values()) + in_flight_casualties
                pending.clear()
                deadlines.clear()
                note_pool_failure()
                if self._degraded:
                    return
                for index in survivors:
                    attempts[index] += 1
                    if not submit(index):
                        return

    def build_chips(
        self,
        tasks: Sequence[ChipBuildTask],
        observer: Subscriber = NULL_OBSERVER,
        label: str = "sample chips",
    ) -> List[Any]:
        """Realize reserved chip-build tasks (order = reservation order)."""
        return self.map(run_build_task, tasks, observer=observer, label=label)

    def evaluate(
        self,
        tasks: Sequence[EvalTask],
        observer: Subscriber = NULL_OBSERVER,
        label: str = "evaluate chips",
    ) -> List[Any]:
        """Run evaluation tasks; one result per task, in task order.

        After the batch completes, the replay paths taken per
        scheme x benchmark cell are aggregated and reported through one
        :class:`~repro.engine.events.KernelPathsCollected` event.
        """
        results = self.map(
            run_eval_task, tasks, observer=observer, label=label
        )
        paths: Dict[str, str] = {}
        for value in results:
            if not isinstance(value, tuple):
                continue
            for outcome in value:
                if not isinstance(outcome, SchemeOutcome):
                    continue
                for bench, path in outcome.kernel_paths:
                    paths[f"{outcome.scheme}/{bench}"] = path
        if paths:
            dispatch(observer, KernelPathsCollected(
                label, tuple(sorted(paths.items())),
            ))
        return results

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool and journal down.

        A later batch re-creates the pool; the journal re-opens in
        resume mode so already-flushed results survive the close.
        """
        self._shutdown_executor()
        if self._backend_executor is not None:
            self._backend_executor.close()
            self._backend_executor = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self._journal_opened and self.config.checkpoint_dir is not None:
            # Re-open on next use without discarding flushed entries.
            self.config = self.config.replace(resume=True)
        self._journal_opened = False

    def __enter__(self) -> "ParallelChipRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "DEFAULT_EVALUATOR_CACHE_SIZE",
    "EvaluatorSpec",
    "EvalTask",
    "SchemeOutcome",
    "ParallelChipRunner",
    "RunnerStats",
    "evaluator_cache_size",
    "evaluator_for",
    "run_eval_task",
    "run_build_task",
    "set_evaluator_cache_size",
]
