"""The unified engine configuration surface.

:class:`EngineConfig` gathers every execution knob that used to be
scattered across :class:`~repro.experiments.runner.ExperimentContext`
fields, :class:`~repro.engine.parallel.ParallelChipRunner` arguments, and
``run_all``-only CLI flags: pool width, result-cache directory, the
evaluator LRU capacity, and the robustness layer (checkpoint directory,
resume flag, per-task timeout, retry budget, pool-failure budget, fault
plan).  None of these knobs ever affect results -- serial, parallel,
cached, resumed, and fault-injected runs stay bit-identical -- so the
config deliberately contributes nothing to cache fingerprints.

The legacy keyword signatures (``ExperimentContext(workers=...)``,
``ParallelChipRunner(workers=..., evaluator_cache_size=...)``) completed
their deprecation cycle and were removed; :class:`EngineConfig` is the
only way to configure the engine (see DESIGN.md section 3d).
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.engine.faults import FaultPlan


#: The default execution backend: the in-process supervised pool.
LOCAL_BACKEND = "local"

#: The durable-queue fleet backend (see :mod:`repro.service.fleet`).
SUBPROCESS_FLEET_BACKEND = "subprocess-fleet"


@dataclass(frozen=True)
class EngineConfig:
    """Execution, caching, and robustness knobs for one engine run.

    All fields are orthogonal to results; they tune how (and how
    durably) the same bits get computed.
    """

    workers: Optional[int] = None
    """Process-pool width; ``None`` lets the runner use the CPU count."""
    backend: str = LOCAL_BACKEND
    """Which execution backend fans chip batches out.  ``"local"`` (the
    default) is the in-process supervised pool and is bit-identical to
    every historical run; ``"subprocess-fleet"`` routes batches through a
    durable on-disk task queue served by persistent worker processes
    (see :mod:`repro.service.backends`).  Unknown names fail when the
    runner first resolves them, so third-party backends registered via
    :func:`repro.service.backends.register_execution_backend` are legal
    values here."""
    fleet_size: Optional[int] = None
    """Worker-process count for the subprocess-fleet backend; ``None``
    falls back to :attr:`effective_workers`.  Ignored by ``"local"``."""
    queue_dir: Optional[pathlib.Path] = None
    """Durable task-queue directory for queue-based backends; ``None``
    derives ``checkpoint_dir / "fleet-queue"`` (a private temporary
    directory when no checkpoint dir is configured either).  Sharing one
    queue directory across runs and clients dedupes work fleet-wide:
    queue results are keyed by content-digest task keys, exactly like
    the run journal."""
    cache_dir: Optional[pathlib.Path] = None
    """Result-cache directory (experiment-level memoisation)."""
    evaluator_cache_size: Optional[int] = None
    """Per-process evaluator LRU capacity; ``None`` keeps the default."""
    checkpoint_dir: Optional[pathlib.Path] = None
    """Run-journal directory; ``None`` disables chip-level checkpoints."""
    resume: bool = False
    """Load an existing run journal instead of starting it fresh."""
    task_timeout: Optional[float] = None
    """Seconds a pooled task may run before it is failed and retried."""
    max_retries: int = 2
    """Individual failures a task may accumulate before quarantine."""
    retry_backoff_s: float = 0.05
    """Base of the deterministic exponential retry backoff."""
    max_pool_failures: int = 5
    """Pool breakdowns tolerated before degrading to serial execution."""
    fault_plan: Optional[FaultPlan] = None
    """Seeded fault-injection schedule (testing/CI only)."""

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if not self.backend or not isinstance(self.backend, str):
            raise ConfigurationError(
                f"backend must be a non-empty backend name, got "
                f"{self.backend!r}"
            )
        if self.fleet_size is not None and self.fleet_size < 1:
            raise ConfigurationError(
                f"fleet_size must be >= 1, got {self.fleet_size}"
            )
        if (
            self.evaluator_cache_size is not None
            and self.evaluator_cache_size < 1
        ):
            raise ConfigurationError(
                "evaluator cache size must be >= 1, got "
                f"{self.evaluator_cache_size}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be > 0, got {self.task_timeout}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.max_pool_failures < 0:
            raise ConfigurationError(
                f"max_pool_failures must be >= 0, got {self.max_pool_failures}"
            )
        for name in ("cache_dir", "checkpoint_dir", "queue_dir"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, pathlib.Path):
                object.__setattr__(self, name, pathlib.Path(value))

    # ------------------------------------------------------------------

    @property
    def effective_workers(self) -> int:
        """The pool width actually used (CPU count when unset)."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1

    @property
    def effective_fleet_size(self) -> int:
        """Worker processes a queue-based backend should keep alive."""
        if self.fleet_size is not None:
            return self.fleet_size
        return self.effective_workers

    def replace(self, **overrides) -> "EngineConfig":
        """A derived config with the given fields replaced."""
        return dataclasses.replace(self, **overrides)

    def retry_backoff(self, failure: int) -> float:
        """Deterministic backoff before retry number ``failure`` (1-based)."""
        return self.retry_backoff_s * (2 ** max(0, failure - 1))


__all__ = ["EngineConfig", "LOCAL_BACKEND", "SUBPROCESS_FLEET_BACKEND"]
