"""Synthetic SPEC2000-like workloads.

The paper simulates 8 SPEC2000 benchmarks (applu, crafty, fma3d, gcc,
gzip, mcf, mesa, twolf) chosen by Phansalkar et al. as representative of
the whole suite.  We cannot ship SPEC binaries, so each benchmark is
replaced by a synthetic trace generator whose statistics are calibrated to
what the paper's evaluation actually depends on:

* the distribution of reference distances from line load (Figure 1 --
  ~90% of references within 6K cycles of the load, per-benchmark spread),
* memory intensity (cache traffic around 30% of cycles, section 4.1),
* baseline IPC (Table 3's BIPS at the ideal cache),
* branch behaviour and instruction mix for the pipeline model.

See ``DESIGN.md`` section 2 for the substitution argument.
"""

from repro.workloads.profiles import (
    BenchmarkProfile,
    SPEC2000_PROFILES,
    benchmark_names,
    get_profile,
)
from repro.workloads.generator import SyntheticWorkload, MemoryTrace
from repro.workloads.reuse import reference_distance_cdf, ReuseStatistics

__all__ = [
    "BenchmarkProfile",
    "SPEC2000_PROFILES",
    "benchmark_names",
    "get_profile",
    "SyntheticWorkload",
    "MemoryTrace",
    "reference_distance_cdf",
    "ReuseStatistics",
]
