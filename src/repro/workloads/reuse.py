"""Reference-distance measurement (reproduces Figure 1).

Figure 1 plots, per benchmark, the cumulative fraction of cache
references that occur within D cycles of the referenced line being
*loaded*.  :func:`reference_distance_cdf` measures exactly that from a
:class:`~repro.workloads.generator.MemoryTrace`: the first access to a
line (or the first after an eviction horizon) counts as its load, and
every subsequent reference contributes its distance from that load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.generator import MemoryTrace


@dataclass(frozen=True)
class ReuseStatistics:
    """Measured reference-distance distribution of one trace."""

    name: str
    distances: np.ndarray
    """Distance from line load for every reuse reference, cycles."""
    n_references: int
    n_loads: int

    def cdf_at(self, distance_cycles: float) -> float:
        """Fraction of reuse references within ``distance_cycles``."""
        if len(self.distances) == 0:
            return 0.0
        return float(np.mean(self.distances <= distance_cycles))

    def cdf_series(self, grid: Sequence[float]) -> np.ndarray:
        """CDF evaluated on a distance grid (the Figure 1 curve)."""
        if len(self.distances) == 0:
            return np.zeros(len(list(grid)))
        sorted_d = np.sort(self.distances)
        return np.searchsorted(sorted_d, np.asarray(list(grid)), side="right") / len(
            sorted_d
        )

    @property
    def mean_distance(self) -> float:
        """Mean reuse distance in cycles."""
        if len(self.distances) == 0:
            return 0.0
        return float(np.mean(self.distances))


def reference_distance_cdf(
    trace: MemoryTrace, reload_horizon_cycles: float = float("inf")
) -> ReuseStatistics:
    """Measure the Figure 1 distribution for ``trace``.

    ``reload_horizon_cycles`` re-classifies a reference as a fresh load if
    the line has been idle longer than the horizon (approximating an
    eviction + reload in a finite cache); the paper's infinite-horizon
    reading is the default.
    """
    if reload_horizon_cycles <= 0:
        raise ConfigurationError("reload_horizon_cycles must be positive")
    load_time: Dict[int, int] = {}
    last_touch: Dict[int, int] = {}
    distances = []
    n_loads = 0
    for cycle, line in zip(trace.cycles, trace.line_addresses):
        cycle = int(cycle)
        line = int(line)
        if line in load_time and (
            cycle - last_touch[line] <= reload_horizon_cycles
        ):
            distances.append(cycle - load_time[line])
        else:
            load_time[line] = cycle
            n_loads += 1
        last_touch[line] = cycle
    return ReuseStatistics(
        name=trace.name,
        distances=np.asarray(distances, dtype=np.int64),
        n_references=len(trace),
        n_loads=n_loads,
    )
