"""Per-benchmark workload profiles (the 8 SPEC2000 representatives).

Each profile parameterises the synthetic trace generator and the analytic
performance model.  The temporal-reuse parameters are calibrated against
Figure 1 of the paper: the fraction of references within D cycles of the
line load follows a two-exponential mixture

    F(D) = (1 - p_long) * (1 - exp(-D / tau_burst))
         +      p_long  * (1 - exp(-D / tau_long))

with per-benchmark ``tau_burst`` (the initial access burst after a load),
``p_long`` and ``tau_long`` (the far-reuse tail that distinguishes mcf and
twolf from streaming codes like applu).  The average across benchmarks
puts ~90% of references within 6K cycles, matching the paper's reading of
Figure 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one benchmark.

    Attributes
    ----------
    name:
        SPEC2000 benchmark name.
    base_ipc:
        IPC with an ideal (never-missing, fixed-latency) L1; used for trace
        timestamping and as the analytic model's baseline.
    mem_refs_per_instr:
        Loads+stores per instruction.
    store_fraction:
        Stores as a fraction of memory references.
    working_set_lines:
        Descriptive footprint metadata (approximate distinct lines in an
        L1-sized reuse window).  The generator allocates fresh line
        addresses per load episode -- locality comes from the reuse
        mixture, not from address recycling -- so this field documents
        the benchmark rather than parameterising the trace.
    accesses_per_line:
        Mean references to a line per load episode (sets burst length).
    tau_burst_cycles / p_long / tau_long_cycles:
        The Figure 1 reuse-distance mixture parameters.
    fp_fraction:
        FP micro-ops as a fraction of non-memory compute ops.
    branch_fraction:
        Branches per instruction.
    branch_bias:
        Probability a synthetic branch follows its dominant direction
        (higher = more predictable).
    l2_miss_rate:
        Fraction of this benchmark's L1 misses that also miss in L2.
    miss_overlap:
        Fraction of L1-miss latency the out-of-order core hides (MLP /
        independent work); used by the analytic performance model.
    """

    name: str
    base_ipc: float
    mem_refs_per_instr: float
    store_fraction: float
    working_set_lines: int
    accesses_per_line: float
    tau_burst_cycles: float
    p_long: float
    tau_long_cycles: float
    fp_fraction: float
    branch_fraction: float
    branch_bias: float
    l2_miss_rate: float
    miss_overlap: float
    dep_distance_mean: float = 3.0
    p_l2: float = 0.04
    """Fraction of references that re-touch data far beyond L1 residence
    (hundreds of thousands of cycles): they miss the L1 in any
    configuration and exercise the L2's capacity."""
    tau_l2_cycles: float = 250_000.0
    """Distance scale of the L2-tier reuse component, cycles."""
    """Mean backwards distance to an instruction's producer; larger means
    more instruction-level parallelism (FP/vector codes sit near 8-12,
    serial pointer-chasing integer codes near 3)."""

    def __post_init__(self) -> None:
        if self.base_ipc <= 0:
            raise ConfigurationError("base_ipc must be positive")
        if not 0 < self.mem_refs_per_instr < 1:
            raise ConfigurationError("mem_refs_per_instr must be in (0, 1)")
        if not 0 <= self.store_fraction <= 1:
            raise ConfigurationError("store_fraction must be in [0, 1]")
        if self.working_set_lines < 1:
            raise ConfigurationError("working_set_lines must be >= 1")
        if self.accesses_per_line < 1:
            raise ConfigurationError("accesses_per_line must be >= 1")
        if self.dep_distance_mean < 1.0:
            raise ConfigurationError("dep_distance_mean must be >= 1")
        if not 0 <= self.p_l2 < 1 or self.p_long + self.p_l2 >= 1:
            raise ConfigurationError("p_long + p_l2 must stay below 1")
        if self.tau_l2_cycles <= 0:
            raise ConfigurationError("tau_l2_cycles must be positive")
        for attr in ("tau_burst_cycles", "tau_long_cycles"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")
        for attr in ("p_long", "fp_fraction", "branch_fraction",
                     "branch_bias", "l2_miss_rate", "miss_overlap"):
            if not 0 <= getattr(self, attr) <= 1:
                raise ConfigurationError(f"{attr} must be in [0, 1]")

    def reuse_cdf(self, distance_cycles: float) -> float:
        """Fraction of references within ``distance_cycles`` of the load.

        The Figure 1 curve for this benchmark (closed form).
        """
        if distance_cycles <= 0:
            return 0.0
        burst = 1.0 - math.exp(-distance_cycles / self.tau_burst_cycles)
        tail = 1.0 - math.exp(-distance_cycles / self.tau_long_cycles)
        far = 1.0 - math.exp(-distance_cycles / self.tau_l2_cycles)
        p_burst = 1.0 - self.p_long - self.p_l2
        return p_burst * burst + self.p_long * tail + self.p_l2 * far

    def reuse_survival(self, distance_cycles: float) -> float:
        """Fraction of references *beyond* ``distance_cycles`` of the load."""
        return 1.0 - self.reuse_cdf(distance_cycles)

    @property
    def cache_traffic_per_cycle(self) -> float:
        """Memory references per cycle at the baseline IPC."""
        return self.base_ipc * self.mem_refs_per_instr


# Calibration notes:
# * base_ipc values give a harmonic mean of ~0.95, so BIPS at the 32nm
#   4.3GHz ideal design lands near Table 3's 4.17 BIPS.
# * fma3d gets the heaviest long-reuse tail: the paper calls it the
#   worst-case benchmark for retention sensitivity (Figure 6b).
# * mcf has the largest working set and lowest IPC (memory bound).
SPEC2000_PROFILES: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in (
        BenchmarkProfile(
            name="applu", base_ipc=1.40, mem_refs_per_instr=0.34,
            store_fraction=0.28, working_set_lines=8192,
            accesses_per_line=12.0, tau_burst_cycles=900.0,
            p_long=0.03, tau_long_cycles=12000.0, fp_fraction=0.75,
            branch_fraction=0.06, branch_bias=0.97, l2_miss_rate=0.12,
            miss_overlap=0.85, dep_distance_mean=12.0, p_l2=0.02, tau_l2_cycles=200000.0,
        ),
        BenchmarkProfile(
            name="crafty", base_ipc=1.15, mem_refs_per_instr=0.30,
            store_fraction=0.25, working_set_lines=1024,
            accesses_per_line=70.0, tau_burst_cycles=1600.0,
            p_long=0.08, tau_long_cycles=15000.0, fp_fraction=0.02,
            branch_fraction=0.16, branch_bias=0.91, l2_miss_rate=0.02,
            miss_overlap=0.78, dep_distance_mean=4.0, p_l2=0.03, tau_l2_cycles=150000.0,
        ),
        BenchmarkProfile(
            name="fma3d", base_ipc=1.05, mem_refs_per_instr=0.36,
            store_fraction=0.33, working_set_lines=4096,
            accesses_per_line=25.0, tau_burst_cycles=2200.0,
            p_long=0.16, tau_long_cycles=20000.0, fp_fraction=0.70,
            branch_fraction=0.07, branch_bias=0.95, l2_miss_rate=0.10,
            miss_overlap=0.85, dep_distance_mean=9.0, p_l2=0.04, tau_l2_cycles=250000.0,
        ),
        BenchmarkProfile(
            name="gcc", base_ipc=0.95, mem_refs_per_instr=0.33,
            store_fraction=0.35, working_set_lines=2048,
            accesses_per_line=30.0, tau_burst_cycles=1400.0,
            p_long=0.09, tau_long_cycles=14000.0, fp_fraction=0.01,
            branch_fraction=0.18, branch_bias=0.90, l2_miss_rate=0.05,
            miss_overlap=0.78, dep_distance_mean=3.5, p_l2=0.04, tau_l2_cycles=200000.0,
        ),
        BenchmarkProfile(
            name="gzip", base_ipc=1.15, mem_refs_per_instr=0.28,
            store_fraction=0.22, working_set_lines=1536,
            accesses_per_line=40.0, tau_burst_cycles=1100.0,
            p_long=0.05, tau_long_cycles=12000.0, fp_fraction=0.01,
            branch_fraction=0.15, branch_bias=0.89, l2_miss_rate=0.04,
            miss_overlap=0.78, dep_distance_mean=4.0, p_l2=0.03, tau_l2_cycles=180000.0,
        ),
        BenchmarkProfile(
            name="mcf", base_ipc=0.50, mem_refs_per_instr=0.40,
            store_fraction=0.20, working_set_lines=16384,
            accesses_per_line=4.0, tau_burst_cycles=2600.0,
            p_long=0.13, tau_long_cycles=18000.0, fp_fraction=0.01,
            branch_fraction=0.17, branch_bias=0.88, l2_miss_rate=0.30,
            miss_overlap=0.75, dep_distance_mean=6.0, p_l2=0.08, tau_l2_cycles=400000.0,
        ),
        BenchmarkProfile(
            name="mesa", base_ipc=1.45, mem_refs_per_instr=0.30,
            store_fraction=0.30, working_set_lines=1024,
            accesses_per_line=90.0, tau_burst_cycles=800.0,
            p_long=0.04, tau_long_cycles=10000.0, fp_fraction=0.45,
            branch_fraction=0.09, branch_bias=0.95, l2_miss_rate=0.03,
            miss_overlap=0.85, dep_distance_mean=9.0, p_l2=0.02, tau_l2_cycles=120000.0,
        ),
        BenchmarkProfile(
            name="twolf", base_ipc=0.80, mem_refs_per_instr=0.35,
            store_fraction=0.25, working_set_lines=1200,
            accesses_per_line=15.0, tau_burst_cycles=2000.0,
            p_long=0.12, tau_long_cycles=16000.0, fp_fraction=0.05,
            branch_fraction=0.16, branch_bias=0.88, l2_miss_rate=0.06,
            miss_overlap=0.75, dep_distance_mean=3.5, p_l2=0.05, tau_l2_cycles=250000.0,
        ),
    )
}


def benchmark_names() -> Tuple[str, ...]:
    """The 8 benchmark names in the paper's canonical order."""
    return ("applu", "crafty", "fma3d", "gcc", "gzip", "mcf", "mesa", "twolf")


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return SPEC2000_PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; available: {sorted(SPEC2000_PROFILES)}"
        ) from None
