"""Synthetic trace generation.

:class:`SyntheticWorkload` turns a :class:`BenchmarkProfile` into

* a :class:`MemoryTrace` -- timestamped (cycle, line, is_write) references
  whose distance-from-load distribution follows the profile's Figure 1
  mixture, for the open-loop cache simulations; and
* an :class:`~repro.cpu.trace.InstructionTrace` -- the full micro-op
  stream (compute ops with dependency distances, branches with a
  predictable-biased pattern, and the same memory reference stream) for
  the out-of-order pipeline model.

Generation of reuse distances is direct: for a reuse reference at time t,
a target distance d is drawn from the profile mixture and the generator
reuses the line whose load time is closest to t - d (binary search over
the load history).  The measured Figure 1 curve therefore matches the
profile's closed form by construction, which is what makes the analytic
and event-driven evaluation modes agree.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.profiles import BenchmarkProfile
from repro.cpu.isa import OpClass
from repro.cpu.trace import InstructionTrace


@dataclass
class MemoryTrace:
    """Timestamped cache-line reference stream.

    ``cycles`` are non-decreasing int64 timestamps, ``line_addresses`` the
    referenced cache-line numbers, ``is_write`` the store mask.
    ``instructions`` is the instruction count the stream corresponds to
    (for miss-per-instruction metrics).
    """

    cycles: np.ndarray
    line_addresses: np.ndarray
    is_write: np.ndarray
    name: str
    instructions: int
    warmup_references: int = 0

    def __post_init__(self) -> None:
        n = len(self.cycles)
        if len(self.line_addresses) != n or len(self.is_write) != n:
            raise ConfigurationError("memory trace arrays must align")
        if n and np.any(np.diff(self.cycles) < 0):
            raise ConfigurationError("trace cycles must be non-decreasing")
        if not 0 <= self.warmup_references <= n:
            raise ConfigurationError(
                "warmup_references must be within the trace length"
            )

    def __len__(self) -> int:
        return len(self.cycles)

    @property
    def duration_cycles(self) -> int:
        """Cycles spanned by the trace."""
        if len(self) == 0:
            return 0
        return int(self.cycles[-1]) + 1

    @property
    def measured_window_cycles(self) -> int:
        """Cycles spanned by the post-warmup (measured) references."""
        if len(self) == 0:
            return 0
        if self.warmup_references == 0:
            return self.duration_cycles
        if self.warmup_references >= len(self):
            return 0
        start = int(self.cycles[self.warmup_references - 1])
        return int(self.cycles[-1]) - start + 1


class SyntheticWorkload:
    """Deterministic synthetic workload for one benchmark profile."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed

    # ------------------------------------------------------------------
    # memory reference stream
    # ------------------------------------------------------------------

    def memory_trace(
        self, n_references: int, warmup_lines: int = 0
    ) -> MemoryTrace:
        """Generate ``n_references`` timestamped cache-line references.

        ``warmup_lines`` prepends one reference to that many distinct
        lines before the measured stream, standing in for the program
        history that fills the cache before a measurement window (real
        benchmarks run hundreds of millions of instructions before the
        SimPoint window; a cold, half-empty cache would hide every
        replacement-policy effect).  The warmup references are flagged via
        ``MemoryTrace.warmup_references`` so simulators can reset their
        statistics after them.
        """
        if n_references < 0:
            raise ConfigurationError("n_references must be >= 0")
        if warmup_lines < 0:
            raise ConfigurationError("warmup_lines must be >= 0")
        profile = self.profile
        rng = np.random.default_rng(
            (self.seed, zlib.crc32(profile.name.encode()) & 0xFFFF)
        )

        # Mean cycles between references at the baseline IPC.
        gap = 1.0 / profile.cache_traffic_per_cycle
        p_new = 1.0 / profile.accesses_per_line

        gaps = rng.exponential(gap, size=n_references)
        cycles = np.cumsum(gaps).astype(np.int64)
        is_new = rng.random(n_references) < p_new
        kind_draw = rng.random(n_references)
        is_l2 = kind_draw < profile.p_l2
        is_long = (~is_l2) & (
            kind_draw < profile.p_l2 + profile.p_long
        )
        burst_d = rng.exponential(profile.tau_burst_cycles, size=n_references)
        long_d = rng.exponential(profile.tau_long_cycles, size=n_references)
        l2_d = rng.exponential(profile.tau_l2_cycles, size=n_references)
        writes = rng.random(n_references) < profile.store_fraction

        load_times: List[int] = []
        load_lines: List[int] = []
        lines = np.empty(n_references, dtype=np.int64)
        next_line = 0

        for i in range(n_references):
            t = int(cycles[i])
            if is_new[i] or not load_times:
                # Every load episode gets a fresh line address: the ideal
                # miss rate is then 1/accesses_per_line by construction and
                # reference distances stay anchored to the episode's load.
                line = next_line
                next_line += 1
                # Record the load episode.
                load_times.append(t)
                load_lines.append(line)
                lines[i] = line
            else:
                if is_l2[i]:
                    distance = l2_d[i]
                elif is_long[i]:
                    distance = long_d[i]
                else:
                    distance = burst_d[i]
                target = t - distance
                # Closest load episode to the target time.
                pos = bisect.bisect_left(load_times, target)
                if pos >= len(load_times):
                    pos = len(load_times) - 1
                elif pos > 0 and (
                    load_times[pos] - target > target - load_times[pos - 1]
                ):
                    pos -= 1
                lines[i] = load_lines[pos]
        if warmup_lines:
            # Distinct high line addresses, round-robin over the sets,
            # timestamped at the same traffic rate before the window.
            warm_lines = np.arange(warmup_lines, dtype=np.int64) + 10 ** 9
            warm_gaps = rng.exponential(gap, size=warmup_lines)
            warm_cycles = np.cumsum(warm_gaps).astype(np.int64)
            offset = int(warm_cycles[-1]) + int(gap) + 1
            cycles = np.concatenate([warm_cycles, cycles + offset])
            lines = np.concatenate([warm_lines, lines])
            writes = np.concatenate(
                [np.zeros(warmup_lines, dtype=bool), writes]
            )
        return MemoryTrace(
            cycles=cycles,
            line_addresses=lines,
            is_write=writes,
            name=profile.name,
            instructions=int(round(n_references / profile.mem_refs_per_instr)),
            warmup_references=warmup_lines,
        )

    # ------------------------------------------------------------------
    # full instruction stream
    # ------------------------------------------------------------------

    def instruction_trace(
        self, n_instructions: int, memory: Optional[MemoryTrace] = None
    ) -> InstructionTrace:
        """Generate a micro-op stream of ``n_instructions``.

        If ``memory`` is given its line addresses feed the memory ops (so
        the pipeline and cache-only runs see the same reference stream);
        otherwise a fresh memory stream is generated.
        """
        if n_instructions < 0:
            raise ConfigurationError("n_instructions must be >= 0")
        profile = self.profile
        rng = np.random.default_rng(
            (self.seed + 1, zlib.crc32(profile.name.encode()) & 0xFFFF)
        )
        n_mem_estimate = int(n_instructions * profile.mem_refs_per_instr) + 8
        if memory is None:
            memory = self.memory_trace(n_mem_estimate)

        op = np.full(n_instructions, int(OpClass.INT_ALU), dtype=np.int8)
        dep1 = np.zeros(n_instructions, dtype=np.int32)
        dep2 = np.zeros(n_instructions, dtype=np.int32)
        line_address = np.full(n_instructions, -1, dtype=np.int64)
        pc = np.zeros(n_instructions, dtype=np.int64)
        taken = np.zeros(n_instructions, dtype=bool)

        kind = rng.random(n_instructions)
        mem_cut = profile.mem_refs_per_instr
        branch_cut = mem_cut + profile.branch_fraction
        is_fp = rng.random(n_instructions) < profile.fp_fraction
        # Dependency distances: geometric with the profile's mean producer
        # distance (larger = more ILP).
        dep_draws1 = rng.geometric(
            1.0 / profile.dep_distance_mean, size=n_instructions
        )
        dep_draws2 = rng.geometric(
            1.0 / (2.0 * profile.dep_distance_mean), size=n_instructions
        )
        has_dep2 = rng.random(n_instructions) < 0.4
        branch_pcs = rng.integers(0, 64, size=n_instructions)
        branch_dominant = rng.random(n_instructions) < profile.branch_bias

        mem_index = 0
        n_mem_avail = len(memory)
        for i in range(n_instructions):
            dep1[i] = min(dep_draws1[i], i)
            if kind[i] < mem_cut and mem_index < n_mem_avail:
                is_store = bool(memory.is_write[mem_index])
                op[i] = int(OpClass.STORE if is_store else OpClass.LOAD)
                line_address[i] = memory.line_addresses[mem_index]
                mem_index += 1
            elif kind[i] < branch_cut:
                op[i] = int(OpClass.BRANCH)
                pc[i] = int(branch_pcs[i])
                # Dominant direction per PC parity; bias sets predictability.
                dominant = bool(branch_pcs[i] % 2)
                taken[i] = dominant if branch_dominant[i] else not dominant
            else:
                if is_fp[i]:
                    op[i] = int(OpClass.FP_ALU)
                if has_dep2[i]:
                    dep2[i] = min(dep_draws2[i], i)
        return InstructionTrace(
            op=op,
            dep1=dep1,
            dep2=dep2,
            line_address=line_address,
            pc=pc,
            taken=taken,
            name=profile.name,
        )
