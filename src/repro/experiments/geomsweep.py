"""Geometry/banking sweep: the array organisation as a swept parameter.

Every other driver studies schemes and technologies at the paper's fixed
64KB / 4-way / 8-subarray L1.  This sweep turns the organisation itself
into the x-axis: cache size x associativity x banking x scheme x
variation severity, each cell evaluated on the same Monte-Carlo chip
batches and workloads through ``evaluate_many`` and the batched/timeline
kernels (``fast_path_coverage`` must stay 1.0 -- the CI smoke job gates
on it).

Per configuration the sweep reports:

* the array-limited clock (the calibrated CACTI-anchored timing model's
  access-time factor applied to the node frequency),
* mean normalized performance and the frequency yield (fraction of chips
  within 95% of ideal performance at that organisation),
* a normalized energy-delay product folding in the geometry's read
  energy and access-time factors,
* chip leakage (banking periphery included) in milliwatts.

The report distils the grid into three frontier tables -- frequency
yield, energy-delay, and leakage vs clock -- while the CSV export
carries every swept cell.

Chips are sampled once per (size, banking, severity) at the base 4-way
organisation and re-interpreted per associativity by the architecture
layer (the Figure 11 pattern), so the associativity axis is free of
sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import units
from repro.array import cactimodel
from repro.array.geometry import CacheGeometry
from repro.engine.parallel import EvalTask
from repro.engine.registry import CsvExport, Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_table

SIZES_KB: Tuple[int, ...] = (16, 32, 64, 128, 256)
WAYS_SWEEP: Tuple[int, ...] = (1, 2, 4, 8)
BANKS_SWEEP: Tuple[int, ...] = (2, 4, 8)
SCHEMES: Tuple[str, ...] = (
    "no-refresh/LRU",
    "partial-refresh/DSP",
    "full-refresh/LRU",
)
"""One scheme that tolerates expiry by losing data, the paper's headline
placement scheme, and one that spends full refresh bandwidth -- the trio
separates retention-limited organisations from refresh-limited ones."""
SEVERITIES: Tuple[str, ...] = ("none", "typical", "severe")
BASE_WAYS: int = 4
"""Associativity the chip batches are sampled at; other associativities
re-interpret the same physical lines (Figure 11 pattern)."""
YIELD_PERFORMANCE_FLOOR: float = 0.95
"""A chip "yields" at an organisation when its normalized performance is
within 5% of the ideal design -- the frequency-yield criterion."""


@dataclass(frozen=True)
class GeomRow:
    """One (size, ways, banks, scheme, severity) aggregate over chips."""

    size_kb: int
    ways: int
    banks: int
    scheme: str
    severity: str
    chips: int
    latency_cycles: int
    clock_ghz: float
    """Array-limited clock: node frequency over the geometry's calibrated
    access-time factor."""
    mean_performance: float
    frequency_yield: float
    """Fraction of live chips within ``YIELD_PERFORMANCE_FLOOR`` of the
    ideal design's performance."""
    mean_power: float
    energy_delay: float
    """Normalized EDP: (power x read-energy factor) x access-time factor
    / performance^2; 64KB/4-way factors are exactly 1.0."""
    leakage_mw: float
    fast_path_coverage: float
    """Fraction of (chip, benchmark) replays served by the batched
    flattened/timeline kernels (1.0 = no event-controller fallbacks)."""


@dataclass(frozen=True)
class GeomSweepResult:
    """All aggregates of one geometry/banking sweep."""

    rows: Tuple[GeomRow, ...]

    @property
    def n_configurations(self) -> int:
        """Swept (size, ways, banks, scheme, severity) cells."""
        return len(self.rows)

    @property
    def fast_path_coverage(self) -> float:
        """Worst-case kernel coverage across every swept cell."""
        if not self.rows:
            return 0.0
        return min(row.fast_path_coverage for row in self.rows)

    def rows_for(
        self,
        severity: Optional[str] = None,
        scheme: Optional[str] = None,
    ) -> Tuple[GeomRow, ...]:
        """The rows of one severity and/or scheme, in sweep order."""
        return tuple(
            r for r in self.rows
            if (severity is None or r.severity == severity)
            and (scheme is None or r.scheme == scheme)
        )


def sweep_geometries(
    sizes_kb: Tuple[int, ...] = SIZES_KB,
    banks_sweep: Tuple[int, ...] = BANKS_SWEEP,
    ways_sweep: Tuple[int, ...] = WAYS_SWEEP,
) -> List[CacheGeometry]:
    """Every geometry the sweep grid evaluates (all associativities).

    Exposed so the property tests can assert the whole grid satisfies
    the ``CacheGeometry.__post_init__`` invariants by construction.
    """
    geometries: List[CacheGeometry] = []
    for size_kb in sizes_kb:
        for banks in banks_sweep:
            base = CacheGeometry.from_capacity(
                size_kb * 1024, BASE_WAYS, banks=banks
            )
            for ways in ways_sweep:
                geometries.append(
                    base if ways == BASE_WAYS else base.with_ways(ways)
                )
    return geometries


def run(
    context: Optional[ExperimentContext] = None,
    sizes_kb: Tuple[int, ...] = SIZES_KB,
    banks_sweep: Tuple[int, ...] = BANKS_SWEEP,
    ways_sweep: Tuple[int, ...] = WAYS_SWEEP,
    schemes: Tuple[str, ...] = SCHEMES,
    severities: Tuple[str, ...] = SEVERITIES,
) -> GeomSweepResult:
    """Sweep size x associativity x banking x scheme x severity."""
    context = context or ExperimentContext()
    rows: List[GeomRow] = []
    for size_kb in sizes_kb:
        for banks in banks_sweep:
            base = CacheGeometry.from_capacity(
                size_kb * 1024, BASE_WAYS, banks=banks
            )
            geo_context = (
                context
                if context.geometry == base
                else context.with_overrides(geometry=base)
            )
            for severity in severities:
                chips = geo_context.chips_3t1d(severity)
                leakage = float(np.mean(
                    [chip.leakage_power for chip in chips]
                ))
                # Associativity innermost: the per-ways evaluators cycle
                # within one physical point and stay inside the worker
                # LRU; the chips re-interpret per ways inside the
                # architecture layer, exactly like Figure 11.
                for ways in ways_sweep:
                    spec = geo_context.evaluator_spec(ways=ways)
                    geometry = spec.geometry
                    tasks = [
                        EvalTask(evaluator=spec, chip=chip, schemes=schemes)
                        for chip in chips
                    ]
                    outcomes = geo_context.runner.evaluate(
                        tasks,
                        observer=geo_context.observer,
                        label=(
                            f"geomsweep: {size_kb}KB/{ways}w/"
                            f"b{banks}/{severity}"
                        ),
                    )
                    time_factor = cactimodel.access_time_factor(geometry)
                    energy_factor = cactimodel.read_energy_factor(geometry)
                    clock_ghz = units.to_ghz(
                        context.node.frequency / time_factor
                    )
                    for index, scheme in enumerate(schemes):
                        per_chip = [
                            chip_outcomes[index]
                            for chip_outcomes in outcomes
                        ]
                        live = [o for o in per_chip if not o.discarded]
                        paths = [
                            path
                            for outcome in live
                            for _, path in outcome.kernel_paths
                        ]
                        coverage = (
                            sum(1 for p in paths if p != "event")
                            / len(paths)
                            if paths
                            else 1.0
                        )
                        perfs = [o.normalized_performance for o in live]
                        perf = float(np.mean(perfs)) if live else 0.0
                        power = float(np.mean(
                            [o.dynamic_power_normalized for o in live]
                        )) if live else 0.0
                        rows.append(GeomRow(
                            size_kb=size_kb,
                            ways=ways,
                            banks=banks,
                            scheme=scheme,
                            severity=severity,
                            chips=len(live),
                            latency_cycles=geometry.access_latency_cycles,
                            clock_ghz=clock_ghz,
                            mean_performance=perf,
                            frequency_yield=float(np.mean([
                                p >= YIELD_PERFORMANCE_FLOOR for p in perfs
                            ])) if perfs else 0.0,
                            mean_power=power,
                            energy_delay=(
                                power * energy_factor * time_factor
                                / perf ** 2
                                if perf > 0 else 0.0
                            ),
                            leakage_mw=units.to_mw(leakage),
                            fast_path_coverage=coverage,
                        ))
    return GeomSweepResult(rows=tuple(rows))


def _frequency_yield_table(result: GeomSweepResult) -> str:
    """Clock and per-associativity yield per (size, banks), severe."""
    rows_by_point = {}
    for row in result.rows_for("severe", "partial-refresh/DSP"):
        rows_by_point.setdefault((row.size_kb, row.banks), {})[row.ways] = row
    ways_seen = sorted({
        w for by_ways in rows_by_point.values() for w in by_ways
    })
    headers = ["size", "banks", "clock"] + [
        f"yield@{w}w" for w in ways_seen
    ]
    table = []
    for (size_kb, banks), by_ways in sorted(rows_by_point.items()):
        any_row = next(iter(by_ways.values()))
        table.append(
            [f"{size_kb}KB", str(banks), f"{any_row.clock_ghz:.2f}GHz"]
            + [
                f"{by_ways[w].frequency_yield:.2f}" if w in by_ways else "-"
                for w in ways_seen
            ]
        )
    return format_table(
        headers, table,
        title="Frequency yield vs organisation "
        "(severe variation, partial-refresh/DSP)",
    )


def _energy_delay_table(result: GeomSweepResult) -> str:
    """The lowest-EDP organisation per size, typical variation."""
    best = {}
    for row in result.rows_for("typical"):
        if row.mean_performance <= 0:
            continue
        current = best.get(row.size_kb)
        if current is None or row.energy_delay < current.energy_delay:
            best[row.size_kb] = row
    headers = ["size", "ways", "banks", "scheme", "EDP", "perf", "clock"]
    table = [
        [
            f"{size_kb}KB", str(row.ways), str(row.banks), row.scheme,
            f"{row.energy_delay:.2f}", f"{row.mean_performance:.3f}",
            f"{row.clock_ghz:.2f}GHz",
        ]
        for size_kb, row in sorted(best.items())
    ]
    return format_table(
        headers, table,
        title="Energy-delay frontier: lowest-EDP organisation per size "
        "(typical variation)",
    )


def _leakage_table(result: GeomSweepResult) -> str:
    """Leakage vs clock per (size, banks) -- the banking trade-off."""
    points = {}
    for row in result.rows_for("typical", "partial-refresh/DSP"):
        if row.ways == BASE_WAYS:
            points[(row.size_kb, row.banks)] = row
    headers = ["size", "banks", "leakage", "clock", "latency"]
    table = [
        [
            f"{size_kb}KB", str(banks), f"{row.leakage_mw:.2f}mW",
            f"{row.clock_ghz:.2f}GHz", f"{row.latency_cycles}cyc",
        ]
        for (size_kb, banks), row in sorted(points.items())
    ]
    return format_table(
        headers, table,
        title="Leakage frontier: banking vs leakage and clock "
        f"(typical variation, {BASE_WAYS}-way)",
    )


def report(result: GeomSweepResult) -> str:
    """Frontier tables distilled from the full sweep grid."""
    parts = [
        _frequency_yield_table(result),
        "",
        _energy_delay_table(result),
        "",
        _leakage_table(result),
        "",
        f"configurations: {result.n_configurations}",
        f"fast_path_coverage: {result.fast_path_coverage:.3f}",
    ]
    return "\n".join(parts)


def csv_rows(result: GeomSweepResult) -> List[CsvExport]:
    """The full sweep grid, one row per swept cell."""
    headers = [
        "size_kb", "ways", "banks", "scheme", "severity", "chips",
        "latency_cycles", "clock_ghz", "mean_performance",
        "frequency_yield", "mean_power", "energy_delay", "leakage_mw",
        "fast_path_coverage",
    ]
    rows = [
        [
            row.size_kb, row.ways, row.banks, row.scheme, row.severity,
            row.chips, row.latency_cycles, row.clock_ghz,
            row.mean_performance, row.frequency_yield, row.mean_power,
            row.energy_delay, row.leakage_mw, row.fast_path_coverage,
        ]
        for row in result.rows
    ]
    return [CsvExport("geomsweep.csv", headers, rows)]


EXPERIMENT = register_experiment(Experiment(
    name="geomsweep",
    run=run,
    report=report,
    csv_rows=csv_rows,
    module=__name__,
    # The 540-cell grid dwarfs every other driver; frontier means stay
    # stable on a quarter of the chip batch.
    default_context_overrides=lambda context: {
        "n_chips": max(1, context.n_chips // 4)
    },
))


def main(argv=None) -> None:
    """Regenerate and print the geometry sweep (shared CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
