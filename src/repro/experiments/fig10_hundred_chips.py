"""Figure 10: performance and power of 100 chips, three headline schemes.

Severe variation.  Chips are sorted by descending no-refresh/LRU
performance, as in the paper.  Expected shape: every chip stays
functional (vs. ~80% discarded under the global scheme); RSP-FIFO and
partial-refresh/DSP hold within ~3% of ideal with <10-20% power overhead;
no-refresh/LRU degrades to ~10%+ loss with up to ~60% power overhead on
the worst chips (extra L2 traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.schemes import HEADLINE_SCHEMES, RetentionScheme
from repro.engine.parallel import EvalTask
from repro.engine.registry import CsvExport, Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class Fig10Result:
    """Per-chip series for the three headline schemes."""

    chip_ids: List[int]
    """Chip ids sorted by descending no-refresh/LRU performance."""
    performance: Dict[str, np.ndarray]
    power: Dict[str, np.ndarray]

    def worst_performance(self, scheme: str) -> float:
        """Worst chip's normalized performance under ``scheme``."""
        return float(np.min(self.performance[scheme]))

    def worst_power(self, scheme: str) -> float:
        """Worst chip's normalized dynamic power under ``scheme``."""
        return float(np.max(self.power[scheme]))


def run(
    context: Optional[ExperimentContext] = None,
    schemes: Tuple[RetentionScheme, ...] = HEADLINE_SCHEMES,
) -> Fig10Result:
    """Regenerate Figure 10 at the context's Monte-Carlo scale."""
    context = context or ExperimentContext()
    chips = context.chips_3t1d("severe")
    spec = context.evaluator_spec()
    # One task per chip carrying all schemes: the whole batch goes through
    # evaluate_many, so each worker amortizes suite setup across schemes.
    scheme_names = tuple(scheme.name for scheme in schemes)
    tasks = [
        EvalTask(evaluator=spec, chip=chip, schemes=scheme_names)
        for chip in chips
    ]
    outcomes = context.runner.evaluate(
        tasks, observer=context.observer, label="fig10: chips x schemes"
    )
    perf: Dict[str, List[float]] = {s.name: [] for s in schemes}
    power: Dict[str, List[float]] = {s.name: [] for s in schemes}
    for chip_outcomes in outcomes:
        for outcome in chip_outcomes:
            perf[outcome.scheme].append(outcome.normalized_performance)
            power[outcome.scheme].append(outcome.dynamic_power_normalized)
    sort_key = schemes[0].name
    order = np.argsort(-np.asarray(perf[sort_key]))
    return Fig10Result(
        chip_ids=[chips[i].chip_id for i in order],
        performance={
            name: np.asarray(values)[order] for name, values in perf.items()
        },
        power={
            name: np.asarray(values)[order] for name, values in power.items()
        },
    )


def report(result: Fig10Result, stride: int = 5) -> str:
    """Sorted per-chip series (sub-sampled for readability)."""
    names = list(result.performance)
    headers = ["chip#"] + [f"{n} perf" for n in names] + [
        f"{n} pwr" for n in names
    ]
    rows = []
    indices = list(range(0, len(result.chip_ids), stride))
    if indices and indices[-1] != len(result.chip_ids) - 1:
        indices.append(len(result.chip_ids) - 1)
    for i in indices:
        row = [str(i + 1)]
        row += [f"{result.performance[n][i]:.3f}" for n in names]
        row += [f"{result.power[n][i]:.2f}" for n in names]
        rows.append(row)
    summary = "\n".join(
        f"{name}: worst perf {result.worst_performance(name):.3f}, "
        f"worst power {result.worst_power(name):.2f}X"
        for name in names
    )
    return (
        format_table(
            headers, rows,
            title="Figure 10: 100-chip performance and dynamic power "
            "(sorted by no-refresh/LRU performance)",
        )
        + "\n\n"
        + summary
    )


def csv_rows(result: Fig10Result) -> List[CsvExport]:
    """Machine-readable per-chip series (both panels)."""
    names = list(result.performance)
    headers = ["chip_rank"] + [f"{n} perf" for n in names] + [
        f"{n} power" for n in names
    ]
    rows = [
        [rank + 1]
        + [float(result.performance[n][rank]) for n in names]
        + [float(result.power[n][rank]) for n in names]
        for rank in range(len(result.chip_ids))
    ]
    return [CsvExport("fig10_hundred_chips.csv", headers, rows)]


EXPERIMENT = register_experiment(Experiment(
    name="fig10_hundred_chips",
    run=run,
    report=report,
    csv_rows=csv_rows,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print Figure 10 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
