"""Plain-text table and series formatting for the experiment drivers.

The original figures are plots; the reproduction prints the underlying
rows/series in fixed-width tables so results can be diffed and eyeballed
without a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table."""
    rows = [[_cell(value) for value in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_histogram(
    bin_labels: Sequence[str],
    probabilities: Sequence[float],
    title: str = "",
    bar_width: int = 40,
) -> str:
    """Render a probability histogram as text bars."""
    if len(bin_labels) != len(probabilities):
        raise ConfigurationError("labels and probabilities must align")
    peak = max(probabilities) if len(probabilities) else 0.0
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, prob in zip(bin_labels, probabilities):
        bar = "#" * (int(round(prob / peak * bar_width)) if peak > 0 else 0)
        lines.append(f"{label:>12s} {prob:6.1%} {bar}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def write_csv(
    path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Write experiment rows as CSV for downstream plotting tools.

    A thin wrapper over :mod:`csv` that validates row widths the same way
    :func:`format_table` does, so the text report and the CSV can never
    disagree about shape.
    """
    import csv

    rows = [list(row) for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        writer.writerows(rows)
