"""Figure 4: 3T1D access time vs. time elapsed since the write.

Reproduces the four curves: the nominal cell (retention ~5.8 us at 32nm),
a weak corner (shorter retention, ~4 us), a strong corner (longer
retention), and the flat 6T access-time line the retention definition
compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro import units
from repro.technology.node import NODE_32NM, TechnologyNode
from repro.variation.parameters import VariationParams
from repro.cells.retention import AccessTimeCurve, RetentionModel
from repro.engine.registry import Experiment, register_experiment
from repro.experiments.reporting import format_table

CORNER_SIGMA: float = 2.5
"""Device corner (in sigmas of typical variation) used for the weak and
strong curves, matching the paper's 'weaker/stronger-than-designed'
illustration."""


@dataclass(frozen=True)
class Fig04Result:
    """Access-time curves and retention times per corner."""

    node: TechnologyNode
    elapsed_us: np.ndarray
    curves: Dict[str, np.ndarray]
    """Access time normalised to the 6T access time, per corner."""
    retention_us: Dict[str, float]
    sram_access_time_ps: float


def _corner_curve(
    model: RetentionModel, sigma: float, direction: float
) -> AccessTimeCurve:
    """A corner curve shifted ``direction`` x ``sigma`` from nominal.

    The weak corner (direction=+1) has a leakier T1 (lower threshold,
    faster decay) and a weaker read stack (higher threshold); the strong
    corner is the mirror image.
    """
    return AccessTimeCurve(
        model=model,
        delta_vth_t1=-direction * sigma,
        delta_vth_t2=+direction * sigma,
    )


def run(
    node: TechnologyNode = NODE_32NM,
    max_elapsed_us: float = 8.0,
    n_points: int = 33,
) -> Fig04Result:
    """Evaluate the Figure 4 curves."""
    model = RetentionModel.for_node(node)
    sigma = CORNER_SIGMA * VariationParams.typical().sigma_vth(node)
    elapsed = np.linspace(0.0, units.us(max_elapsed_us), n_points)
    corners = {
        "nominal": AccessTimeCurve(model=model),
        "weak": _corner_curve(model, sigma, +1.0),
        "strong": _corner_curve(model, sigma, -1.0),
    }
    sram = corners["nominal"].sram_access_time
    curves = {}
    retention = {}
    for name, curve in corners.items():
        access = np.asarray(curve.access_time(elapsed))
        curves[name] = access / sram
        retention[name] = units.to_us(curve.retention_time)
    curves["6T SRAM"] = np.ones_like(elapsed)
    return Fig04Result(
        node=node,
        elapsed_us=units.to_us(elapsed),
        curves=curves,
        retention_us=retention,
        sram_access_time_ps=units.to_ps(sram),
    )


def report(result: Fig04Result) -> str:
    """Retention times per corner plus curve samples."""
    headers = ["corner", "retention (us)"]
    rows = [[name, f"{value:.2f}"] for name, value in result.retention_us.items()]
    table = format_table(
        headers, rows,
        title=(
            f"Figure 4 ({result.node.name}): retention = time until access "
            f"exceeds the 6T access time ({result.sram_access_time_ps:.0f} ps)"
        ),
    )
    samples = ["", "access time / 6T access time:"]
    picks = range(0, len(result.elapsed_us), max(1, len(result.elapsed_us) // 8))
    for name in ("nominal", "weak", "strong"):
        curve = result.curves[name]
        points = ", ".join(
            f"{result.elapsed_us[i]:.1f}us={curve[i]:.2f}"
            if np.isfinite(curve[i])
            else f"{result.elapsed_us[i]:.1f}us=inf"
            for i in picks
        )
        samples.append(f"  {name:8s} {points}")
    return table + "\n" + "\n".join(samples)


EXPERIMENT = register_experiment(Experiment(
    name="fig04_retention_curve",
    # Pure circuit model -- only the node matters, not the Monte-Carlo
    # scale, so the context collapses to its technology node.
    run=lambda context: run(node=context.node),
    report=report,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print Figure 4 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
