"""Figure 11: scheme performance vs. cache associativity.

Good/median/bad chips under severe variation, re-organised as
direct-mapped, 2-way, 4-way, and 8-way caches (same 64KB capacity and the
same physical lines).  Expected shape: for the direct-mapped cache the
placement policies cannot act (only refresh matters) so the schemes
converge; at >= 2 ways the retention-sensitive schemes pull ahead, most
visibly on the bad chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.schemes import HEADLINE_SCHEMES, RetentionScheme
from repro.core.yieldmodel import YieldModel
from repro.engine.parallel import EvalTask
from repro.engine.registry import Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_table

WAYS_SWEEP: Tuple[int, ...] = (1, 2, 4, 8)
CHIP_LABELS: Tuple[str, str, str] = ("good", "median", "bad")


@dataclass(frozen=True)
class Fig11Result:
    """Normalized performance per (chip, scheme, associativity)."""

    performance: Dict[str, Dict[str, Dict[int, float]]]
    """chip label -> scheme name -> ways -> normalized performance."""

    def spread_at(self, chip_label: str, ways: int) -> float:
        """Best-minus-worst scheme performance at one associativity."""
        values = [
            by_ways[ways]
            for by_ways in self.performance[chip_label].values()
        ]
        return max(values) - min(values)


def run(
    context: Optional[ExperimentContext] = None,
    schemes: Tuple[RetentionScheme, ...] = HEADLINE_SCHEMES,
    ways_sweep: Tuple[int, ...] = WAYS_SWEEP,
) -> Fig11Result:
    """Regenerate Figure 11 at the context's Monte-Carlo scale."""
    context = context or ExperimentContext()
    good, median, bad = YieldModel(
        context.chips_3t1d("severe")
    ).pick_good_median_bad()
    chips = {"good": good, "median": median, "bad": bad}
    performance: Dict[str, Dict[str, Dict[int, float]]] = {
        label: {scheme.name: {} for scheme in schemes} for label in chips
    }
    # One task per (ways, chip) with all schemes batched; each worker's
    # evaluate_many call then shares the per-associativity suite.
    scheme_names = tuple(scheme.name for scheme in schemes)
    pairs = [(ways, label) for ways in ways_sweep for label in chips]
    tasks = [
        EvalTask(
            evaluator=context.evaluator_spec(ways=ways),
            chip=chips[label],
            schemes=scheme_names,
        )
        for ways, label in pairs
    ]
    outcomes = context.runner.evaluate(
        tasks, observer=context.observer, label="fig11: associativity sweep"
    )
    for (ways, label), chip_outcomes in zip(pairs, outcomes):
        for outcome in chip_outcomes:
            performance[label][outcome.scheme][ways] = (
                outcome.normalized_performance
            )
    return Fig11Result(performance=performance)


def report(result: Fig11Result) -> str:
    """One table per chip, schemes x associativity."""
    parts = []
    for label, by_scheme in result.performance.items():
        ways = sorted(next(iter(by_scheme.values())))
        headers = ["scheme"] + [f"{w}-way" for w in ways]
        rows = [
            [scheme] + [f"{by_ways[w]:.3f}" for w in ways]
            for scheme, by_ways in by_scheme.items()
        ]
        parts.append(
            format_table(
                headers, rows,
                title=f"Figure 11: {label} chip, performance vs. associativity",
            )
        )
        parts.append("")
    return "\n".join(parts)


EXPERIMENT = register_experiment(Experiment(
    name="fig11_associativity",
    run=run,
    report=report,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print Figure 11 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
