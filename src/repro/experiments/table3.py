"""Table 3: per-node summary of the three cache designs.

For each technology node (65/45/32nm) the paper tabulates the ideal
(no-variation) 6T design, the median 1X 6T chip under typical variation,
and the median 3T1D chip under typical variation: array access time (or
retention), harmonic-mean BIPS, mean and full-rate dynamic power, and
leakage power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import units
from repro.technology import calibration
from repro.technology.node import ALL_NODES, TechnologyNode
from repro.variation.parameters import VariationParams
from repro.variation.statistics import harmonic_mean, median_chip_index
from repro.array.chip import ChipSampler
from repro.array.power import CachePowerModel
from repro.core.architecture import Cache3T1DArchitecture, IdealCacheArchitecture
from repro.core.schemes import SCHEME_GLOBAL
from repro.core.evaluation import Evaluator
from repro.errors import ChipDiscardedError
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_table

NODE_ORDER = ("65nm", "45nm", "32nm")


@dataclass(frozen=True)
class DesignRow:
    """One (node, design) row of Table 3."""

    node: str
    design: str
    access_time_ps: Optional[float]
    retention_ns: Optional[float]
    bips: float
    mean_dynamic_power_mw: float
    full_dynamic_power_mw: float
    leakage_power_mw: float


@dataclass(frozen=True)
class Table3Result:
    """All rows, grouped per node."""

    rows: List[DesignRow]

    def row(self, node: str, design: str) -> DesignRow:
        """Look up one row."""
        for row in self.rows:
            if row.node == node and row.design == design:
                return row
        raise KeyError((node, design))


def _evaluate_node(
    node: TechnologyNode, context: ExperimentContext
) -> List[DesignRow]:
    evaluator = Evaluator(
        node, n_references=context.n_references, seed=context.seed
    )
    profiles_ipc = [
        evaluator.evaluate_benchmark(
            IdealCacheArchitecture(node), name
        ).ipc
        for name in evaluator.benchmarks
    ]
    ideal_bips = harmonic_mean(profiles_ipc) * node.frequency / 1e9

    power_6t = CachePowerModel(node, "6T")
    power_3t1d = CachePowerModel(node, "3T1D")
    rows = [
        DesignRow(
            node=node.name,
            design="ideal 6T",
            access_time_ps=units.to_ps(calibration.nominal_access_time(node)),
            retention_ns=None,
            bips=ideal_bips,
            mean_dynamic_power_mw=units.to_mw(
                calibration.MEAN_DYNAMIC_POWER_6T[node.name]
            ),
            full_dynamic_power_mw=units.to_mw(power_6t.full_dynamic_power),
            leakage_power_mw=units.to_mw(
                calibration.LEAKAGE_POWER_6T[node.name]
            ),
        )
    ]

    # --- median 1X 6T chip under typical variation ---
    sampler = ChipSampler(node, VariationParams.typical(), seed=context.seed)
    sram_chips = sampler.sample_sram_chips(context.n_chips, size_factor=1.0)
    frequencies = [c.normalized_frequency for c in sram_chips]
    median_sram = sram_chips[median_chip_index(frequencies)]
    norm = median_sram.normalized_frequency
    # Leakage and speed are selected on different axes; report the median
    # of the leakage distribution rather than the speed-median chip's.
    sram_leakage_mw = float(
        np.median([c.leakage_power for c in sram_chips])
    ) * 1e3
    rows.append(
        DesignRow(
            node=node.name,
            design="1X 6T median",
            access_time_ps=units.to_ps(median_sram.worst_access_time),
            retention_ns=None,
            bips=ideal_bips * norm,
            mean_dynamic_power_mw=units.to_mw(
                calibration.MEAN_DYNAMIC_POWER_6T[node.name]
            )
            * norm,
            full_dynamic_power_mw=units.to_mw(power_6t.full_dynamic_power)
            * norm,
            leakage_power_mw=sram_leakage_mw,
        )
    )

    # --- median 3T1D chip under typical variation (global scheme) ---
    sampler = ChipSampler(node, VariationParams.typical(), seed=context.seed + 5)
    chips = sampler.sample_3t1d_chips(context.n_chips)
    retentions = [c.chip_retention_time for c in chips]
    median_chip = chips[median_chip_index(retentions)]
    dram_leakage_mw = float(
        np.median([c.leakage_power for c in chips])
    ) * 1e3
    try:
        evaluation = evaluator.evaluate(
            Cache3T1DArchitecture(median_chip, SCHEME_GLOBAL)
        )
        perf = evaluation.normalized_performance
        mean_power_mw = np.mean(
            [r.dynamic_power_watts for r in evaluation.results.values()]
        ) * 1e3
    except ChipDiscardedError:
        perf = 0.0
        mean_power_mw = 0.0
    rows.append(
        DesignRow(
            node=node.name,
            design="3T1D median",
            access_time_ps=None,
            retention_ns=median_chip.chip_retention_time * 1e9,
            bips=ideal_bips * perf,
            mean_dynamic_power_mw=float(mean_power_mw),
            full_dynamic_power_mw=units.to_mw(power_3t1d.full_dynamic_power),
            leakage_power_mw=dram_leakage_mw,
        )
    )
    return rows


def run(context: Optional[ExperimentContext] = None) -> Table3Result:
    """Regenerate Table 3 for all three nodes."""
    context = context or ExperimentContext(n_chips=30)
    rows: List[DesignRow] = []
    for name in NODE_ORDER:
        rows.extend(_evaluate_node(ALL_NODES[name], context))
    return Table3Result(rows=rows)


def report(result: Table3Result) -> str:
    """The paper-style table."""
    headers = [
        "node", "design", "access(ps)", "retention(ns)", "BIPS",
        "mean dyn (mW)", "full dyn (mW)", "leakage (mW)",
    ]
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.node,
                row.design,
                f"{row.access_time_ps:.0f}" if row.access_time_ps else "-",
                f"{row.retention_ns:.0f}" if row.retention_ns else "-",
                f"{row.bips:.2f}",
                f"{row.mean_dynamic_power_mw:.2f}",
                f"{row.full_dynamic_power_mw:.2f}",
                f"{row.leakage_power_mw:.1f}",
            ]
        )
    return format_table(
        headers, rows, title="Table 3: cache designs across technology nodes"
    )


def main() -> None:
    """Regenerate and print Table 3."""
    print(report(run()))


if __name__ == "__main__":
    main()
