"""Table 3: per-node summary of the three cache designs.

For each technology node (65/45/32nm) the paper tabulates the ideal
(no-variation) 6T design, the median 1X 6T chip under typical variation,
and the median 3T1D chip under typical variation: array access time (or
retention), harmonic-mean BIPS, mean and full-rate dynamic power, and
leakage power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import units
from repro.technology import calibration
from repro.technology.node import ALL_NODES, TechnologyNode
from repro.variation.parameters import VariationParams
from repro.variation.statistics import harmonic_mean, median_chip_index
from repro.array.chip import ChipSampler, DRAM3T1DChipSample, SRAMChipSample
from repro.array.power import CachePowerModel
from repro.core.schemes import SCHEME_GLOBAL
from repro.engine.parallel import EvalTask, EvaluatorSpec, SchemeOutcome
from repro.engine.registry import Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_table

NODE_ORDER = ("65nm", "45nm", "32nm")


@dataclass(frozen=True)
class DesignRow:
    """One (node, design) row of Table 3."""

    node: str
    design: str
    access_time_ps: Optional[float]
    retention_ns: Optional[float]
    bips: float
    mean_dynamic_power_mw: float
    full_dynamic_power_mw: float
    leakage_power_mw: float


@dataclass(frozen=True)
class Table3Result:
    """All rows, grouped per node."""

    rows: List[DesignRow]

    def row(self, node: str, design: str) -> DesignRow:
        """Look up one row."""
        for row in self.rows:
            if row.node == node and row.design == design:
                return row
        raise KeyError((node, design))


def _node_rows(
    node: TechnologyNode,
    sram_chips: List[SRAMChipSample],
    dram_chips: List[DRAM3T1DChipSample],
    ideal_ipcs: List[float],
    median_outcome: SchemeOutcome,
) -> List[DesignRow]:
    """Assemble the three Table 3 rows for one node from batch results."""
    ideal_bips = harmonic_mean(ideal_ipcs) * node.frequency / 1e9
    power_6t = CachePowerModel(node, "6T")
    power_3t1d = CachePowerModel(node, "3T1D")
    rows = [
        DesignRow(
            node=node.name,
            design="ideal 6T",
            access_time_ps=units.to_ps(calibration.nominal_access_time(node)),
            retention_ns=None,
            bips=ideal_bips,
            mean_dynamic_power_mw=units.to_mw(
                calibration.MEAN_DYNAMIC_POWER_6T[node.name]
            ),
            full_dynamic_power_mw=units.to_mw(power_6t.full_dynamic_power),
            leakage_power_mw=units.to_mw(
                calibration.LEAKAGE_POWER_6T[node.name]
            ),
        )
    ]

    # --- median 1X 6T chip under typical variation ---
    frequencies = [c.normalized_frequency for c in sram_chips]
    median_sram = sram_chips[median_chip_index(frequencies)]
    norm = median_sram.normalized_frequency
    # Leakage and speed are selected on different axes; report the median
    # of the leakage distribution rather than the speed-median chip's.
    sram_leakage_mw = units.to_mw(
        float(np.median([c.leakage_power for c in sram_chips]))
    )
    rows.append(
        DesignRow(
            node=node.name,
            design="1X 6T median",
            access_time_ps=units.to_ps(median_sram.worst_access_time),
            retention_ns=None,
            bips=ideal_bips * norm,
            mean_dynamic_power_mw=units.to_mw(
                calibration.MEAN_DYNAMIC_POWER_6T[node.name]
            )
            * norm,
            full_dynamic_power_mw=units.to_mw(power_6t.full_dynamic_power)
            * norm,
            leakage_power_mw=sram_leakage_mw,
        )
    )

    # --- median 3T1D chip under typical variation (global scheme) ---
    retentions = [c.chip_retention_time for c in dram_chips]
    median_chip = dram_chips[median_chip_index(retentions)]
    dram_leakage_mw = units.to_mw(
        float(np.median([c.leakage_power for c in dram_chips]))
    )
    if median_outcome.discarded:
        perf = 0.0
        mean_power_mw = 0.0
    else:
        perf = median_outcome.normalized_performance
        mean_power_mw = units.to_mw(median_outcome.mean_dynamic_power_watts)
    rows.append(
        DesignRow(
            node=node.name,
            design="3T1D median",
            access_time_ps=None,
            retention_ns=units.to_ns(median_chip.chip_retention_time),
            bips=ideal_bips * perf,
            mean_dynamic_power_mw=float(mean_power_mw),
            full_dynamic_power_mw=units.to_mw(power_3t1d.full_dynamic_power),
            leakage_power_mw=dram_leakage_mw,
        )
    )
    return rows


def run(context: Optional[ExperimentContext] = None) -> Table3Result:
    """Regenerate Table 3 for all three nodes.

    Chip batches for every node are reserved up front and realized in one
    parallel batch; the per-node evaluations (ideal IPC plus the median
    3T1D chip under the global scheme) form a second batch.
    """
    context = context or ExperimentContext(n_chips=30)
    nodes = [ALL_NODES[name] for name in NODE_ORDER]

    # Phase 1: every node's 6T and 3T1D chip batch, one parallel batch.
    build_tasks: List = []
    slices = {}
    for node in nodes:
        sram_sampler = ChipSampler(
            node, VariationParams.typical(), seed=context.seed
        )
        dram_sampler = ChipSampler(
            node, VariationParams.typical(), seed=context.seed + 5
        )
        start = len(build_tasks)
        build_tasks.extend(
            sram_sampler.reserve_build_tasks(
                context.n_chips, kind="sram", size_factor=1.0
            )
        )
        mid = len(build_tasks)
        build_tasks.extend(
            dram_sampler.reserve_build_tasks(context.n_chips, kind="3t1d")
        )
        slices[node.name] = (slice(start, mid), slice(mid, len(build_tasks)))
    chips = context.runner.build_chips(
        build_tasks, observer=context.observer, label="table3: chip batches"
    )

    # Phase 2: per-node ideal IPC + median-3T1D evaluation, one batch.
    specs = {
        node.name: EvaluatorSpec(
            node=node, n_references=context.n_references, seed=context.seed
        )
        for node in nodes
    }
    eval_tasks = []
    for node in nodes:
        _, dram_slice = slices[node.name]
        dram_chips = chips[dram_slice]
        retentions = [c.chip_retention_time for c in dram_chips]
        median_chip = dram_chips[median_chip_index(retentions)]
        eval_tasks.append(
            EvalTask(evaluator=specs[node.name], kind="ideal_ipc")
        )
        eval_tasks.append(
            EvalTask(
                evaluator=specs[node.name],
                chip=median_chip,
                schemes=(SCHEME_GLOBAL.name,),
            )
        )
    evaluations = context.runner.evaluate(
        eval_tasks,
        observer=context.observer,
        label="table3: per-node evaluation",
    )

    rows: List[DesignRow] = []
    for i, node in enumerate(nodes):
        ideal_ipcs = list(evaluations[2 * i])
        (median_outcome,) = evaluations[2 * i + 1]
        sram_slice, dram_slice = slices[node.name]
        rows.extend(
            _node_rows(
                node,
                chips[sram_slice],
                chips[dram_slice],
                ideal_ipcs,
                median_outcome,
            )
        )
    return Table3Result(rows=rows)


def report(result: Table3Result) -> str:
    """The paper-style table."""
    headers = [
        "node", "design", "access(ps)", "retention(ns)", "BIPS",
        "mean dyn (mW)", "full dyn (mW)", "leakage (mW)",
    ]
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.node,
                row.design,
                f"{row.access_time_ps:.0f}" if row.access_time_ps else "-",
                f"{row.retention_ns:.0f}" if row.retention_ns else "-",
                f"{row.bips:.2f}",
                f"{row.mean_dynamic_power_mw:.2f}",
                f"{row.full_dynamic_power_mw:.2f}",
                f"{row.leakage_power_mw:.1f}",
            ]
        )
    return format_table(
        headers, rows, title="Table 3: cache designs across technology nodes"
    )


EXPERIMENT = register_experiment(Experiment(
    name="table3",
    run=run,
    report=report,
    module=__name__,
    # Three nodes x two designs makes this the most expensive experiment;
    # half the chip batch still gives stable medians (never below 10).
    default_context_overrides=lambda context: {
        "n_chips": max(10, context.n_chips // 2)
    },
))


def main(argv=None) -> None:
    """Regenerate and print Table 3 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
