"""Shared command-line surface for every experiment entry point.

``run_all`` and each per-experiment ``__main__`` used to grow their own
flag sets; this module gives them one argparse *parent parser* so the
whole engine surface -- ``--chips/--refs/--seed/--workers/--cache-dir/
--no-cache/--metrics/--out`` plus the robustness layer's
``--resume/--checkpoint-dir/--task-timeout/--max-retries/
--inject-faults`` -- is spelled identically everywhere::

    python -m repro.experiments.run_all --workers 8 --resume --out results
    python -m repro.experiments.fig10_hundred_chips --workers 8 --resume \
        --out results

:func:`engine_config_from_args` and :func:`context_from_args` turn the
parsed namespace into the :class:`~repro.engine.config.EngineConfig` /
:class:`~repro.experiments.runner.ExperimentContext` pair, and
:func:`experiment_main` is the uniform driver behind every registered
experiment's ``main()``.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from typing import Optional, Sequence, Union

from repro.engine import trace as trace_mod
from repro.engine.cache import ResultCache, resolve_cache
from repro.engine.config import EngineConfig, LOCAL_BACKEND
from repro.engine.events import (
    EventStream,
    ExperimentEnded,
    ExperimentStarted,
    RunEnded,
    RunStarted,
    Subscriber,
)
from repro.engine.faults import FaultPlan
from repro.engine.observer import JSONMetricsObserver, NULL_OBSERVER
from repro.engine.registry import Experiment, get_experiment
from repro.errors import ConfigurationError
from repro.array.geometry import CacheGeometry
from repro.technology.backends import backend_names
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import write_csv


def engine_parent_parser() -> argparse.ArgumentParser:
    """The shared flags, as an argparse parent (``add_help=False``).

    Compose with ``argparse.ArgumentParser(parents=[...])`` and override
    defaults per entry point with ``parser.set_defaults(...)``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    scale = parent.add_argument_group("scale")
    scale.add_argument(
        "--chips", type=int, default=60,
        help="Monte-Carlo chips per scenario (paper scale: 100)",
    )
    scale.add_argument(
        "--refs", type=int, default=8000,
        help="trace references per benchmark",
    )
    scale.add_argument("--seed", type=int, default=2007)
    scale.add_argument(
        "--technology", type=str, default="3t1d",
        choices=backend_names(), metavar="BACKEND",
        help="technology backend to sample chips with "
        f"(one of: {', '.join(backend_names())}; default: 3t1d)",
    )
    scale.add_argument(
        "--geometry", type=str, default=None, metavar="SIZEKB:WAYS[:BANKS]",
        help="L1 organisation to study instead of the paper's 64KB "
        "4-way point, e.g. '128:2' or '256:8:16'; dependent fields "
        "derive via CacheGeometry.from_capacity",
    )
    engine = parent.add_argument_group("engine")
    engine.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for chip batches (1 = serial; results "
        "are bit-identical at any width)",
    )
    engine.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="output directory for reports and csv exports",
    )
    engine.add_argument(
        "--cache-dir", type=pathlib.Path, default=None,
        help="result-cache directory (default: OUT/.cache)",
    )
    engine.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything, ignoring the result cache",
    )
    engine.add_argument(
        "--metrics", type=pathlib.Path, default=None,
        help="timing/robustness metrics JSON path "
        "(default: OUT/metrics.json)",
    )
    engine.add_argument(
        "--backend", type=str, default=LOCAL_BACKEND, metavar="NAME",
        help="execution backend for chip batches: 'local' (in-process "
        "pool, the default) or 'subprocess-fleet' (persistent worker "
        "processes over a durable on-disk queue); results are "
        "bit-identical across backends",
    )
    engine.add_argument(
        "--fleet-size", type=int, default=None,
        help="worker processes in a subprocess fleet "
        "(default: --workers)",
    )
    engine.add_argument(
        "--queue-dir", type=pathlib.Path, default=None,
        help="durable task-queue directory for the subprocess-fleet "
        "backend; share it across runs for fleet-wide dedupe "
        "(default: CHECKPOINT_DIR/fleet-queue, else a private "
        "temporary directory)",
    )
    engine.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="PATH",
        help="profile the run and write a Chrome trace_event JSON "
        "(load in chrome://tracing or Perfetto); outputs stay "
        "bit-identical to an untraced run",
    )
    robustness = parent.add_argument_group("robustness")
    robustness.add_argument(
        "--checkpoint-dir", type=pathlib.Path, default=None,
        help="run-journal directory for chip-level checkpoints "
        "(default: OUT/.checkpoints)",
    )
    robustness.add_argument(
        "--resume", action="store_true",
        help="restore completed chips from an existing run journal "
        "instead of starting it fresh",
    )
    robustness.add_argument(
        "--task-timeout", type=float, default=None,
        help="seconds a pooled task may run before it is failed, "
        "retried, and its worker recycled",
    )
    robustness.add_argument(
        "--max-retries", type=int, default=2,
        help="failures a task may accumulate before quarantine",
    )
    robustness.add_argument(
        "--inject-faults", type=str, default=None, metavar="SPEC",
        help="seeded fault injection, e.g. 'seed=7,crash=0.2' "
        "(testing only; outputs stay bit-identical)",
    )
    return parent


def checkpoint_dir_from_args(
    args: argparse.Namespace,
) -> Optional[pathlib.Path]:
    """Where this invocation journals chip results, if anywhere."""
    if args.checkpoint_dir is not None:
        return args.checkpoint_dir
    if args.out is not None:
        return args.out / ".checkpoints"
    return None


def engine_config_from_args(args: argparse.Namespace) -> EngineConfig:
    """The :class:`EngineConfig` a parsed shared namespace describes."""
    checkpoint_dir = checkpoint_dir_from_args(args)
    if args.resume and checkpoint_dir is None:
        raise SystemExit(
            "--resume needs a journal: pass --checkpoint-dir or --out"
        )
    fault_plan = (
        FaultPlan.from_spec(args.inject_faults)
        if args.inject_faults else None
    )
    return EngineConfig(
        workers=args.workers,
        cache_dir=args.cache_dir,
        checkpoint_dir=checkpoint_dir,
        resume=args.resume,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        fault_plan=fault_plan,
        backend=getattr(args, "backend", LOCAL_BACKEND),
        fleet_size=getattr(args, "fleet_size", None),
        queue_dir=getattr(args, "queue_dir", None),
    )


def parse_geometry_spec(spec: Optional[str]) -> Optional[CacheGeometry]:
    """Parse a ``--geometry SIZEKB:WAYS[:BANKS]`` flag value.

    ``None`` (flag absent) stays ``None`` -- the paper's default
    geometry, with every historical cache key intact.
    """
    if spec is None:
        return None
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise SystemExit(
            f"--geometry expects SIZEKB:WAYS[:BANKS], got {spec!r}"
        )
    try:
        size_kb, ways = int(parts[0]), int(parts[1])
        banks = int(parts[2]) if len(parts) == 3 else None
    except ValueError:
        raise SystemExit(
            f"--geometry fields must be integers, got {spec!r}"
        ) from None
    try:
        return CacheGeometry.from_capacity(size_kb * 1024, ways, banks=banks)
    except ConfigurationError as exc:
        raise SystemExit(f"--geometry {spec!r}: {exc}") from None


def context_from_args(
    args: argparse.Namespace,
    observer: Subscriber = NULL_OBSERVER,
) -> ExperimentContext:
    """The experiment context a parsed shared namespace describes."""
    return ExperimentContext(
        n_chips=args.chips,
        n_references=args.refs,
        seed=args.seed,
        technology=getattr(args, "technology", "3t1d"),
        geometry=parse_geometry_spec(getattr(args, "geometry", None)),
        engine=engine_config_from_args(args),
        observer=observer,
    )


def cache_from_args(args: argparse.Namespace) -> Optional[ResultCache]:
    """The result cache this invocation should use (shared policy)."""
    return resolve_cache(
        out_dir=args.out,
        cache_dir=args.cache_dir,
        enabled=not args.no_cache,
    )


def experiment_main(
    experiment: Union[Experiment, str],
    argv: Optional[Sequence[str]] = None,
) -> None:
    """Uniform CLI driver for one registered experiment.

    Parses the shared engine flags, runs the experiment through the same
    cached :meth:`~repro.engine.registry.Experiment.execute` path
    ``run_all`` uses, prints the paper-style report, and (with ``--out``)
    writes the text report and csv exports next to ``run_all``'s.
    """
    # Resolve by name so a module executed as ``__main__`` still uses
    # its canonical registration (and cache/source digests).
    name = experiment if isinstance(experiment, str) else experiment.name
    experiment = get_experiment(name)
    parser = argparse.ArgumentParser(
        description=f"Regenerate {name} (shared engine flags).",
        parents=[engine_parent_parser()],
    )
    args = parser.parse_args(argv)
    metrics_path = args.metrics
    if metrics_path is None and args.out is not None:
        metrics_path = args.out / f"{name}_metrics.json"
    tracer = trace_mod.Tracer() if args.trace is not None else None
    stream = EventStream()
    if tracer is not None:
        # Subscribed before the metrics observer so the run span is
        # closed by the time the per-phase table is written out.
        stream.subscribe(tracer)
    if metrics_path is not None:
        stream.subscribe(JSONMetricsObserver(metrics_path, tracer=tracer))
    context = context_from_args(args, observer=stream)
    cache = cache_from_args(args)
    with trace_mod.activate(tracer):
        stream.emit(RunStarted(1))
        stream.emit(ExperimentStarted(name))
        start = time.perf_counter()
        try:
            result, cached = experiment.execute(context, cache)
        finally:
            context.close()
        elapsed = time.perf_counter() - start
        stream.emit(ExperimentEnded(name, elapsed, cached))
        stream.emit(RunEnded(elapsed))
    if tracer is not None:
        trace_path = tracer.to_chrome(args.trace)
        print(f"trace written to {trace_path}")
    text = experiment.report(result)
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / f"{name}.txt").write_text(text + "\n")
        for export in experiment.csv_exports(result):
            write_csv(args.out / export.filename, export.headers, export.rows)


__all__ = [
    "cache_from_args",
    "checkpoint_dir_from_args",
    "context_from_args",
    "engine_config_from_args",
    "engine_parent_parser",
    "experiment_main",
    "parse_geometry_spec",
]
