"""Figure 7: cache leakage power distributions under typical variation.

(a) 1X 6T: more than half the chips leak over 1.5x the golden design,
    with a tail beyond 10x.
(b) 3T1D: only ~11% of chips leak more than the *golden 6T* design and
    the spread never reaches 4x -- the single weak leakage path plus the
    Vth-insensitive floor compress the distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.variation.statistics import normalized_histogram
from repro.engine.registry import Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_histogram

# The paper's (non-uniform) bin centers: 0.25X .. 12X of the golden 6T.
LEAKAGE_BIN_CENTERS = (0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0)
LEAKAGE_BIN_EDGES = (
    0.0, 0.375, 0.75, 1.25, 1.75, 2.5, 3.5, 5.0, 7.0, 9.0, 11.0, 13.0,
)
LEAKAGE_BIN_LABELS = [f"{c:g}X" for c in LEAKAGE_BIN_CENTERS]


@dataclass(frozen=True)
class Fig07Result:
    """Leakage distributions relative to the golden 6T design."""

    histogram_6t: np.ndarray
    histogram_3t1d: np.ndarray
    samples_6t: np.ndarray
    samples_3t1d: np.ndarray

    @property
    def fraction_6t_above_1_5x(self) -> float:
        """6T chips leaking above 1.5x golden (paper: >50%)."""
        return float(np.mean(self.samples_6t > 1.5))

    @property
    def fraction_3t1d_above_golden(self) -> float:
        """3T1D chips leaking above the golden 6T design (paper: ~11%)."""
        return float(np.mean(self.samples_3t1d > 1.0))

    @property
    def max_3t1d(self) -> float:
        """Worst 3T1D chip leakage (paper: never exceeds 4x)."""
        return float(np.max(self.samples_3t1d))


def run(context: Optional[ExperimentContext] = None) -> Fig07Result:
    """Regenerate Figure 7 at the context's Monte-Carlo scale."""
    context = context or ExperimentContext()
    samples_6t = np.array(
        [c.normalized_leakage for c in context.chips_sram("typical", 1.0)]
    )
    samples_3t1d = np.array(
        [c.normalized_leakage for c in context.chips_3t1d("typical")]
    )
    return Fig07Result(
        histogram_6t=normalized_histogram(samples_6t, LEAKAGE_BIN_EDGES),
        histogram_3t1d=normalized_histogram(samples_3t1d, LEAKAGE_BIN_EDGES),
        samples_6t=samples_6t,
        samples_3t1d=samples_3t1d,
    )


def report(result: Fig07Result) -> str:
    """Both leakage histograms plus the headline fractions."""
    parts = [
        format_histogram(
            LEAKAGE_BIN_LABELS,
            result.histogram_6t,
            title="Figure 7a: 1X 6T cache leakage (vs. golden 6T)",
        ),
        "",
        format_histogram(
            LEAKAGE_BIN_LABELS,
            result.histogram_3t1d,
            title="Figure 7b: 3T1D cache leakage (vs. golden 6T)",
        ),
        "",
        f"6T chips above 1.5X golden: {result.fraction_6t_above_1_5x:.0%} "
        "(paper: >50%)",
        f"3T1D chips above golden 6T: {result.fraction_3t1d_above_golden:.0%} "
        "(paper: ~11%)",
        f"worst 3T1D chip: {result.max_3t1d:.2f}X (paper: < 4X)",
    ]
    return "\n".join(parts)


EXPERIMENT = register_experiment(Experiment(
    name="fig07_leakage",
    run=run,
    report=report,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print Figure 7 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
