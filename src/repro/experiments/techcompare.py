"""Cross-technology comparison: 3T1D vs STT-RAM vs variation-aware DRAM.

The backend protocol (:mod:`repro.technology.backends`) lets the unchanged
refresh x placement machinery run on different cell technologies.  This
driver sweeps every registered backend across the variation severities on
identical workloads and reports, per (technology, severity, scheme):

* mean normalized performance and dynamic power,
* mean L1 miss rate and expiry-induced miss rate (the retention signal),
* a normalized energy-delay product (power_norm / perf_norm^2, scaled by
  the backend's design-induced latency factor where one exists),
* the kernel replay-path coverage (all cells must run on the batched
  flattened/timeline kernels -- fast_path_coverage 1.0).

Every (chip, scheme) cell goes through ``evaluate_many`` via the parallel
engine's :class:`~repro.engine.parallel.EvalTask` batching, exactly like
the paper-figure drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.parallel import EvalTask
from repro.engine.registry import CsvExport, Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_table

TECHNOLOGIES: Tuple[str, ...] = ("3t1d", "sttram", "vardram")
SEVERITIES: Tuple[str, ...] = ("typical", "severe")
SCHEMES: Tuple[str, ...] = ("no-refresh/LRU", "partial-refresh/DSP")
"""One scheme that tolerates expiry by losing data and one that spends
refresh bandwidth to keep it -- the pair separates retention-limited
technologies from refresh-limited ones."""


@dataclass(frozen=True)
class TechRow:
    """One (technology, severity, scheme) aggregate over the chip batch."""

    technology: str
    severity: str
    scheme: str
    chips: int
    mean_performance: float
    mean_power: float
    mean_miss_rate: float
    mean_expired_miss_rate: float
    energy_delay: float
    """Normalized energy-delay product: power_norm / perf_norm^2, times
    the technology's mean design-induced latency factor (1.0 unless the
    backend models per-line latency variation)."""
    mean_latency_factor: float
    fast_path_coverage: float
    """Fraction of (chip, benchmark) replays served by the batched
    flattened/timeline kernels (1.0 = no event-controller fallbacks)."""


@dataclass(frozen=True)
class TechCompareResult:
    """All aggregates of one cross-technology sweep."""

    rows: Tuple[TechRow, ...]

    @property
    def fast_path_coverage(self) -> float:
        """Worst-case kernel coverage across every swept cell."""
        if not self.rows:
            return 0.0
        return min(row.fast_path_coverage for row in self.rows)

    def rows_for(self, technology: str) -> Tuple[TechRow, ...]:
        """The rows of one technology, in sweep order."""
        return tuple(r for r in self.rows if r.technology == technology)


def run(context: Optional[ExperimentContext] = None) -> TechCompareResult:
    """Sweep every backend x severity x scheme on identical workloads."""
    context = context or ExperimentContext()
    rows: List[TechRow] = []
    for technology in TECHNOLOGIES:
        tech_context = (
            context
            if context.technology == technology
            else context.with_overrides(technology=technology)
        )
        spec = tech_context.evaluator_spec()
        for severity in SEVERITIES:
            chips = tech_context.chips_3t1d(severity)
            tasks = [
                EvalTask(evaluator=spec, chip=chip, schemes=SCHEMES)
                for chip in chips
            ]
            outcomes = tech_context.runner.evaluate(
                tasks,
                observer=tech_context.observer,
                label=f"techcompare: {technology}/{severity}",
            )
            latency = float(np.mean(
                [chip.mean_latency_factor for chip in chips]
            ))
            for index, scheme in enumerate(SCHEMES):
                per_chip = [
                    chip_outcomes[index] for chip_outcomes in outcomes
                ]
                live = [o for o in per_chip if not o.discarded]
                paths = [
                    path
                    for outcome in live
                    for _, path in outcome.kernel_paths
                ]
                coverage = (
                    sum(1 for p in paths if p != "event") / len(paths)
                    if paths
                    else 1.0
                )
                perf = float(np.mean(
                    [o.normalized_performance for o in live]
                )) if live else 0.0
                power = float(np.mean(
                    [o.dynamic_power_normalized for o in live]
                )) if live else 0.0
                rows.append(TechRow(
                    technology=technology,
                    severity=severity,
                    scheme=scheme,
                    chips=len(live),
                    mean_performance=perf,
                    mean_power=power,
                    mean_miss_rate=float(np.mean(
                        [o.mean_miss_rate for o in live]
                    )) if live else 0.0,
                    mean_expired_miss_rate=float(np.mean(
                        [o.mean_expired_miss_rate for o in live]
                    )) if live else 0.0,
                    energy_delay=(
                        power * latency / perf ** 2 if perf > 0 else 0.0
                    ),
                    mean_latency_factor=latency,
                    fast_path_coverage=coverage,
                ))
    return TechCompareResult(rows=tuple(rows))


def report(result: TechCompareResult) -> str:
    """Paper-style table of the cross-technology sweep."""
    headers = [
        "technology", "severity", "scheme", "perf", "power",
        "miss", "expired", "EDP", "latfac",
    ]
    rows = [
        [
            row.technology,
            row.severity,
            row.scheme,
            f"{row.mean_performance:.3f}",
            f"{row.mean_power:.2f}",
            f"{row.mean_miss_rate:.4f}",
            f"{row.mean_expired_miss_rate:.4f}",
            f"{row.energy_delay:.2f}",
            f"{row.mean_latency_factor:.2f}",
        ]
        for row in result.rows
    ]
    return (
        format_table(
            headers, rows,
            title="Technology comparison: mean over chips, normalized to "
            "the ideal 6T design",
        )
        + f"\n\nfast_path_coverage: {result.fast_path_coverage:.3f}"
    )


def csv_rows(result: TechCompareResult) -> List[CsvExport]:
    """Machine-readable sweep table."""
    headers = [
        "technology", "severity", "scheme", "chips",
        "mean_performance", "mean_power", "mean_miss_rate",
        "mean_expired_miss_rate", "energy_delay", "mean_latency_factor",
        "fast_path_coverage",
    ]
    rows = [
        [
            row.technology, row.severity, row.scheme, row.chips,
            row.mean_performance, row.mean_power, row.mean_miss_rate,
            row.mean_expired_miss_rate, row.energy_delay,
            row.mean_latency_factor, row.fast_path_coverage,
        ]
        for row in result.rows
    ]
    return [CsvExport("techcompare.csv", headers, rows)]


EXPERIMENT = register_experiment(Experiment(
    name="techcompare",
    run=run,
    report=report,
    csv_rows=csv_rows,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print the technology comparison (shared CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
