"""Figure 12: mu-sigma/mu sensitivity surfaces for the three schemes.

The paper sweeps the mean per-line retention (mu, 2K-30K cycles) and its
relative spread (sigma/mu, 5%-35%), generating chips whose line
retentions follow that distribution directly (within-die variation only),
and plots system performance for no-refresh/LRU, partial-refresh/DSP
("dead line sensitive") and RSP-FIFO ("retention sensitive").

Findings to reproduce: sigma/mu matters more than mu; performance falls
off sharply for sigma/mu beyond ~25% (dead lines proliferate); larger mu
helps at fixed sigma/mu; the dead-line- and retention-sensitive schemes
dominate no-refresh almost everywhere.

The driver also locates the paper's real design points (technology /
voltage / scenario combinations) on the (mu, sigma/mu) plane by sampling
real chips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.technology.node import (
    NODE_32NM,
    NODE_45NM,
    NODE_65NM,
    TechnologyNode,
)
from repro.variation.parameters import VariationParams
from repro.array.chip import ChipSampler, DRAM3T1DChipSample
from repro.array.geometry import CacheGeometry
from repro.cells.sram6t import SRAM6TCell
from repro.core.schemes import HEADLINE_SCHEMES, RetentionScheme
from repro.engine.parallel import EvalTask
from repro.engine.registry import CsvExport, Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_table

DEFAULT_MU_CYCLES: Tuple[int, ...] = (2000, 6000, 10000, 15000, 22000, 30000)
DEFAULT_SIGMA_RATIOS: Tuple[float, ...] = (0.05, 0.15, 0.25, 0.35)


@dataclass(frozen=True)
class DesignPoint:
    """A real design located on the (mu, sigma/mu) plane."""

    label: str
    mu_cycles: float
    sigma_ratio: float


@dataclass(frozen=True)
class Fig12Result:
    """Performance surfaces per scheme plus real design points."""

    mu_cycles: Tuple[int, ...]
    sigma_ratios: Tuple[float, ...]
    surfaces: Dict[str, np.ndarray]
    """scheme name -> array of shape (len(mu), len(sigma))."""
    design_points: List[DesignPoint]

    def performance_at(
        self, scheme: str, mu: int, sigma_ratio: float
    ) -> float:
        """Surface value at one grid point."""
        i = self.mu_cycles.index(mu)
        j = self.sigma_ratios.index(sigma_ratio)
        return float(self.surfaces[scheme][i, j])


def synthetic_chip(
    node: TechnologyNode,
    mu_cycles: float,
    sigma_ratio: float,
    seed: int,
    geometry: Optional[CacheGeometry] = None,
) -> DRAM3T1DChipSample:
    """A chip whose line retentions are Gaussian(mu, sigma) directly.

    This is the paper's section 5 methodology: skip the device model and
    impose the retention distribution (within-die only, truncated at
    zero -- the negative tail is what creates dead lines at high
    sigma/mu).
    """
    geometry = geometry or CacheGeometry()
    rng = np.random.default_rng(seed)
    retention_cycles = rng.normal(
        mu_cycles, sigma_ratio * mu_cycles, size=geometry.n_lines
    )
    retention_seconds = (
        np.maximum(retention_cycles, 0.0) / node.frequency
    )
    golden = (
        SRAM6TCell(node).nominal_cell_leakage_power() * geometry.total_cells
    )
    return DRAM3T1DChipSample(
        node=node,
        geometry=geometry,
        chip_id=seed,
        retention_by_line=retention_seconds,
        leakage_power=golden,  # leakage is not the subject of this sweep
        golden_leakage_power=golden,
    )


def locate_design_points(
    n_chips: int = 10, seed: int = 7
) -> List[DesignPoint]:
    """Sample real chips to place the paper's design points on the plane."""
    cases = [
        ("1: 65nm typical 1.1V", NODE_65NM, VariationParams.typical()),
        ("2: 45nm typical 1.1V", NODE_45NM, VariationParams.typical()),
        ("3: 32nm typical 1.1V", NODE_32NM, VariationParams.typical()),
        ("4: 32nm severe 1.1V", NODE_32NM, VariationParams.severe()),
        # The paper does not give the scaled supply for points 5/6; 1.0 V
        # keeps the (fixed, 1.1 V-designed) cell functional while showing
        # the voltage-scaling retention hit.  At 0.9 V the design's read
        # margin collapses entirely -- a harsher cliff than the paper's.
        (
            "5: 32nm typical 1.0V",
            NODE_32NM.scaled(vdd=1.0),
            VariationParams.typical(),
        ),
        (
            "6: 32nm severe 1.0V",
            NODE_32NM.scaled(vdd=1.0),
            VariationParams.severe(),
        ),
    ]
    points = []
    for label, node, params in cases:
        sampler = ChipSampler(node, params, seed=seed)
        mus = []
        ratios = []
        for chip in sampler.sample_3t1d_chips(n_chips):
            cycles = chip.retention_by_line * node.frequency
            mean = float(np.mean(cycles))
            if mean <= 0:
                continue
            mus.append(mean)
            ratios.append(float(np.std(cycles)) / mean)
        points.append(
            DesignPoint(
                label=label,
                mu_cycles=float(np.mean(mus)) if mus else 0.0,
                sigma_ratio=float(np.mean(ratios)) if ratios else 0.0,
            )
        )
    return points


def run(
    context: Optional[ExperimentContext] = None,
    mu_cycles: Sequence[int] = DEFAULT_MU_CYCLES,
    sigma_ratios: Sequence[float] = DEFAULT_SIGMA_RATIOS,
    schemes: Tuple[RetentionScheme, ...] = HEADLINE_SCHEMES,
    benchmarks: Optional[Sequence[str]] = ("gcc", "mcf", "mesa", "fma3d"),
    include_design_points: bool = True,
) -> Fig12Result:
    """Regenerate the Figure 12 surfaces.

    ``benchmarks`` defaults to a representative subset to keep the grid
    affordable; pass ``None`` for the full 8-benchmark suite.
    """
    context = context or ExperimentContext()
    mu_cycles = tuple(int(m) for m in mu_cycles)
    sigma_ratios = tuple(float(s) for s in sigma_ratios)
    spec = context.evaluator_spec()
    names = tuple(benchmarks) if benchmarks else None
    surfaces = {
        scheme.name: np.zeros((len(mu_cycles), len(sigma_ratios)))
        for scheme in schemes
    }
    grid = [
        (i, j, scheme)
        for i in range(len(mu_cycles))
        for j in range(len(sigma_ratios))
        for scheme in schemes
    ]
    tasks = [
        EvalTask(
            evaluator=spec,
            chip=synthetic_chip(
                context.node,
                mu_cycles[i],
                sigma_ratios[j],
                seed=context.seed + 31 * i + j,
            ),
            schemes=(scheme.name,),
            benchmarks=names,
        )
        for i, j, scheme in grid
    ]
    outcomes = context.runner.evaluate(
        tasks, observer=context.observer, label="fig12: mu-sigma grid"
    )
    for (i, j, scheme), (outcome,) in zip(grid, outcomes):
        surfaces[scheme.name][i, j] = outcome.normalized_performance
    points = locate_design_points() if include_design_points else []
    return Fig12Result(
        mu_cycles=mu_cycles,
        sigma_ratios=sigma_ratios,
        surfaces=surfaces,
        design_points=points,
    )


def report(result: Fig12Result) -> str:
    """One table per scheme: rows mu, columns sigma/mu."""
    parts = []
    for scheme, surface in result.surfaces.items():
        headers = ["mu (cycles)"] + [
            f"s/m={ratio:.0%}" for ratio in result.sigma_ratios
        ]
        rows = [
            [str(mu)] + [f"{surface[i, j]:.3f}" for j in range(surface.shape[1])]
            for i, mu in enumerate(result.mu_cycles)
        ]
        parts.append(
            format_table(
                headers, rows,
                title=f"Figure 12: performance surface, {scheme}",
            )
        )
        parts.append("")
    if result.design_points:
        rows = [
            [p.label, f"{p.mu_cycles:.0f}", f"{p.sigma_ratio:.1%}"]
            for p in result.design_points
        ]
        parts.append(
            format_table(
                ["design point", "mu (cycles)", "sigma/mu"],
                rows,
                title="Real design points on the (mu, sigma/mu) plane",
            )
        )
    return "\n".join(parts)


def csv_rows(result: Fig12Result) -> List[CsvExport]:
    """Machine-readable surface samples (one row per grid point)."""
    headers = ["scheme", "mu_cycles", "sigma_ratio", "performance"]
    rows = [
        [scheme, mu, ratio, float(surface[i, j])]
        for scheme, surface in result.surfaces.items()
        for i, mu in enumerate(result.mu_cycles)
        for j, ratio in enumerate(result.sigma_ratios)
    ]
    return [CsvExport("fig12_sensitivity.csv", headers, rows)]


EXPERIMENT = register_experiment(Experiment(
    name="fig12_sensitivity",
    run=run,
    report=report,
    csv_rows=csv_rows,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print Figure 12 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
