"""Figure 9: the eight line-level schemes on the good/median/bad chips.

Severe variation.  The paper's findings, all checked by this driver:

* LRU-only schemes suffer most on the bad chip (dead-line references);
* partial-refresh buys 1-2% over no-refresh;
* full-refresh gives some of it back (port blocking);
* the RSP placements (intrinsic refresh) perform best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.schemes import LINE_LEVEL_SCHEMES, RetentionScheme
from repro.core.yieldmodel import YieldModel
from repro.engine.parallel import EvalTask
from repro.engine.registry import Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_table

CHIP_LABELS: Tuple[str, str, str] = ("good", "median", "bad")


@dataclass(frozen=True)
class Fig09Result:
    """Normalized performance of every scheme on the three chips."""

    performance: Dict[str, Dict[str, float]]
    """scheme name -> chip label -> normalized performance."""
    power: Dict[str, Dict[str, float]]
    """scheme name -> chip label -> normalized dynamic power."""

    def best_scheme_for(self, chip_label: str) -> str:
        """Scheme with the highest performance on a chip."""
        return max(
            self.performance,
            key=lambda scheme: self.performance[scheme][chip_label],
        )


def run(
    context: Optional[ExperimentContext] = None,
    schemes: Tuple[RetentionScheme, ...] = LINE_LEVEL_SCHEMES,
) -> Fig09Result:
    """Regenerate Figure 9 at the context's Monte-Carlo scale."""
    context = context or ExperimentContext()
    good, median, bad = YieldModel(context.chips_3t1d("severe")).pick_good_median_bad()
    chips = {"good": good, "median": median, "bad": bad}
    spec = context.evaluator_spec()
    # One task per chip, all schemes batched through evaluate_many.
    labels = list(chips)
    scheme_names = tuple(scheme.name for scheme in schemes)
    tasks = [
        EvalTask(evaluator=spec, chip=chips[label], schemes=scheme_names)
        for label in labels
    ]
    outcomes = context.runner.evaluate(
        tasks, observer=context.observer, label="fig09: schemes x chips"
    )
    performance: Dict[str, Dict[str, float]] = {s.name: {} for s in schemes}
    power: Dict[str, Dict[str, float]] = {s.name: {} for s in schemes}
    for label, chip_outcomes in zip(labels, outcomes):
        for outcome in chip_outcomes:
            performance[outcome.scheme][label] = outcome.normalized_performance
            power[outcome.scheme][label] = outcome.dynamic_power_normalized
    return Fig09Result(performance=performance, power=power)


def report(result: Fig09Result) -> str:
    """Scheme x chip performance table."""
    headers = ["scheme"] + [f"{label} perf" for label in CHIP_LABELS] + [
        f"{label} pwr" for label in CHIP_LABELS
    ]
    rows: List[List[str]] = []
    for scheme, by_chip in result.performance.items():
        row = [scheme]
        row += [f"{by_chip[label]:.3f}" for label in CHIP_LABELS]
        row += [f"{result.power[scheme][label]:.2f}" for label in CHIP_LABELS]
        rows.append(row)
    return format_table(
        headers, rows,
        title="Figure 9: normalized performance of retention schemes "
        "(severe variation)",
    )


EXPERIMENT = register_experiment(Experiment(
    name="fig09_schemes",
    run=run,
    report=report,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print Figure 9 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
