"""Regenerate every table and figure in one command.

Usage::

    python -m repro.experiments.run_all [--chips N] [--refs N] [--out DIR]
                                        [--workers N] [--no-cache]
                                        [--resume] [--checkpoint-dir DIR]

The flags are the shared engine surface from
:mod:`repro.experiments.cli`; every per-experiment ``__main__`` accepts
the same set.  Chip-level results are journalled under
``OUT/.checkpoints`` as they complete, so an interrupted run (crash,
SIGKILL, Ctrl-C) restarted with ``--resume`` recomputes only what is
missing and still emits byte-identical outputs.

Writes one text report per experiment (plus a combined ``summary.txt``)
to the output directory.  The run is driven entirely by the experiment
registry (:func:`repro.engine.registry.all_experiments`): each registered
:class:`~repro.engine.registry.Experiment` supplies its own ``run`` /
``report`` pair, optional CSV exports, and optional default context
overrides, so this module carries no per-experiment special cases.

All experiments share a single :class:`ExperimentContext`, so the
Monte-Carlo chip batches and benchmark traces are sampled once and the
engine's worker pool (``--workers``) is reused across experiments.
Results are memoised in an on-disk content-keyed
:class:`~repro.engine.cache.ResultCache` (``--cache-dir``; keyed by the
package version, the experiment's source digest, and the context
fingerprint), so a re-run after editing one experiment recomputes only
that experiment.  ``summary.txt`` depends only on results -- never on
timing, worker count, or cache state -- so serial, parallel, and cached
runs emit byte-identical summaries.
"""

from __future__ import annotations

import argparse
import pathlib
import time
import warnings
from typing import Callable, List, Optional, Tuple

from repro.engine import trace as trace_mod
from repro.engine.cache import ResultCache
from repro.engine.events import (
    EventStream,
    ExperimentEnded,
    ExperimentStarted,
    RunEnded,
    RunStarted,
    dispatch,
)
from repro.engine.observer import CLIProgressReporter, JSONMetricsObserver
from repro.engine.registry import all_experiments
from repro.experiments.cli import (
    cache_from_args,
    context_from_args,
    engine_parent_parser,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import write_csv


def run_all(
    context: ExperimentContext,
    out_dir: pathlib.Path,
    progress: Callable[[str], None] = print,
    csv_exports: bool = True,
    cache: Optional[ResultCache] = None,
) -> pathlib.Path:
    """Run every registered experiment; returns the combined summary path.

    ``progress`` receives one human-readable line per experiment (pass a
    no-op when an attached :class:`CLIProgressReporter` already prints).
    ``cache`` enables result reuse across invocations.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    experiments = all_experiments()
    observer = context.observer
    dispatch(observer, RunStarted(len(experiments)))
    run_start = time.perf_counter()
    summary_parts = []
    for experiment in experiments:
        dispatch(observer, ExperimentStarted(experiment.name))
        start = time.perf_counter()
        result, cached = experiment.execute(context, cache)
        text = experiment.report(result)
        elapsed = time.perf_counter() - start
        (out_dir / f"{experiment.name}.txt").write_text(text + "\n")
        if csv_exports:
            for export in experiment.csv_exports(result):
                write_csv(out_dir / export.filename, export.headers, export.rows)
        suffix = " (cached)" if cached else ""
        progress(f"{experiment.name}: done in {elapsed:.1f}s{suffix}")
        dispatch(observer, ExperimentEnded(experiment.name, elapsed, cached))
        summary_parts.append(f"{'=' * 72}\n{experiment.name}\n{'=' * 72}")
        summary_parts.append(text)
    summary_path = out_dir / "summary.txt"
    summary_path.write_text("\n\n".join(summary_parts) + "\n")
    dispatch(observer, RunEnded(time.perf_counter() - run_start))
    return summary_path


def main(argv=None) -> None:
    """CLI entry point (shared engine flags; see ``--help``)."""
    parser = argparse.ArgumentParser(
        description="Regenerate all paper tables and figures.",
        parents=[engine_parent_parser()],
    )
    parser.set_defaults(out=pathlib.Path("results"))
    args = parser.parse_args(argv)
    cache = cache_from_args(args)
    metrics_path = args.metrics or args.out / "metrics.json"
    tracer = trace_mod.Tracer() if args.trace is not None else None
    stream = EventStream([CLIProgressReporter()])
    if tracer is not None:
        # Subscribed before the metrics observer so the run span is
        # closed by the time the per-phase table is written out.
        stream.subscribe(tracer)
    stream.subscribe(JSONMetricsObserver(metrics_path, tracer=tracer))
    context = context_from_args(args, observer=stream)
    try:
        with trace_mod.activate(tracer):
            # The reporter already announces each experiment; silence
            # the legacy progress callback to avoid double printing.
            summary = run_all(
                context, args.out, progress=lambda line: None, cache=cache
            )
    finally:
        context.close()
    if tracer is not None:
        trace_path = tracer.to_chrome(args.trace)
        print(f"trace written to {trace_path}")
    print(f"combined report: {summary}")


def _deprecated_experiments_list() -> List[Tuple[str, object]]:
    import importlib

    return [
        (experiment.name, importlib.import_module(experiment.module))
        for experiment in all_experiments()
        if experiment.module
    ]


def _write_csv_exports(out_dir: pathlib.Path, name: str, result) -> None:
    """Deprecated: experiments now export CSV via their ``csv_rows`` hook."""
    warnings.warn(
        "_write_csv_exports is deprecated; csv exports are driven by "
        "Experiment.csv_rows hooks",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine.registry import get_experiment

    out_dir.mkdir(parents=True, exist_ok=True)
    for export in get_experiment(name).csv_exports(result):
        write_csv(out_dir / export.filename, export.headers, export.rows)


def __getattr__(name: str):
    if name == "EXPERIMENTS":
        warnings.warn(
            "run_all.EXPERIMENTS is deprecated; use "
            "repro.engine.registry.all_experiments()",
            DeprecationWarning,
            stacklevel=2,
        )
        return _deprecated_experiments_list()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


if __name__ == "__main__":
    main()
