"""Regenerate every table and figure in one command.

Usage::

    python -m repro.experiments.run_all [--chips N] [--refs N] [--out DIR]

Writes one text report per experiment (plus a combined ``summary.txt``) to
the output directory, using a single shared :class:`ExperimentContext` so
the Monte-Carlo chip batches and benchmark traces are sampled once.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from typing import Callable, List, Tuple

from repro.experiments.runner import ExperimentContext
from repro.experiments import (
    fig01_reuse,
    fig04_retention_curve,
    fig06_typical,
    fig07_leakage,
    fig08_line_retention,
    fig09_schemes,
    fig10_hundred_chips,
    fig11_associativity,
    fig12_sensitivity,
    table3,
)

EXPERIMENTS: List[Tuple[str, object]] = [
    ("fig01_reuse", fig01_reuse),
    ("fig04_retention_curve", fig04_retention_curve),
    ("fig06_typical", fig06_typical),
    ("fig07_leakage", fig07_leakage),
    ("fig08_line_retention", fig08_line_retention),
    ("fig09_schemes", fig09_schemes),
    ("fig10_hundred_chips", fig10_hundred_chips),
    ("fig11_associativity", fig11_associativity),
    ("fig12_sensitivity", fig12_sensitivity),
    ("table3", table3),
]


def _write_csv_exports(out_dir: pathlib.Path, name: str, result) -> None:
    """Write machine-readable series for the plot-shaped experiments."""
    from repro.experiments.reporting import write_csv

    if name == "fig01_reuse":
        headers = ["benchmark"] + [str(g) for g in result.grid]
        rows = [
            [bench] + [float(v) for v in cdf]
            for bench, cdf in result.measured.items()
        ]
        write_csv(out_dir / "fig01_reuse.csv", headers, rows)
    elif name == "fig10_hundred_chips":
        names = list(result.performance)
        headers = ["chip_rank"] + [f"{n} perf" for n in names] + [
            f"{n} power" for n in names
        ]
        rows = [
            [rank + 1]
            + [float(result.performance[n][rank]) for n in names]
            + [float(result.power[n][rank]) for n in names]
            for rank in range(len(result.chip_ids))
        ]
        write_csv(out_dir / "fig10_hundred_chips.csv", headers, rows)
    elif name == "fig12_sensitivity":
        headers = ["scheme", "mu_cycles", "sigma_ratio", "performance"]
        rows = [
            [scheme, mu, ratio, float(surface[i, j])]
            for scheme, surface in result.surfaces.items()
            for i, mu in enumerate(result.mu_cycles)
            for j, ratio in enumerate(result.sigma_ratios)
        ]
        write_csv(out_dir / "fig12_sensitivity.csv", headers, rows)


def run_all(
    context: ExperimentContext,
    out_dir: pathlib.Path,
    progress: Callable[[str], None] = print,
    csv_exports: bool = True,
) -> pathlib.Path:
    """Run every experiment; returns the path of the combined summary."""
    out_dir.mkdir(parents=True, exist_ok=True)
    summary_parts = []
    for name, module in EXPERIMENTS:
        start = time.perf_counter()
        if name == "fig04_retention_curve":
            result = module.run()  # pure circuit model, no Monte Carlo
        elif name == "table3":
            result = module.run(
                ExperimentContext(
                    n_chips=max(10, context.n_chips // 2),
                    n_references=context.n_references,
                    seed=context.seed,
                )
            )
        else:
            result = module.run(context)
        text = module.report(result)
        elapsed = time.perf_counter() - start
        (out_dir / f"{name}.txt").write_text(text + "\n")
        if csv_exports:
            _write_csv_exports(out_dir, name, result)
        progress(f"{name}: done in {elapsed:.1f}s")
        summary_parts.append(f"{'=' * 72}\n{name} ({elapsed:.1f}s)\n{'=' * 72}")
        summary_parts.append(text)
    summary_path = out_dir / "summary.txt"
    summary_path.write_text("\n\n".join(summary_parts) + "\n")
    return summary_path


def main(argv=None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Regenerate all paper tables and figures."
    )
    parser.add_argument(
        "--chips", type=int, default=60,
        help="Monte-Carlo chips per scenario (paper scale: 100)",
    )
    parser.add_argument(
        "--refs", type=int, default=8000,
        help="trace references per benchmark",
    )
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("results"),
        help="output directory for the text reports",
    )
    args = parser.parse_args(argv)
    context = ExperimentContext(
        n_chips=args.chips, n_references=args.refs, seed=args.seed
    )
    summary = run_all(context, args.out)
    print(f"combined report: {summary}")


if __name__ == "__main__":
    main()
