"""``python -m repro.experiments`` regenerates every table and figure."""

from repro.experiments.run_all import main

if __name__ == "__main__":
    main()
