"""Figure 1: percentage of cache references vs. cycles since line load.

The paper's reading: "most cache accesses happen within the initial 6K
clock cycles after the data is loaded" -- about 90% on average across the
8 benchmarks.  The reproduction measures the same CDF from the synthetic
traces (and prints the closed-form profile curve alongside, since the
generator is calibrated to it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import benchmark_names, get_profile
from repro.workloads.reuse import reference_distance_cdf
from repro.engine.registry import CsvExport, Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_table

DEFAULT_GRID: Tuple[int, ...] = (1000, 2000, 4000, 6000, 10000, 15000, 20000)


@dataclass(frozen=True)
class Fig01Result:
    """Measured and modeled reference-distance CDFs per benchmark."""

    grid: Tuple[int, ...]
    measured: Dict[str, np.ndarray]
    modeled: Dict[str, np.ndarray]

    @property
    def average_measured(self) -> np.ndarray:
        """Mean measured CDF across benchmarks (the Figure 1 'Average')."""
        return np.mean(list(self.measured.values()), axis=0)

    def measured_at_6k(self) -> Dict[str, float]:
        """Measured fraction of references within 6K cycles, per benchmark."""
        index = self.grid.index(6000) if 6000 in self.grid else -1
        return {name: float(cdf[index]) for name, cdf in self.measured.items()}


def run(
    context: Optional[ExperimentContext] = None,
    grid: Sequence[int] = DEFAULT_GRID,
) -> Fig01Result:
    """Measure the Figure 1 curves from the synthetic traces."""
    context = context or ExperimentContext()
    grid = tuple(int(g) for g in grid)
    measured: Dict[str, np.ndarray] = {}
    modeled: Dict[str, np.ndarray] = {}
    for name in benchmark_names():
        profile = get_profile(name)
        workload = SyntheticWorkload(profile, seed=context.seed)
        trace = workload.memory_trace(context.n_references)
        stats = reference_distance_cdf(trace)
        measured[name] = stats.cdf_series(grid)
        modeled[name] = np.array([profile.reuse_cdf(g) for g in grid])
    return Fig01Result(grid=grid, measured=measured, modeled=modeled)


def report(result: Fig01Result) -> str:
    """Paper-style table: CDF per benchmark over the distance grid."""
    headers = ["benchmark"] + [f"{g // 1000}k" for g in result.grid]
    rows = []
    for name, cdf in result.measured.items():
        rows.append([name] + [f"{v:.1%}" for v in cdf])
    rows.append(
        ["Average"] + [f"{v:.1%}" for v in result.average_measured]
    )
    return format_table(
        headers, rows,
        title="Figure 1: cache references within D cycles of line load",
    )


def csv_rows(result: Fig01Result) -> List[CsvExport]:
    """Machine-readable measured CDF per benchmark."""
    headers = ["benchmark"] + [str(g) for g in result.grid]
    rows = [
        [bench] + [float(v) for v in cdf]
        for bench, cdf in result.measured.items()
    ]
    return [CsvExport("fig01_reuse.csv", headers, rows)]


EXPERIMENT = register_experiment(Experiment(
    name="fig01_reuse",
    run=run,
    report=report,
    csv_rows=csv_rows,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print Figure 1 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
