"""Figure 6: typical variation -- 6T frequency vs. 3T1D retention.

(a) Normalized frequency (performance) distribution of 1X and 2X 6T
    chips: most 1X chips lose 10-20%; 2X recovers much of it at 4x the
    cell area.
(b) 3T1D chips under the global refresh scheme: the retention-time
    histogram (the paper's 476-3094 ns spread), performance vs. retention
    (mean and worst-case benchmark), and the dynamic power split into
    normal operation + refresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import units
from repro.variation.statistics import normalized_histogram
from repro.core.schemes import SCHEME_GLOBAL
from repro.engine.parallel import EvalTask
from repro.engine.registry import Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_histogram, format_table

FREQUENCY_BIN_EDGES = np.arange(0.7625, 1.0876, 0.025)
FREQUENCY_BIN_LABELS = [f"{c:.3f}" for c in np.arange(0.775, 1.076, 0.025)]

RETENTION_BIN_EDGES_NS = np.arange(476.0, 3095.0 + 238.0, 238.0)
RETENTION_BIN_LABELS = [f"{int(e)}ns" for e in RETENTION_BIN_EDGES_NS[:-1]]


@dataclass(frozen=True)
class GlobalSchemePoint:
    """One operable 3T1D chip under the global refresh scheme."""

    chip_id: int
    retention_ns: float
    mean_performance: float
    worst_benchmark: str
    worst_performance: float
    normal_dynamic_power: float
    refresh_dynamic_power: float

    @property
    def total_dynamic_power(self) -> float:
        """Normal + refresh dynamic power, normalized to ideal 6T."""
        return self.normal_dynamic_power + self.refresh_dynamic_power


@dataclass(frozen=True)
class Fig06Result:
    """Both panels of Figure 6."""

    frequency_histogram_1x: np.ndarray
    frequency_histogram_2x: np.ndarray
    retention_histogram: np.ndarray
    points: List[GlobalSchemePoint]
    discard_rate: float

    def chips_within_2pct(self) -> float:
        """Fraction of operable chips losing < 2% (paper: ~97%)."""
        if not self.points:
            return 0.0
        return float(
            np.mean([p.mean_performance >= 0.98 for p in self.points])
        )


def run(context: Optional[ExperimentContext] = None) -> Fig06Result:
    """Regenerate Figure 6 at the context's Monte-Carlo scale."""
    context = context or ExperimentContext()

    freq_1x = [c.normalized_frequency for c in context.chips_sram("typical", 1.0)]
    freq_2x = [c.normalized_frequency for c in context.chips_sram("typical", 2.0)]
    hist_1x = normalized_histogram(freq_1x, FREQUENCY_BIN_EDGES)
    hist_2x = normalized_histogram(freq_2x, FREQUENCY_BIN_EDGES)

    chips = context.chips_3t1d("typical")
    spec = context.evaluator_spec()
    tasks = [
        EvalTask(evaluator=spec, chip=chip, schemes=(SCHEME_GLOBAL.name,))
        for chip in chips
    ]
    outcomes = context.runner.evaluate(
        tasks, observer=context.observer, label="fig06: global scheme"
    )
    points: List[GlobalSchemePoint] = []
    discarded = 0
    for chip, (outcome,) in zip(chips, outcomes):
        if outcome.discarded:
            discarded += 1
            continue
        # Normal-operation power: subtract the closed-form refresh part
        # that evaluate() added, keeping both normalized the same way.
        refresh_norm = outcome.refresh_power_normalized
        points.append(
            GlobalSchemePoint(
                chip_id=chip.chip_id,
                retention_ns=units.to_ns(chip.chip_retention_time),
                mean_performance=outcome.normalized_performance,
                worst_benchmark=outcome.worst_benchmark,
                worst_performance=outcome.worst_performance,
                normal_dynamic_power=(
                    outcome.dynamic_power_normalized - refresh_norm
                ),
                refresh_dynamic_power=refresh_norm,
            )
        )
    retention_hist = normalized_histogram(
        [p.retention_ns for p in points], RETENTION_BIN_EDGES_NS
    )
    return Fig06Result(
        frequency_histogram_1x=hist_1x,
        frequency_histogram_2x=hist_2x,
        retention_histogram=retention_hist,
        points=sorted(points, key=lambda p: p.retention_ns),
        discard_rate=discarded / max(1, len(chips)),
    )


def report(result: Fig06Result) -> str:
    """Paper-style panels as text."""
    parts = [
        format_histogram(
            FREQUENCY_BIN_LABELS,
            result.frequency_histogram_1x,
            title="Figure 6a: 1X 6T normalized frequency distribution",
        ),
        "",
        format_histogram(
            FREQUENCY_BIN_LABELS,
            result.frequency_histogram_2x,
            title="Figure 6a: 2X 6T normalized frequency distribution",
        ),
        "",
        format_histogram(
            RETENTION_BIN_LABELS,
            result.retention_histogram,
            title="Figure 6b: 3T1D cache retention time distribution",
        ),
        "",
    ]
    headers = [
        "retention(ns)", "mean perf", "worst bench", "worst perf",
        "normal pwr", "refresh pwr", "total pwr",
    ]
    rows = [
        [
            f"{p.retention_ns:.0f}", f"{p.mean_performance:.3f}",
            p.worst_benchmark, f"{p.worst_performance:.3f}",
            f"{p.normal_dynamic_power:.2f}", f"{p.refresh_dynamic_power:.2f}",
            f"{p.total_dynamic_power:.2f}",
        ]
        for p in result.points
    ]
    parts.append(
        format_table(
            headers, rows,
            title="Figure 6b: performance and dynamic power vs. retention "
            "(global refresh)",
        )
    )
    parts.append(
        f"\nchips within 2% of ideal: {result.chips_within_2pct():.0%} "
        f"(paper: ~97%); discarded (retention < one pass): "
        f"{result.discard_rate:.0%}"
    )
    return "\n".join(parts)


EXPERIMENT = register_experiment(Experiment(
    name="fig06_typical",
    run=run,
    report=report,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print Figure 6 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
