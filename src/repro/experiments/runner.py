"""Shared experiment plumbing: scale, seeding, and chip/evaluator caches.

Every figure driver takes an :class:`ExperimentContext`, which fixes the
Monte-Carlo scale (number of chips, trace length) and memoises the
expensive inputs (chip batches per scenario, evaluators per
configuration) so multi-figure runs don't repeat work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.technology.node import NODE_32NM, TechnologyNode
from repro.variation.parameters import VariationParams
from repro.array.chip import ChipSampler, DRAM3T1DChipSample, SRAMChipSample
from repro.cache.config import CacheConfig
from repro.core.evaluation import Evaluator


@dataclass
class ExperimentContext:
    """Scale and caching for one experiment run.

    ``n_chips`` / ``n_references`` default to paper scale (100 chips) and
    a laptop-sized trace; benches pass smaller values.
    """

    node: TechnologyNode = NODE_32NM
    n_chips: int = 100
    n_references: int = 8000
    seed: int = 2007  # the paper's year; any fixed value works
    benchmarks: Optional[Sequence[str]] = None
    _chips_3t1d: Dict[str, List[DRAM3T1DChipSample]] = field(
        init=False, default_factory=dict, repr=False
    )
    _chips_sram: Dict[Tuple[str, float], List[SRAMChipSample]] = field(
        init=False, default_factory=dict, repr=False
    )
    _evaluators: Dict[Tuple[str, int], Evaluator] = field(
        init=False, default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.n_chips < 1:
            raise ConfigurationError("n_chips must be >= 1")
        if self.n_references < 1:
            raise ConfigurationError("n_references must be >= 1")

    # ------------------------------------------------------------------

    def scenario(self, name: str) -> VariationParams:
        """Variation scenario by name ('typical' / 'severe' / 'none')."""
        factories = {
            "typical": VariationParams.typical,
            "severe": VariationParams.severe,
            "none": VariationParams.none,
        }
        try:
            return factories[name]()
        except KeyError:
            raise ConfigurationError(
                f"unknown scenario {name!r}; expected one of {sorted(factories)}"
            ) from None

    def chips_3t1d(self, scenario: str) -> List[DRAM3T1DChipSample]:
        """The cached Monte-Carlo 3T1D chip batch for ``scenario``."""
        if scenario not in self._chips_3t1d:
            sampler = ChipSampler(
                self.node, self.scenario(scenario), seed=self.seed
            )
            self._chips_3t1d[scenario] = sampler.sample_3t1d_chips(self.n_chips)
        return self._chips_3t1d[scenario]

    def chips_sram(
        self, scenario: str, size_factor: float = 1.0
    ) -> List[SRAMChipSample]:
        """The cached Monte-Carlo 6T chip batch for ``scenario``."""
        key = (scenario, size_factor)
        if key not in self._chips_sram:
            sampler = ChipSampler(
                self.node, self.scenario(scenario), seed=self.seed + 17
            )
            self._chips_sram[key] = sampler.sample_sram_chips(
                self.n_chips, size_factor=size_factor
            )
        return self._chips_sram[key]

    def evaluator(self, ways: int = 4) -> Evaluator:
        """The cached evaluator for an associativity (traces shared)."""
        key = (self.node.name, ways)
        if key not in self._evaluators:
            config = CacheConfig()
            if ways != config.geometry.ways:
                config = config.with_ways(ways)
            self._evaluators[key] = Evaluator(
                self.node,
                config=config,
                n_references=self.n_references,
                seed=self.seed,
                benchmarks=self.benchmarks,
            )
        return self._evaluators[key]
