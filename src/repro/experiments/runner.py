"""Shared experiment plumbing: scale, seeding, and chip/evaluator caches.

Every figure driver takes an :class:`ExperimentContext`, which fixes the
Monte-Carlo scale (number of chips, trace length), memoises the expensive
inputs (chip batches per scenario, evaluators per configuration), and
owns the execution engine: a
:class:`~repro.engine.parallel.ParallelChipRunner` that fans chip builds
and evaluations across worker processes when ``workers > 1``, plus the
:class:`~repro.engine.observer.RunObserver` progress hooks.  Per-chip
seeds are reserved serially before any fan-out, so serial and parallel
runs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.technology.node import NODE_32NM, TechnologyNode
from repro.technology.backends import get_backend
from repro.variation.parameters import VariationParams
from repro.array.chip import ChipSampler, DRAM3T1DChipSample, SRAMChipSample
from repro.array.geometry import CacheGeometry
from repro.core.evaluation import Evaluator
from repro.engine.config import EngineConfig
from repro.engine.events import Subscriber
from repro.engine.observer import NULL_OBSERVER
from repro.engine.parallel import EvaluatorSpec, ParallelChipRunner


@dataclass
class ExperimentContext:
    """Scale, caching, and execution engine for one experiment run.

    ``n_chips`` / ``n_references`` default to paper scale (100 chips) and
    a laptop-sized trace; benches pass smaller values.  Execution knobs
    (pool width, caches, checkpointing, supervision) live exclusively on
    :attr:`engine` -- the legacy ``workers`` / ``evaluator_cache_size``
    constructor keywords completed their deprecation cycle and were
    removed (read-only mirror properties remain).
    """

    node: TechnologyNode = NODE_32NM
    n_chips: int = 100
    n_references: int = 8000
    seed: int = 2007  # the paper's year; any fixed value works
    benchmarks: Optional[Sequence[str]] = None
    technology: str = "3t1d"
    """Registered technology backend name (see
    :func:`repro.technology.backend_names`).  The default 3T1D backend
    reproduces the paper; alternatives re-run the same experiments on the
    same workloads with a different cell technology underneath."""
    geometry: Optional[CacheGeometry] = None
    """L1 organisation the experiment studies.  ``None`` (the default)
    means the paper's 64KB / 4-way point; sweeps pass a
    :meth:`~repro.array.geometry.CacheGeometry.from_capacity` geometry
    and every chip batch, evaluator, and cache key follows it."""
    engine: Optional[EngineConfig] = None
    """The consolidated engine configuration (pool width, caches,
    checkpointing, supervision).  ``None`` means serial execution
    (``EngineConfig(workers=1)``), the historical default."""
    observer: Subscriber = field(
        default=NULL_OBSERVER, repr=False, compare=False
    )
    """Any typed-event subscriber (an
    :class:`~repro.engine.events.EventStream`, a legacy
    :class:`~repro.engine.observer.RunObserver`, or a bare callable)."""
    _chips_3t1d: Dict[str, List[DRAM3T1DChipSample]] = field(
        init=False, default_factory=dict, repr=False
    )
    _chips_sram: Dict[Tuple[str, float], List[SRAMChipSample]] = field(
        init=False, default_factory=dict, repr=False
    )
    _evaluators: Dict[
        Tuple[str, int, str, Optional[CacheGeometry]], Evaluator
    ] = field(init=False, default_factory=dict, repr=False)
    _runner: Optional[ParallelChipRunner] = field(
        init=False, default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.n_chips < 1:
            raise ConfigurationError("n_chips must be >= 1")
        if self.n_references < 1:
            raise ConfigurationError("n_references must be >= 1")
        get_backend(self.technology)  # fail fast on unknown backends
        if self.engine is None:
            self.engine = EngineConfig(workers=1)
        elif not isinstance(self.engine, EngineConfig):
            raise ConfigurationError(
                "engine must be an EngineConfig; the legacy workers=/"
                "evaluator_cache_size= keywords were removed -- pass "
                "engine=EngineConfig(workers=..., evaluator_cache_size=...)"
            )

    # ------------------------------------------------------------------
    # read-only mirrors of the engine's knobs (informational)
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """The engine's effective pool width (read-only mirror)."""
        return self.engine.effective_workers

    @property
    def evaluator_cache_size(self) -> Optional[int]:
        """The engine's evaluator LRU capacity (read-only mirror)."""
        return self.engine.evaluator_cache_size

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------

    def with_overrides(self, **overrides) -> "ExperimentContext":
        """A derived context with the given fields replaced.

        Caches start fresh (the scale may have changed) but the engine's
        worker pool is shared with the parent, so a derived context does
        not spawn new processes.  Engine knobs are overridden by passing
        a whole ``engine=EngineConfig(...)`` (derive one from
        ``context.engine.replace(...)``); the legacy ``workers`` /
        ``evaluator_cache_size`` keywords were removed.
        """
        for name in ("workers", "evaluator_cache_size"):
            if name in overrides:
                raise ConfigurationError(
                    f"the legacy {name!r} override was removed; pass "
                    f"engine=context.engine.replace({name}=...) (an "
                    "EngineConfig) instead"
                )
        for name in overrides:
            if name.startswith("_") or name not in self.__dataclass_fields__:
                raise ConfigurationError(
                    f"unknown ExperimentContext field {name!r}"
                )
        overrides.setdefault("engine", self.engine)
        derived = replace(self, **overrides)
        derived._runner = self._runner
        return derived

    def with_chips(self, n_chips: int) -> "ExperimentContext":
        """A derived context at a different Monte-Carlo chip count."""
        return self.with_overrides(n_chips=n_chips)

    def with_refs(self, n_references: int) -> "ExperimentContext":
        """A derived context at a different trace length."""
        return self.with_overrides(n_references=n_references)

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------

    @property
    def runner(self) -> ParallelChipRunner:
        """The (lazily created) chip-batch scheduler for this context.

        The runner's checkpoint journal is keyed by this context's
        :meth:`cache_fingerprint`, so a resumed run only restores
        results journalled under an identical configuration.
        """
        if self._runner is None:
            self._runner = ParallelChipRunner(
                config=self.engine, run_key=self.cache_fingerprint()
            )
        return self._runner

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._runner is not None:
            self._runner.close()
            self._runner = None

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def cache_fingerprint(self) -> str:
        """The part of the result-cache key this context contributes.

        Workers and observers are excluded: they never change results.
        """
        benchmarks = (
            ",".join(self.benchmarks) if self.benchmarks is not None else "*"
        )
        node = (
            f"{self.node.name}@{self.node.frequency:g}Hz"
            f"/{self.node.vdd:g}V/{self.node.vth:g}V"
        )
        fingerprint = (
            f"node={node}|chips={self.n_chips}|refs={self.n_references}"
            f"|seed={self.seed}|benchmarks={benchmarks}"
        )
        # Appended only for non-default backends so pre-backend journals,
        # cache entries, and run keys stay valid for 3T1D runs.
        if self.technology != "3t1d":
            fingerprint += f"|technology={self.technology}"
        # Same pattern for geometry: the paper point keeps its
        # historical fingerprint.
        if self.geometry is not None and self.geometry != CacheGeometry():
            fingerprint += f"|geometry={self.geometry.signature}"
        return fingerprint

    # ------------------------------------------------------------------
    # cached inputs
    # ------------------------------------------------------------------

    def scenario(self, name: str) -> VariationParams:
        """Variation scenario by name ('typical' / 'severe' / 'none')."""
        factories = {
            "typical": VariationParams.typical,
            "severe": VariationParams.severe,
            "none": VariationParams.none,
        }
        try:
            return factories[name]()
        except KeyError:
            raise ConfigurationError(
                f"unknown scenario {name!r}; expected one of {sorted(factories)}"
            ) from None

    def chips_3t1d(self, scenario: str) -> List[DRAM3T1DChipSample]:
        """The cached Monte-Carlo 3T1D chip batch for ``scenario``."""
        if scenario not in self._chips_3t1d:
            sampler = ChipSampler(
                self.node,
                self.scenario(scenario),
                seed=self.seed,
                technology=self.technology,
                **self._sampler_geometry(),
            )
            tasks = sampler.reserve_build_tasks(self.n_chips, kind="3t1d")
            self._chips_3t1d[scenario] = self.runner.build_chips(
                tasks,
                observer=self.observer,
                label=f"sample {self.technology} chips ({scenario})"
                if self.technology != "3t1d"
                else f"sample 3T1D chips ({scenario})",
            )
        return self._chips_3t1d[scenario]

    def chips_sram(
        self, scenario: str, size_factor: float = 1.0
    ) -> List[SRAMChipSample]:
        """The cached Monte-Carlo 6T chip batch for ``scenario``."""
        key = (scenario, size_factor)
        if key not in self._chips_sram:
            sampler = ChipSampler(
                self.node,
                self.scenario(scenario),
                seed=self.seed + 17,
                **self._sampler_geometry(),
            )
            tasks = sampler.reserve_build_tasks(
                self.n_chips, kind="sram", size_factor=size_factor
            )
            self._chips_sram[key] = self.runner.build_chips(
                tasks,
                observer=self.observer,
                label=f"sample 6T chips ({scenario}, {size_factor:g}X)",
            )
        return self._chips_sram[key]

    def _sampler_geometry(self) -> Dict[str, CacheGeometry]:
        """Extra :class:`ChipSampler` kwargs for a non-default geometry.

        Empty at the paper point so the historical call (and its chip
        sequence) stays byte-identical.
        """
        if self.geometry is None:
            return {}
        return {"geometry": self.geometry}

    def evaluator_spec(
        self,
        ways: Optional[int] = None,
        geometry: Optional[CacheGeometry] = None,
    ) -> EvaluatorSpec:
        """The spec workers use to rebuild this context's evaluator.

        ``geometry`` defaults to the context's; when one is in play,
        ``ways`` re-derives the set/way indexing through
        :meth:`~repro.array.geometry.CacheGeometry.with_ways` (the
        physical layout stays pinned).  With no geometry anywhere the
        legacy ways-only spec is returned unchanged.
        """
        geometry = geometry if geometry is not None else self.geometry
        if geometry is not None and ways is not None and ways != geometry.ways:
            geometry = geometry.with_ways(ways)
        return EvaluatorSpec(
            node=self.node,
            ways=geometry.ways if geometry is not None else (
                4 if ways is None else ways
            ),
            n_references=self.n_references,
            seed=self.seed,
            benchmarks=tuple(self.benchmarks) if self.benchmarks else None,
            technology=self.technology,
            geometry=geometry,
        )

    def evaluator(
        self,
        ways: Optional[int] = None,
        geometry: Optional[CacheGeometry] = None,
    ) -> Evaluator:
        """The cached evaluator for a configuration (traces shared)."""
        spec = self.evaluator_spec(ways, geometry)
        key = (self.node.name, spec.ways, self.technology, spec.geometry)
        if key not in self._evaluators:
            self._evaluators[key] = spec.build()
        return self._evaluators[key]
