"""Per-figure/table reproduction drivers.

One module per table or figure in the paper's evaluation:

========================  ====================================================
Module                    Paper content
========================  ====================================================
``fig01_reuse``           Figure 1: reference distance from line load
``fig04_retention_curve`` Figure 4: access time vs. time since write
``fig06_typical``         Figure 6: 6T frequency and 3T1D retention/perf/power
``fig07_leakage``         Figure 7: leakage power distributions
``fig08_line_retention``  Figure 8: line retention of good/median/bad chips
``fig09_schemes``         Figure 9: 8 line-level schemes x 3 chips
``fig10_hundred_chips``   Figure 10: perf & power of 100 chips, 3 schemes
``fig11_associativity``   Figure 11: associativity sweep x 3 chips x 3 schemes
``fig12_sensitivity``     Figure 12: mu-sigma/mu performance surfaces
``table3``                Table 3: per-node summary (ideal 6T / 1X 6T / 3T1D)
``techcompare``           Cross-technology sweep (3T1D / STT-RAM / var-DRAM)
``geomsweep``             Geometry/banking sweep (size x assoc x banks)
========================  ====================================================

Every module exposes ``run(...)`` returning a result dataclass and
``main()`` that prints the paper-style rows, and registers an
:class:`~repro.engine.registry.Experiment` (importing this package in
paper order populates the registry -- that order is what
``repro.engine.registry.all_experiments`` reports).  The ``benchmarks/``
suite invokes ``run`` with reduced Monte-Carlo scale so a full
regeneration stays laptop-sized.
"""

from repro.experiments.runner import ExperimentContext
from repro.experiments import reporting

# Paper order; each import registers the module's Experiment.
from repro.experiments import (  # noqa: E402  (registration side effects)
    fig01_reuse,
    fig04_retention_curve,
    fig06_typical,
    fig07_leakage,
    fig08_line_retention,
    fig09_schemes,
    fig10_hundred_chips,
    fig11_associativity,
    fig12_sensitivity,
    table3,
    techcompare,
    geomsweep,
)

__all__ = [
    "ExperimentContext",
    "reporting",
    "fig01_reuse",
    "fig04_retention_curve",
    "fig06_typical",
    "fig07_leakage",
    "fig08_line_retention",
    "fig09_schemes",
    "fig10_hundred_chips",
    "fig11_associativity",
    "fig12_sensitivity",
    "table3",
    "techcompare",
    "geomsweep",
]
