"""Figure 8: per-line retention of the good / median / bad chips (severe).

Under severe variation, cache lines within one chip spread widely; the
bad chip has ~23% dead lines and the median ~3%, and about 80% of chips
must be discarded under the global scheme because at least one line
cannot cover a refresh pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro import units
from repro.variation.statistics import normalized_histogram
from repro.core.yieldmodel import YieldModel
from repro.engine.registry import Experiment, register_experiment
from repro.experiments.runner import ExperimentContext
from repro.experiments.reporting import format_histogram, format_table

LINE_BIN_EDGES_NS = np.arange(0.0, 5001.0, 500.0)
LINE_BIN_LABELS = [
    f"{int(lo)}-{int(hi)}ns"
    for lo, hi in zip(LINE_BIN_EDGES_NS[:-1], LINE_BIN_EDGES_NS[1:])
]


@dataclass(frozen=True)
class Fig08Result:
    """Line-retention histograms and yield statistics."""

    histograms: Dict[str, np.ndarray]
    dead_fractions: Dict[str, float]
    discard_rate: float
    median_chip_retention_ns: float


def run(context: Optional[ExperimentContext] = None) -> Fig08Result:
    """Regenerate Figure 8 at the context's Monte-Carlo scale."""
    context = context or ExperimentContext()
    chips = context.chips_3t1d("severe")
    model = YieldModel(chips)
    good, median, bad = model.pick_good_median_bad()
    histograms = {}
    dead = {}
    for label, chip in (("good", good), ("median", median), ("bad", bad)):
        retention_ns = units.to_ns(chip.retention_by_line)
        histograms[label] = normalized_histogram(retention_ns, LINE_BIN_EDGES_NS)
        dead[label] = model.dead_line_fraction(chip)
    report_stats = model.report()
    return Fig08Result(
        histograms=histograms,
        dead_fractions=dead,
        discard_rate=report_stats.discard_rate_global,
        median_chip_retention_ns=report_stats.median_chip_retention_ns,
    )


def report(result: Fig08Result) -> str:
    """Histograms plus the dead-line/discard summary."""
    parts = []
    for label in ("good", "median", "bad"):
        parts.append(
            format_histogram(
                LINE_BIN_LABELS,
                result.histograms[label],
                title=f"Figure 8: line retention distribution, {label} chip",
            )
        )
        parts.append("")
    rows = [
        [label, f"{result.dead_fractions[label]:.1%}"]
        for label in ("good", "median", "bad")
    ]
    parts.append(
        format_table(
            ["chip", "dead lines"],
            rows,
            title="dead lines (retention below one counter step); "
            "paper: bad ~23%, median ~3%",
        )
    )
    parts.append(
        f"\nglobal-scheme discard rate: {result.discard_rate:.0%} "
        "(paper: ~80%)"
    )
    return "\n".join(parts)


EXPERIMENT = register_experiment(Experiment(
    name="fig08_line_retention",
    run=run,
    report=report,
    module=__name__,
))


def main(argv=None) -> None:
    """Regenerate and print Figure 8 (shared engine CLI flags)."""
    EXPERIMENT.cli(argv)


if __name__ == "__main__":
    main()
