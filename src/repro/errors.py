"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or out-of-range values."""


class CalibrationError(ReproError):
    """A calibrated model failed to reproduce its anchor point."""


class SimulationError(ReproError):
    """A simulator reached an invalid internal state."""


class TraceError(ReproError):
    """A workload trace is malformed or violates an expected invariant."""


class ExecutionError(ReproError):
    """The execution engine could not complete a task.

    Raised when a work item keeps failing after its full retry budget --
    pool retries, quarantine, and a final inline attempt -- so the batch
    cannot produce a complete, bit-identical result set.
    """


class JobCancelled(ReproError):
    """An execution-service job was cancelled before it finished.

    Raised by :meth:`repro.service.ExecutionService.result` for a
    cancelled job, and inside the running job's event loop to unwind it
    at the next event boundary (results never come from a partially
    cancelled run).
    """


class ChipDiscardedError(ReproError):
    """The selected retention scheme cannot operate the sampled chip.

    Raised, for example, when the global refresh scheme is applied to a chip
    containing a dead line (retention time of zero): the paper discards such
    chips because a single dead line forces the global retention period to
    zero.
    """
