"""Distribution summaries and small statistics helpers.

These utilities back every histogram/percentile figure in the paper
reproduction (Figures 6, 7, 8, 10) and the harmonic-mean performance
aggregation the paper uses when reporting single numbers (section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean, the paper's aggregate over its 8 benchmarks.

    Raises :class:`ConfigurationError` on empty input or non-positive
    values (for which the harmonic mean is undefined).
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("harmonic_mean of an empty sequence")
    if np.any(array <= 0):
        raise ConfigurationError(
            "harmonic_mean requires strictly positive values"
        )
    return float(array.size / np.sum(1.0 / array))


def normalized_histogram(
    values: Sequence[float], bin_edges: Sequence[float]
) -> np.ndarray:
    """Histogram of ``values`` over ``bin_edges``, normalised to probability.

    Matches the paper's "chip probability" histograms: each bar is the
    fraction of samples in that bin.  Values outside the outer edges are
    clamped into the first/last bin so no chip silently disappears.
    """
    edges = np.asarray(list(bin_edges), dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ConfigurationError("bin_edges must contain at least two edges")
    if np.any(np.diff(edges) <= 0):
        raise ConfigurationError("bin_edges must be strictly increasing")
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return np.zeros(edges.size - 1)
    clipped = np.clip(array, edges[0], np.nextafter(edges[-1], -np.inf))
    counts, _ = np.histogram(clipped, bins=edges)
    return counts / array.size


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a Monte-Carlo sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p05: float
    median: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} p5={self.p05:.4g} "
            f"median={self.median:.4g} p95={self.p95:.4g} "
            f"max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Compute a :class:`DistributionSummary` for ``values``."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("summarize of an empty sequence")
    return DistributionSummary(
        count=int(array.size),
        mean=float(np.mean(array)),
        std=float(np.std(array)),
        minimum=float(np.min(array)),
        p05=float(np.percentile(array, 5)),
        median=float(np.median(array)),
        p95=float(np.percentile(array, 95)),
        maximum=float(np.max(array)),
    )


def median_chip_index(values: Sequence[float]) -> int:
    """Index of the sample closest to the median of ``values``.

    Used to pick the paper's "median chip" out of a Monte-Carlo batch.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("median_chip_index of an empty sequence")
    median = np.median(array)
    return int(np.argmin(np.abs(array - median)))
