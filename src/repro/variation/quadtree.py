"""3-level quad-tree model for spatially correlated within-die variation.

Following Agarwal et al. (ICCAD 2003), the die is recursively divided into
quadrants for ``levels`` levels.  Each region at each level receives an
independent zero-mean Gaussian component; the correlated parameter value at
a point on the die is the sum of the components of all regions containing
it.  Points in the same small region share all components (fully
correlated); points far apart share only the top-level component (weakly
correlated).  The per-level sigma is chosen so the total variance equals
the requested ``sigma**2`` (equal split across levels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QuadTreeSampler:
    """Samples correlated values at fixed positions on a die.

    Parameters
    ----------
    positions:
        Sequence of (x, y) coordinates in the unit square, one per site
        (e.g. one per cache sub-array).
    levels:
        Number of quad-tree levels (the paper uses 3).
    """

    positions: Tuple[Tuple[float, float], ...]
    levels: int = 3
    _level_indices: Tuple[np.ndarray, ...] = field(
        init=False, repr=False, compare=False
    )
    """Per-level region indices, precomputed once at construction.

    Positions and levels are frozen, so the mapping never changes;
    recomputing it on every :meth:`sample` / :meth:`correlation` call
    (as earlier revisions did) was pure overhead on the Monte-Carlo
    hot path."""

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {self.levels}")
        if not self.positions:
            raise ConfigurationError("at least one position is required")
        for x, y in self.positions:
            if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
                raise ConfigurationError(
                    f"positions must lie in the unit square, got ({x}, {y})"
                )
        object.__setattr__(
            self,
            "_level_indices",
            tuple(
                self._compute_region_indices(level)
                for level in range(self.levels)
            ),
        )

    @staticmethod
    def grid(rows: int, cols: int, levels: int = 3) -> "QuadTreeSampler":
        """Sampler for sites laid out on a ``rows x cols`` grid (cell centers)."""
        if rows < 1 or cols < 1:
            raise ConfigurationError("grid dimensions must be >= 1")
        positions = tuple(
            ((c + 0.5) / cols, (r + 0.5) / rows)
            for r in range(rows)
            for c in range(cols)
        )
        return QuadTreeSampler(positions=positions, levels=levels)

    @property
    def n_sites(self) -> int:
        """Number of sampled die positions."""
        return len(self.positions)

    def _compute_region_indices(self, level: int) -> np.ndarray:
        """Flat region index of each position at ``level`` (0 = whole die)."""
        divisions = 2 ** level
        indices = np.empty(self.n_sites, dtype=np.int64)
        for i, (x, y) in enumerate(self.positions):
            col = min(int(x * divisions), divisions - 1)
            row = min(int(y * divisions), divisions - 1)
            indices[i] = row * divisions + col
        return indices

    def _region_indices(self, level: int) -> np.ndarray:
        """Cached flat region index of each position at ``level``."""
        return self._level_indices[level]

    def sample(self, sigma: float, rng: np.random.Generator) -> np.ndarray:
        """Draw one correlated sample vector with total std ``sigma``.

        Returns an array of shape ``(n_sites,)``.
        """
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        values = np.zeros(self.n_sites)
        if sigma == 0.0:
            return values
        level_sigma = sigma / np.sqrt(self.levels)
        for level in range(self.levels):
            divisions = 2 ** level
            components = rng.normal(0.0, level_sigma, size=divisions * divisions)
            values += components[self._level_indices[level]]
        return values

    def correlation(self, site_a: int, site_b: int) -> float:
        """Model correlation coefficient between two sites.

        Equal to the fraction of quad-tree levels at which the two sites
        fall in the same region (1.0 for identical sites).
        """
        if not (0 <= site_a < self.n_sites and 0 <= site_b < self.n_sites):
            raise ConfigurationError("site index out of range")
        shared = 0
        for level in range(self.levels):
            indices = self._level_indices[level]
            if indices[site_a] == indices[site_b]:
                shared += 1
        return shared / self.levels
