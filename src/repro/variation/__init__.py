"""Process-variation modeling substrate.

Implements the paper's Monte-Carlo methodology (section 3.1):

* die-to-die gate-length variation (one offset per chip),
* within-die gate-length variation, spatially correlated with a 3-level
  quad-tree (Agarwal et al.); gate lengths within one sub-array are
  strongly correlated (Friedberg's measurements), so the correlated
  component is sampled per sub-array,
* random dopant threshold-voltage variation, independent per device,
  Pelgrom-scaled with device area.

Two named scenarios match the paper: ``typical`` (sigma_L/L = 5% within
die, sigma_Vth/Vth = 10%) and ``severe`` (7% and 15%), both with 5%
die-to-die gate-length sigma.
"""

from repro.variation.parameters import VariationParams
from repro.variation.quadtree import QuadTreeSampler
from repro.variation.montecarlo import (
    ChipVariation,
    VariationSampler,
    validate_chip_count,
)
from repro.variation.statistics import (
    DistributionSummary,
    harmonic_mean,
    normalized_histogram,
    summarize,
)

__all__ = [
    "VariationParams",
    "QuadTreeSampler",
    "ChipVariation",
    "VariationSampler",
    "validate_chip_count",
    "DistributionSummary",
    "harmonic_mean",
    "normalized_histogram",
    "summarize",
]
