"""Variation scenario parameters (paper section 3.1).

The paper studies two situations:

* **typical variation**: sigma_L/L_nominal = 5% within die,
  sigma_Vth/Vth_nominal = 10%;
* **severe variation**: sigma_L/L_nominal = 7% within die,
  sigma_Vth/Vth_nominal = 15%.

Both assume sigma_L/L_nominal = 5% for die-to-die gate-length variation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.technology.node import TechnologyNode


@dataclass(frozen=True)
class VariationParams:
    """Relative sigmas of the three variation components.

    * ``sigma_l_wid_rel`` -- within-die gate-length sigma / nominal L,
      spatially correlated (quad-tree over sub-arrays).
    * ``sigma_vth_rel`` -- random-dopant threshold sigma / nominal Vth,
      independent per device (Pelgrom-scaled by device area).
    * ``sigma_l_d2d_rel`` -- die-to-die gate-length sigma / nominal L,
      one sample per chip.
    """

    sigma_l_wid_rel: float
    sigma_vth_rel: float
    sigma_l_d2d_rel: float = 0.05
    name: str = "custom"

    def __post_init__(self) -> None:
        for attr in ("sigma_l_wid_rel", "sigma_vth_rel", "sigma_l_d2d_rel"):
            value = getattr(self, attr)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"VariationParams.{attr} must be in [0, 1), got {value!r}"
                )

    @classmethod
    def typical(cls) -> "VariationParams":
        """The paper's *typical variation* scenario."""
        return cls(
            sigma_l_wid_rel=0.05,
            sigma_vth_rel=0.10,
            sigma_l_d2d_rel=0.05,
            name="typical",
        )

    @classmethod
    def severe(cls) -> "VariationParams":
        """The paper's *severe variation* scenario."""
        return cls(
            sigma_l_wid_rel=0.07,
            sigma_vth_rel=0.15,
            sigma_l_d2d_rel=0.05,
            name="severe",
        )

    @classmethod
    def none(cls) -> "VariationParams":
        """No variation at all; produces the golden (ideal) design point."""
        return cls(
            sigma_l_wid_rel=0.0,
            sigma_vth_rel=0.0,
            sigma_l_d2d_rel=0.0,
            name="none",
        )

    # --- absolute sigmas for a given node --------------------------------

    def sigma_l_wid(self, node: TechnologyNode) -> float:
        """Within-die gate-length sigma in meters."""
        return self.sigma_l_wid_rel * node.feature_size

    def sigma_l_d2d(self, node: TechnologyNode) -> float:
        """Die-to-die gate-length sigma in meters."""
        return self.sigma_l_d2d_rel * node.feature_size

    def sigma_vth(self, node: TechnologyNode, area_scale: float = 1.0) -> float:
        """Random-dopant threshold sigma in volts for a device whose
        gate area is ``1 / area_scale**2`` times the minimum device
        (``area_scale`` is the Pelgrom 1/sqrt(area) factor, 1.0 for a
        minimum-size device)."""
        if area_scale <= 0:
            raise ConfigurationError(
                f"area_scale must be positive, got {area_scale!r}"
            )
        return self.sigma_vth_rel * node.vth * area_scale

    @property
    def is_zero(self) -> bool:
        """True if every component sigma is exactly zero."""
        return (
            self.sigma_l_wid_rel == 0.0
            and self.sigma_vth_rel == 0.0
            and self.sigma_l_d2d_rel == 0.0
        )
