"""Per-chip Monte-Carlo variation sampling.

A :class:`VariationSampler` turns a (node, scenario) pair into a stream of
:class:`ChipVariation` draws.  Each draw fixes the chip's correlated
components (die-to-die gate-length offset and the per-sub-array within-die
gate-length deviations) and carries a dedicated random generator for the
cell-level random-dopant draws, which the cell/array models sample lazily
in vectorised form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.technology.node import TechnologyNode
from repro.variation.parameters import VariationParams
from repro.variation.quadtree import QuadTreeSampler

DEFAULT_SUBARRAY_ROWS: int = 2
DEFAULT_SUBARRAY_COLS: int = 4
"""The 64KB cache's 8 sub-arrays laid out as a 2 x 4 grid on the die."""


def validate_chip_count(count: int) -> int:
    """Validate a Monte-Carlo batch size; returns it for chaining.

    The one shared count check behind every batch-sampling entry point
    (:meth:`VariationSampler.sample_chips`,
    :meth:`~repro.array.chip.ChipSampler.sample_3t1d_chips`,
    :meth:`~repro.array.chip.ChipSampler.sample_sram_chips`, seed
    reservation), so they all reject bad sizes with the same error.
    """
    if not isinstance(count, (int, np.integer)) or isinstance(count, bool):
        raise ConfigurationError(
            f"chip count must be an integer, got {type(count).__name__}"
        )
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    return int(count)


@dataclass
class ChipVariation:
    """The frozen correlated-variation state of one sampled chip.

    Attributes
    ----------
    node:
        Technology node the chip is manufactured in.
    params:
        Variation scenario used for the draw.
    delta_l_d2d:
        Die-to-die gate-length offset in meters (one value per chip).
    delta_l_subarray:
        Within-die correlated gate-length deviation per sub-array, meters;
        shape ``(n_subarrays,)``.  Devices within a sub-array share this
        value (strongly correlated gate lengths within a sub-array).
    rng:
        Chip-private random generator used for the independent per-device
        threshold-voltage draws.
    chip_id:
        Sequence number of the draw (useful for labeling chips in plots).
    """

    node: TechnologyNode
    params: VariationParams
    delta_l_d2d: float
    delta_l_subarray: np.ndarray
    rng: np.random.Generator
    chip_id: int = 0

    @property
    def n_subarrays(self) -> int:
        """Number of sub-arrays with distinct correlated gate length."""
        return int(self.delta_l_subarray.shape[0])

    def delta_l_total(self, subarray: int) -> float:
        """Total correlated gate-length deviation for ``subarray``, meters."""
        if not 0 <= subarray < self.n_subarrays:
            raise ConfigurationError(
                f"subarray index {subarray} out of range [0, {self.n_subarrays})"
            )
        return self.delta_l_d2d + float(self.delta_l_subarray[subarray])

    def sample_vth(
        self, size, sigma_scale: float = 1.0
    ) -> np.ndarray:
        """Draw independent random-dopant Vth deviations in volts.

        ``sigma_scale`` is the Pelgrom area factor of the device being
        sampled (1.0 for a minimum-size device, 0.5 for the 2X cell's
        4x-area devices).
        """
        sigma = self.params.sigma_vth(self.node, sigma_scale)
        if sigma == 0.0:
            return np.zeros(size)
        return self.rng.normal(0.0, sigma, size=size)


@dataclass
class VariationSampler:
    """Generates :class:`ChipVariation` draws for a node and scenario.

    The sampler is deterministic for a given ``seed``: re-creating it
    reproduces the exact same sequence of chips, which keeps all paper
    experiments reproducible.
    """

    node: TechnologyNode
    params: VariationParams
    seed: int = 0
    subarray_rows: int = DEFAULT_SUBARRAY_ROWS
    subarray_cols: int = DEFAULT_SUBARRAY_COLS
    quadtree_levels: int = 3
    _root_rng: np.random.Generator = field(init=False, repr=False)
    _quadtree: QuadTreeSampler = field(init=False, repr=False)
    _next_chip_id: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        if self.subarray_rows < 1 or self.subarray_cols < 1:
            raise ConfigurationError("sub-array grid dimensions must be >= 1")
        self._root_rng = np.random.default_rng(self.seed)
        self._quadtree = QuadTreeSampler.grid(
            self.subarray_rows, self.subarray_cols, levels=self.quadtree_levels
        )

    @property
    def n_subarrays(self) -> int:
        """Sub-arrays per chip."""
        return self.subarray_rows * self.subarray_cols

    def reserve_chip_seeds(self, count: int) -> List[Tuple[int, int]]:
        """Reserve ``count`` upcoming ``(chip_id, chip_seed)`` draws.

        Seeds come off the root generator in sequence order, so reserving
        a batch and building the chips elsewhere (e.g. in worker
        processes, via :meth:`chip_from_seed`) yields exactly the chips
        :meth:`sample_chip` would have produced serially.
        """
        count = validate_chip_count(count)
        reserved = []
        for _ in range(count):
            chip_id = self._next_chip_id
            self._next_chip_id += 1
            reserved.append(
                (chip_id, int(self._root_rng.integers(0, 2 ** 63 - 1)))
            )
        return reserved

    def chip_from_seed(self, chip_id: int, chip_seed: int) -> ChipVariation:
        """Build the chip a reserved ``(chip_id, chip_seed)`` describes.

        Stateless with respect to the sampler sequence: any process can
        rebuild any reserved chip, bit-identically.
        """
        chip_rng = np.random.default_rng(chip_seed)
        delta_l_d2d = (
            chip_rng.normal(0.0, self.params.sigma_l_d2d(self.node))
            if self.params.sigma_l_d2d_rel > 0
            else 0.0
        )
        delta_l_subarray = self._quadtree.sample(
            self.params.sigma_l_wid(self.node), chip_rng
        )
        return ChipVariation(
            node=self.node,
            params=self.params,
            delta_l_d2d=float(delta_l_d2d),
            delta_l_subarray=delta_l_subarray,
            rng=chip_rng,
            chip_id=chip_id,
        )

    def sample_chip(self) -> ChipVariation:
        """Draw the next chip in the deterministic sequence.

        A chip-private generator decouples cell-level draw counts from
        the chip sequence: chip k is identical no matter how the caller
        uses the per-chip generator of earlier chips.
        """
        ((chip_id, chip_seed),) = self.reserve_chip_seeds(1)
        return self.chip_from_seed(chip_id, chip_seed)

    def sample_chips(self, count: int) -> List[ChipVariation]:
        """``count`` consecutive chip draws, as a list.

        Earlier revisions returned a lazy generator here while the
        :class:`~repro.array.chip.ChipSampler` batch methods returned
        lists; the trio is now consistent (list-returning, shared count
        validation), so batch call sites compose without surprises --
        a generator silently consumed twice yields zero chips the
        second time.
        """
        return [
            self.sample_chip() for _ in range(validate_chip_count(count))
        ]

    @staticmethod
    def golden(
        node: TechnologyNode,
        seed: int = 0,
        n_subarrays: Optional[int] = None,
    ) -> ChipVariation:
        """The no-variation (golden) chip at ``node``.

        Used as the normalisation reference for every distribution plot.
        ``seed`` feeds the chip's (otherwise unused) RNG; the default
        keeps golden chips bit-identical across every caller.
        ``n_subarrays`` sizes the (all-zero) correlated deviation vector
        for non-paper geometries; the default is the paper's 8.
        """
        params = VariationParams.none()
        n_sub = (
            DEFAULT_SUBARRAY_ROWS * DEFAULT_SUBARRAY_COLS
            if n_subarrays is None
            else n_subarrays
        )
        return ChipVariation(
            node=node,
            params=params,
            delta_l_d2d=0.0,
            delta_l_subarray=np.zeros(n_sub),
            rng=np.random.default_rng(seed),
            chip_id=-1,
        )
