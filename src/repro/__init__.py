"""repro -- Process Variation Tolerant 3T1D-Based Cache Architectures.

A full reproduction of Liang, Canal, Wei & Brooks, MICRO 2007: 3T1D
dynamic-memory L1 data caches whose process-variation response is lumped
into per-line *retention times* and absorbed by retention-aware refresh
and placement schemes.

Quickstart::

    from repro import NODE_32NM, VariationParams, ChipSampler, evaluate

    sampler = ChipSampler(NODE_32NM, VariationParams.severe(), seed=1)
    chip = sampler.sample_3t1d_chip()
    result = evaluate(chip, "partial-refresh/DSP")
    print(result.normalized_performance)

Batches go through :func:`repro.evaluate_many`, which shares one suite's
traces (and the batched kernel's per-trace artifacts) across every
(chip, scheme) pair::

    from repro import Evaluator, evaluate_many, HEADLINE_SCHEMES

    suite = Evaluator(NODE_32NM)
    rows = evaluate_many(sampler.sample_3t1d_chips(10),
                         HEADLINE_SCHEMES, suite)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.errors import (
    CalibrationError,
    ChipDiscardedError,
    ConfigurationError,
    ExecutionError,
    JobCancelled,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.technology import (
    ALL_NODES,
    DEFAULT_TECHNOLOGY,
    DRAM3T1DBackend,
    NODE_32NM,
    NODE_45NM,
    NODE_65NM,
    RetentionMap,
    STTRAMBackend,
    TechnologyBackend,
    TechnologyNode,
    VarDRAMBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.variation import (
    ChipVariation,
    QuadTreeSampler,
    VariationParams,
    VariationSampler,
    harmonic_mean,
    validate_chip_count,
)
from repro.cells import (
    AccessTimeCurve,
    DRAM3T1DCell,
    RetentionModel,
    SRAM6TCell,
)
from repro.array import (
    CacheGeometry,
    CachePowerModel,
    ChipBuildTask,
    ChipSampler,
    DRAM3T1DChipSample,
    SRAMChipSample,
)
from repro.cache import (
    CacheConfig,
    LineCounterConfig,
    RetentionAwareCache,
)
from repro.cpu import Core, CoreConfig
from repro.workloads import (
    SPEC2000_PROFILES,
    BenchmarkProfile,
    SyntheticWorkload,
    benchmark_names,
    get_profile,
)
from repro.core import (
    Cache3T1DArchitecture,
    Cache6TArchitecture,
    ChipEvaluation,
    Evaluator,
    HEADLINE_SCHEMES,
    IdealCacheArchitecture,
    LINE_LEVEL_SCHEMES,
    RetentionScheme,
    SCHEME_GLOBAL,
    SCHEME_NO_REFRESH_LRU,
    SCHEME_PARTIAL_DSP,
    SCHEME_RSP_FIFO,
    SCHEME_RSP_LRU,
    KernelSupport,
    TraceArtifacts,
    YieldModel,
    evaluate,
    evaluate_many,
    get_scheme,
    kernel_support,
    simulate_trace,
)
from repro.engine import (
    CacheStats,
    CLIProgressReporter,
    CompositeObserver,
    CorruptedPayload,
    CsvExport,
    DEFAULT_EVALUATOR_CACHE_SIZE,
    EngineConfig,
    EngineEvent,
    EvaluatorSpec,
    EvalTask,
    EventStream,
    Experiment,
    FaultPlan,
    InjectedFaultError,
    JSONMetricsObserver,
    LOCAL_BACKEND,
    NULL_OBSERVER,
    ParallelChipRunner,
    ResultCache,
    RunJournal,
    RunObserver,
    RunnerStats,
    SUBPROCESS_FLEET_BACKEND,
    ShardedResultCache,
    Span,
    TracedResult,
    Tracer,
    activate,
    all_experiments,
    canonical_dumps,
    decode_event,
    dispatch,
    encode_event,
    evaluator_cache_size,
    get_experiment,
    register_experiment,
    resolve_cache,
    set_evaluator_cache_size,
    span,
    task_key,
    tracing_active,
)

__version__ = "1.0.0"


#: Facade names resolved lazily: ExperimentContext lives with the
#: experiment drivers and the service symbols live with the service
#: layer; importing either eagerly would pull heavy subpackages in on
#: every ``import repro``.
_LAZY_EXPORTS = {
    "ExperimentContext": ("repro.experiments.runner", "ExperimentContext"),
    "ExecutionService": ("repro.service", "ExecutionService"),
    "JobHandle": ("repro.service", "JobHandle"),
    "JobSpec": ("repro.service", "JobSpec"),
    "JobStatus": ("repro.service", "JobStatus"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CalibrationError",
    "SimulationError",
    "TraceError",
    "ChipDiscardedError",
    "ExecutionError",
    "JobCancelled",
    "TechnologyNode",
    "ALL_NODES",
    "NODE_65NM",
    "NODE_45NM",
    "NODE_32NM",
    "DEFAULT_TECHNOLOGY",
    "TechnologyBackend",
    "DRAM3T1DBackend",
    "STTRAMBackend",
    "VarDRAMBackend",
    "RetentionMap",
    "backend_names",
    "get_backend",
    "register_backend",
    "VariationParams",
    "VariationSampler",
    "ChipVariation",
    "QuadTreeSampler",
    "harmonic_mean",
    "validate_chip_count",
    "SRAM6TCell",
    "DRAM3T1DCell",
    "RetentionModel",
    "AccessTimeCurve",
    "CacheGeometry",
    "CachePowerModel",
    "ChipBuildTask",
    "ChipSampler",
    "SRAMChipSample",
    "DRAM3T1DChipSample",
    "CacheConfig",
    "LineCounterConfig",
    "RetentionAwareCache",
    "Core",
    "CoreConfig",
    "BenchmarkProfile",
    "SPEC2000_PROFILES",
    "SyntheticWorkload",
    "benchmark_names",
    "get_profile",
    "RetentionScheme",
    "SCHEME_GLOBAL",
    "SCHEME_NO_REFRESH_LRU",
    "SCHEME_PARTIAL_DSP",
    "SCHEME_RSP_FIFO",
    "SCHEME_RSP_LRU",
    "LINE_LEVEL_SCHEMES",
    "HEADLINE_SCHEMES",
    "get_scheme",
    "Cache3T1DArchitecture",
    "Cache6TArchitecture",
    "IdealCacheArchitecture",
    "Evaluator",
    "ChipEvaluation",
    "TraceArtifacts",
    "evaluate",
    "evaluate_many",
    "KernelSupport",
    "kernel_support",
    "simulate_trace",
    "YieldModel",
    "DEFAULT_EVALUATOR_CACHE_SIZE",
    "evaluator_cache_size",
    "set_evaluator_cache_size",
    "CacheStats",
    "CLIProgressReporter",
    "CompositeObserver",
    "CorruptedPayload",
    "CsvExport",
    "EngineConfig",
    "EngineEvent",
    "EvalTask",
    "EvaluatorSpec",
    "EventStream",
    "ExecutionService",
    "Experiment",
    "ExperimentContext",
    "FaultPlan",
    "InjectedFaultError",
    "JSONMetricsObserver",
    "JobHandle",
    "JobSpec",
    "JobStatus",
    "LOCAL_BACKEND",
    "NULL_OBSERVER",
    "ParallelChipRunner",
    "ResultCache",
    "RunJournal",
    "RunObserver",
    "RunnerStats",
    "SUBPROCESS_FLEET_BACKEND",
    "ShardedResultCache",
    "Span",
    "TracedResult",
    "Tracer",
    "activate",
    "all_experiments",
    "canonical_dumps",
    "decode_event",
    "dispatch",
    "encode_event",
    "get_experiment",
    "register_experiment",
    "resolve_cache",
    "span",
    "task_key",
    "tracing_active",
]
