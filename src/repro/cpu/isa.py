"""Micro-op record types for the trace-driven core model.

The synthetic workloads (and any external trace converted to this format)
describe programs as sequences of micro-ops.  Register dependencies are
encoded positionally: ``dep1``/``dep2`` give the *distance backwards* to
the producing instruction (0 means no dependency), which is all a timing
model needs and keeps traces renaming-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import TraceError


class OpClass(IntEnum):
    """Execution class of a micro-op (selects functional unit + latency)."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6


#: Execution latency per op class, cycles (21264-like).
EXECUTION_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 7,
    OpClass.FP_ALU: 4,
    OpClass.FP_MUL: 4,
    OpClass.LOAD: 0,  # memory latency supplied by the cache model
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}

INT_CLASSES = (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.LOAD,
               OpClass.STORE, OpClass.BRANCH)
FP_CLASSES = (OpClass.FP_ALU, OpClass.FP_MUL)


@dataclass(frozen=True)
class MicroOp:
    """One instruction of a trace.

    * ``op`` -- execution class;
    * ``dep1`` / ``dep2`` -- backwards distances to producer instructions
      (0 = none; 1 = the immediately preceding instruction);
    * ``line_address`` -- cache-line address for LOAD/STORE (-1 otherwise);
    * ``pc`` -- branch identity for the predictor (BRANCH only, else 0);
    * ``taken`` -- actual branch outcome (BRANCH only).
    """

    op: OpClass
    dep1: int = 0
    dep2: int = 0
    line_address: int = -1
    pc: int = 0
    taken: bool = False

    def __post_init__(self) -> None:
        if self.dep1 < 0 or self.dep2 < 0:
            raise TraceError("dependency distances must be >= 0")
        if self.op in (OpClass.LOAD, OpClass.STORE):
            if self.line_address < 0:
                raise TraceError(f"{self.op.name} requires a line_address")
        elif self.line_address >= 0:
            raise TraceError(
                f"{self.op.name} must not carry a line_address"
            )

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.op in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_branch(self) -> bool:
        """True for branches."""
        return self.op is OpClass.BRANCH
