"""Memory-hierarchy adapters for the pipeline model.

:class:`CacheMemory` plugs a :class:`~repro.cache.controller.
RetentionAwareCache` into the out-of-order pipeline: loads and stores go
through the cache simulator and come back with latencies (hit latency, L2
round trips on misses, plus a replay penalty when a line turns out to be
expired or dead after the scheduler treated it as a hit).

The out-of-order core issues memory operations out of program-time order;
the cache's (in-order) event timeline clamps to the latest cycle seen,
which preserves event counts while keeping the simulator simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.config import CacheConfig
from repro.cache.controller import RetentionAwareCache
from repro.cache.stats import AccessOutcome

REPLAY_LATENCY_CYCLES: float = 6.0
"""Extra load-to-use latency when a seemingly-valid line turns out to be
expired or dead (scheduler replay; see section 4.3.2 of the paper)."""


@dataclass
class CacheMemory:
    """MemoryInterface backed by the retention-aware cache simulator."""

    cache: RetentionAwareCache
    config: CacheConfig = field(default_factory=CacheConfig)
    _clock: int = field(init=False, default=0)

    def _advance(self, cycle: int) -> int:
        self._clock = max(self._clock, int(cycle))
        return self._clock

    def _latency(self, outcome: AccessOutcome) -> float:
        if outcome is AccessOutcome.HIT:
            return float(self.config.hit_latency_cycles)
        latency = (
            self.config.hit_latency_cycles + self.config.miss_latency_cycles
        )
        if outcome in (
            AccessOutcome.MISS_EXPIRED,
            AccessOutcome.MISS_DEAD_BYPASS,
        ):
            latency += REPLAY_LATENCY_CYCLES
        return latency

    def load(self, cycle: int, line_address: int) -> float:
        """Access the cache for a load; returns the load-to-use latency."""
        outcome = self.cache.access(self._advance(cycle), line_address, False)
        return self._latency(outcome)

    def store(self, cycle: int, line_address: int) -> float:
        """Access the cache for a store; returns the acknowledge latency."""
        outcome = self.cache.access(self._advance(cycle), line_address, True)
        return self._latency(outcome)
