"""The baseline machine (paper Table 2) and its assembled pipeline.

Table 2:

    Issue width        4 instructions     Issue queues  20 INT / 15 FP
    Load queue         32 entries         Store queue   32 entries
    Reorder buffer     80 entries         I/D cache     64KB 4-way
    ITLB / DTLB        128-entry FA       Int FUs       4
    FP FUs             2                  L2            2MB 4-way
    Branch predictor   21264 tournament
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.cpu.branch import TournamentPredictor
from repro.cpu.pipeline import IdealMemory, MemoryInterface, Pipeline, PipelineResult
from repro.cpu.trace import InstructionTrace


@dataclass(frozen=True)
class CoreConfig:
    """Table 2 machine parameters."""

    issue_width: int = 4
    commit_width: int = 4
    rob_entries: int = 80
    int_queue_entries: int = 20
    fp_queue_entries: int = 15
    load_queue_entries: int = 32
    store_queue_entries: int = 32
    int_units: int = 4
    fp_units: int = 2
    l1_read_ports: int = 2
    l1_write_ports: int = 1
    mispredict_penalty_cycles: int = 7

    def __post_init__(self) -> None:
        for attr in (
            "issue_width", "commit_width", "rob_entries",
            "int_queue_entries", "fp_queue_entries", "load_queue_entries",
            "store_queue_entries", "int_units", "fp_units",
            "l1_read_ports", "l1_write_ports", "mispredict_penalty_cycles",
        ):
            if getattr(self, attr) < 1:
                raise ConfigurationError(f"CoreConfig.{attr} must be >= 1")


@dataclass
class Core:
    """An out-of-order core instance ready to run traces."""

    config: CoreConfig = field(default_factory=CoreConfig)

    def build_pipeline(self) -> Pipeline:
        """Fresh pipeline state (predictor, windows, units)."""
        predictor = TournamentPredictor(
            mispredict_penalty_cycles=self.config.mispredict_penalty_cycles
        )
        return Pipeline(
            dispatch_width=self.config.issue_width,
            commit_width=self.config.commit_width,
            rob_entries=self.config.rob_entries,
            int_queue_entries=self.config.int_queue_entries,
            fp_queue_entries=self.config.fp_queue_entries,
            load_queue_entries=self.config.load_queue_entries,
            store_queue_entries=self.config.store_queue_entries,
            int_units=self.config.int_units,
            fp_units=self.config.fp_units,
            read_ports=self.config.l1_read_ports,
            write_ports=self.config.l1_write_ports,
            predictor=predictor,
        )

    def run(
        self, trace: InstructionTrace, memory: MemoryInterface = None
    ) -> PipelineResult:
        """Run ``trace`` against ``memory`` (default: ideal L1)."""
        if memory is None:
            memory = IdealMemory()
        return self.build_pipeline().run(trace, memory)
