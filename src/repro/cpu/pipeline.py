"""Cycle-level out-of-order pipeline timing model.

A dependence-graph scheduling model of a superscalar out-of-order core
(the standard trace-driven formulation): every micro-op receives a
dispatch, ready, issue, complete, and commit cycle, constrained by

* in-order dispatch at the fetch/dispatch width,
* reorder-buffer / issue-queue / load-store-queue capacities (an
  instruction cannot dispatch until the instruction ``capacity`` slots
  ahead of it has released its entry),
* register dependencies (positional producer distances from the trace),
* functional-unit counts and latencies,
* cache-port availability for memory ops (2 loads + 1 store per cycle),
* branch mispredictions (front-end redirect after the branch resolves),
* in-order commit at the commit width.

This is the reproduction's stand-in for sim-alpha: exact enough to show
how L1 latency, misses, and refresh port blocking move IPC, while staying
fast enough to run in unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol

from repro.cpu.branch import TournamentPredictor
from repro.cpu.isa import EXECUTION_LATENCY, FP_CLASSES, OpClass
from repro.cpu.resources import FunctionalUnitPool
from repro.cpu.trace import InstructionTrace


class MemoryInterface(Protocol):
    """What the pipeline needs from the data-memory hierarchy."""

    def load(self, cycle: int, line_address: int) -> float:
        """Return the load-to-use latency in cycles."""
        ...  # pragma: no cover - protocol

    def store(self, cycle: int, line_address: int) -> float:
        """Return the store-acknowledge latency in cycles."""
        ...  # pragma: no cover - protocol


@dataclass
class IdealMemory:
    """An L1 that always hits -- the ideal 6T baseline."""

    hit_latency_cycles: int = 3

    def load(self, cycle: int, line_address: int) -> float:
        """Every load hits at the L1 latency."""
        return float(self.hit_latency_cycles)

    def store(self, cycle: int, line_address: int) -> float:
        """Every store completes at the L1 latency."""
        return float(self.hit_latency_cycles)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one pipeline run."""

    instructions: int
    cycles: int
    branch_mispredictions: int
    branches: int
    loads: int
    stores: int

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def branch_misprediction_rate(self) -> float:
        """Mispredictions per branch."""
        if self.branches == 0:
            return 0.0
        return self.branch_mispredictions / self.branches


class _Window:
    """Ring-buffer window constraint: an instruction cannot dispatch until
    the entry ``capacity`` admissions earlier has released."""

    __slots__ = ("capacity", "releases")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.releases: List[float] = []

    def constraint(self) -> float:
        """Earliest dispatch cycle permitted by this window right now."""
        if len(self.releases) < self.capacity:
            return 0.0
        return self.releases[-self.capacity]

    def admit(self, release_cycle: float) -> None:
        """Record the release time of a newly admitted entry."""
        self.releases.append(release_cycle)


class Pipeline:
    """The scheduling engine; configured and run via
    :class:`repro.cpu.core.Core`."""

    def __init__(
        self,
        dispatch_width: int,
        commit_width: int,
        rob_entries: int,
        int_queue_entries: int,
        fp_queue_entries: int,
        load_queue_entries: int,
        store_queue_entries: int,
        int_units: int,
        fp_units: int,
        read_ports: int,
        write_ports: int,
        predictor: Optional[TournamentPredictor] = None,
    ):
        self.dispatch_width = dispatch_width
        self.commit_width = commit_width
        self.rob_entries = rob_entries
        self.int_queue = _Window(int_queue_entries)
        self.fp_queue = _Window(fp_queue_entries)
        self.load_queue = _Window(load_queue_entries)
        self.store_queue = _Window(store_queue_entries)
        self.int_units = FunctionalUnitPool(int_units)
        self.fp_units = FunctionalUnitPool(fp_units)
        self.read_ports = FunctionalUnitPool(read_ports)
        self.write_ports = FunctionalUnitPool(write_ports)
        self.predictor = predictor or TournamentPredictor()

    def run(self, trace: InstructionTrace, memory: MemoryInterface) -> PipelineResult:
        """Schedule the whole trace against ``memory``; returns timing."""
        n = len(trace)
        complete = [0.0] * n
        commit_times = [0.0] * n
        ops = trace.op
        dep1 = trace.dep1
        dep2 = trace.dep2
        lines = trace.line_address
        pcs = trace.pc
        takens = trace.taken

        redirect_at = 0.0  # earliest front-end activity after a mispredict
        dispatched_in_cycle = 0
        current_dispatch_cycle = -1.0
        last_commit = 0.0
        mispredicts = 0
        branches = 0
        loads = 0
        stores = 0

        for i in range(n):
            op = OpClass(int(ops[i]))

            # --- dispatch: in-order, width-limited, window-limited ---
            dispatch = redirect_at
            if i >= self.rob_entries:
                dispatch = max(dispatch, commit_times[i - self.rob_entries])
            if op in FP_CLASSES:
                dispatch = max(dispatch, self.fp_queue.constraint())
            else:
                dispatch = max(dispatch, self.int_queue.constraint())
            if op is OpClass.LOAD:
                dispatch = max(dispatch, self.load_queue.constraint())
            elif op is OpClass.STORE:
                dispatch = max(dispatch, self.store_queue.constraint())

            if dispatch <= current_dispatch_cycle:
                dispatch = current_dispatch_cycle
                if dispatched_in_cycle >= self.dispatch_width:
                    dispatch += 1.0
                    dispatched_in_cycle = 0
            else:
                dispatched_in_cycle = 0
            current_dispatch_cycle = dispatch
            dispatched_in_cycle += 1

            # --- operand readiness ---
            ready = dispatch + 1.0
            d1, d2 = int(dep1[i]), int(dep2[i])
            if d1 and i - d1 >= 0:
                ready = max(ready, complete[i - d1])
            if d2 and i - d2 >= 0:
                ready = max(ready, complete[i - d2])

            # --- issue & execute ---
            units = self.fp_units if op in FP_CLASSES else self.int_units
            issue = units.earliest_issue(ready)
            if op is OpClass.LOAD:
                loads += 1
                issue = self.read_ports.earliest_issue(issue)
                self.read_ports.issue(issue, 1)
                latency = memory.load(int(issue), int(lines[i]))
                finish = issue + max(1.0, latency)
            elif op is OpClass.STORE:
                stores += 1
                issue = self.write_ports.earliest_issue(issue)
                self.write_ports.issue(issue, 1)
                latency = memory.store(int(issue), int(lines[i]))
                finish = issue + max(1.0, latency)
            else:
                finish = issue + EXECUTION_LATENCY[op]
            units.issue(issue, EXECUTION_LATENCY[op] or 1)

            complete[i] = finish

            # --- commit: in-order, width-limited ---
            commit = max(finish, last_commit + 1.0 / self.commit_width)
            commit_times[i] = commit
            last_commit = commit

            # --- window releases ---
            if op in FP_CLASSES:
                self.fp_queue.admit(issue)
            else:
                self.int_queue.admit(issue)
            if op is OpClass.LOAD:
                self.load_queue.admit(commit)
            elif op is OpClass.STORE:
                self.store_queue.admit(commit)

            # --- branch handling ---
            if op is OpClass.BRANCH:
                branches += 1
                if self.predictor.update(int(pcs[i]), bool(takens[i])):
                    mispredicts += 1
                    redirect_at = max(
                        redirect_at,
                        finish + self.predictor.mispredict_penalty_cycles,
                    )

        total_cycles = int(last_commit) + 1 if n else 0
        return PipelineResult(
            instructions=n,
            cycles=total_cycles,
            branch_mispredictions=mispredicts,
            branches=branches,
            loads=loads,
            stores=stores,
        )
