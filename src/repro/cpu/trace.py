"""Instruction trace container (structure-of-arrays for speed).

:class:`InstructionTrace` stores a micro-op stream as parallel numpy
arrays so both the pipeline model and the cache-only fast path can walk it
cheaply.  Conversions to/from :class:`~repro.cpu.isa.MicroOp` objects are
provided for tests and small hand-written programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import TraceError
from repro.cpu.isa import MicroOp, OpClass


@dataclass
class InstructionTrace:
    """A micro-op stream as parallel arrays.

    Arrays (all length ``n``):

    * ``op`` (int8) -- :class:`OpClass` values;
    * ``dep1`` / ``dep2`` (int32) -- producer distances, 0 = none;
    * ``line_address`` (int64) -- cache line for memory ops, -1 otherwise;
    * ``pc`` (int64) -- branch identity, 0 for non-branches;
    * ``taken`` (bool) -- branch outcome.
    """

    op: np.ndarray
    dep1: np.ndarray
    dep2: np.ndarray
    line_address: np.ndarray
    pc: np.ndarray
    taken: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        length = len(self.op)
        for attr in ("dep1", "dep2", "line_address", "pc", "taken"):
            if len(getattr(self, attr)) != length:
                raise TraceError(f"trace array {attr!r} length mismatch")

    def __len__(self) -> int:
        return len(self.op)

    def __iter__(self) -> Iterator[MicroOp]:
        for i in range(len(self)):
            yield self.micro_op(i)

    def micro_op(self, index: int) -> MicroOp:
        """Materialise entry ``index`` as a :class:`MicroOp`."""
        return MicroOp(
            op=OpClass(int(self.op[index])),
            dep1=int(self.dep1[index]),
            dep2=int(self.dep2[index]),
            line_address=int(self.line_address[index]),
            pc=int(self.pc[index]),
            taken=bool(self.taken[index]),
        )

    @classmethod
    def from_micro_ops(
        cls, ops: Iterable[MicroOp], name: str = "trace"
    ) -> "InstructionTrace":
        """Build a trace from micro-op objects."""
        ops = list(ops)
        return cls(
            op=np.array([int(o.op) for o in ops], dtype=np.int8),
            dep1=np.array([o.dep1 for o in ops], dtype=np.int32),
            dep2=np.array([o.dep2 for o in ops], dtype=np.int32),
            line_address=np.array(
                [o.line_address for o in ops], dtype=np.int64
            ),
            pc=np.array([o.pc for o in ops], dtype=np.int64),
            taken=np.array([o.taken for o in ops], dtype=bool),
            name=name,
        )

    # --- summary statistics -------------------------------------------

    @property
    def memory_mask(self) -> np.ndarray:
        """Boolean mask of memory micro-ops."""
        return (self.op == int(OpClass.LOAD)) | (self.op == int(OpClass.STORE))

    @property
    def store_mask(self) -> np.ndarray:
        """Boolean mask of stores."""
        return self.op == int(OpClass.STORE)

    @property
    def memory_fraction(self) -> float:
        """Fraction of micro-ops that touch memory."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self.memory_mask))

    @property
    def branch_fraction(self) -> float:
        """Fraction of micro-ops that are branches."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self.op == int(OpClass.BRANCH)))

    def memory_references(self) -> "MemoryReferenceStream":
        """Extract the (index, line, is_store) stream of memory ops."""
        mask = self.memory_mask
        return MemoryReferenceStream(
            instruction_index=np.nonzero(mask)[0].astype(np.int64),
            line_address=self.line_address[mask],
            is_store=self.store_mask[mask],
        )


@dataclass
class MemoryReferenceStream:
    """The memory-op subsequence of a trace, for cache-only simulation.

    ``cycles_at_ipc`` maps instruction indices to approximate cycle stamps
    for a target IPC, which is how the open-loop cache simulations assign
    timestamps to references.
    """

    instruction_index: np.ndarray
    line_address: np.ndarray
    is_store: np.ndarray

    def __len__(self) -> int:
        return len(self.instruction_index)

    def cycles_at_ipc(self, ipc: float) -> np.ndarray:
        """Reference timestamps assuming the core sustains ``ipc``."""
        if ipc <= 0:
            raise TraceError(f"ipc must be positive, got {ipc}")
        return (self.instruction_index / ipc).astype(np.int64)
