"""Alpha 21264-style tournament branch predictor (Table 2).

Three structures, as in the 21264:

* a **local** predictor: 1024-entry table of 10-bit local histories
  indexing 1024 3-bit saturating counters;
* a **global** predictor: 4096 2-bit counters indexed by the 12-bit
  global history;
* a **choice** predictor: 4096 2-bit counters (indexed by global history)
  that picks which of the two to trust, trained when they disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

LOCAL_HISTORY_ENTRIES = 1024
LOCAL_HISTORY_BITS = 10
LOCAL_COUNTER_ENTRIES = 1024
LOCAL_COUNTER_MAX = 7  # 3-bit
GLOBAL_ENTRIES = 4096
GLOBAL_HISTORY_BITS = 12
TWO_BIT_MAX = 3


@dataclass
class TournamentPredictor:
    """The 21264 tournament predictor."""

    mispredict_penalty_cycles: int = 7
    _local_history: List[int] = field(init=False, repr=False)
    _local_counters: List[int] = field(init=False, repr=False)
    _global_counters: List[int] = field(init=False, repr=False)
    _choice_counters: List[int] = field(init=False, repr=False)
    _global_history: int = field(init=False, default=0, repr=False)
    predictions: int = field(init=False, default=0)
    mispredictions: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._local_history = [0] * LOCAL_HISTORY_ENTRIES
        # Initialise counters weakly taken / weakly trusting-local.
        self._local_counters = [LOCAL_COUNTER_MAX // 2 + 1] * LOCAL_COUNTER_ENTRIES
        self._global_counters = [TWO_BIT_MAX // 2 + 1] * GLOBAL_ENTRIES
        self._choice_counters = [TWO_BIT_MAX // 2] * GLOBAL_ENTRIES

    # --- index helpers ---------------------------------------------------

    def _local_index(self, pc: int) -> int:
        return pc % LOCAL_HISTORY_ENTRIES

    def _global_index(self) -> int:
        return self._global_history % GLOBAL_ENTRIES

    # --- prediction --------------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        local_hist = self._local_history[self._local_index(pc)]
        local_pred = self._local_counters[local_hist] > LOCAL_COUNTER_MAX // 2
        global_pred = (
            self._global_counters[self._global_index()] > TWO_BIT_MAX // 2
        )
        use_global = (
            self._choice_counters[self._global_index()] > TWO_BIT_MAX // 2
        )
        return global_pred if use_global else local_pred

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train on the actual outcome, and return *mispredicted*."""
        local_slot = self._local_index(pc)
        local_hist = self._local_history[local_slot]
        global_slot = self._global_index()

        local_pred = self._local_counters[local_hist] > LOCAL_COUNTER_MAX // 2
        global_pred = self._global_counters[global_slot] > TWO_BIT_MAX // 2
        use_global = self._choice_counters[global_slot] > TWO_BIT_MAX // 2
        prediction = global_pred if use_global else local_pred

        # Train the chooser only when the components disagree.
        if local_pred != global_pred:
            if global_pred == taken:
                self._choice_counters[global_slot] = min(
                    TWO_BIT_MAX, self._choice_counters[global_slot] + 1
                )
            else:
                self._choice_counters[global_slot] = max(
                    0, self._choice_counters[global_slot] - 1
                )

        # Train both direction predictors.
        if taken:
            self._local_counters[local_hist] = min(
                LOCAL_COUNTER_MAX, self._local_counters[local_hist] + 1
            )
            self._global_counters[global_slot] = min(
                TWO_BIT_MAX, self._global_counters[global_slot] + 1
            )
        else:
            self._local_counters[local_hist] = max(
                0, self._local_counters[local_hist] - 1
            )
            self._global_counters[global_slot] = max(
                0, self._global_counters[global_slot] - 1
            )

        # Update histories.
        self._local_history[local_slot] = (
            (local_hist << 1) | int(taken)
        ) % (1 << LOCAL_HISTORY_BITS)
        self._global_history = (
            (self._global_history << 1) | int(taken)
        ) % (1 << GLOBAL_HISTORY_BITS)

        self.predictions += 1
        mispredicted = prediction != taken
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        """Fraction of predictions that were wrong so far."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions
