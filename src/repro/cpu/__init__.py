"""Out-of-order core timing model (the paper's Table 2 machine).

The paper runs sim-alpha, a validated Alpha 21264 simulator, over SPEC2000
checkpoints.  This package provides the equivalent substrate for the
reproduction:

* :mod:`repro.cpu.isa` / :mod:`repro.cpu.trace` -- micro-op trace records;
* :mod:`repro.cpu.branch` -- the 21264-style tournament predictor;
* :mod:`repro.cpu.resources` -- ROB, issue queues, LSQ, functional units;
* :mod:`repro.cpu.pipeline` -- the cycle-level out-of-order engine;
* :mod:`repro.cpu.core` -- the Table 2 configuration and the assembled core;
* :mod:`repro.cpu.perfmodel` -- the fast analytic IPC model used for the
  Monte-Carlo sweeps (cross-validated against the pipeline in tests).
"""

from repro.cpu.isa import OpClass, MicroOp
from repro.cpu.trace import InstructionTrace
from repro.cpu.branch import TournamentPredictor
from repro.cpu.resources import FunctionalUnitPool, ResourceWindow
from repro.cpu.core import Core, CoreConfig
from repro.cpu.pipeline import IdealMemory, PipelineResult
from repro.cpu.memory import CacheMemory
from repro.cpu.perfmodel import AnalyticCPUModel, PerformanceEstimate

__all__ = [
    "OpClass",
    "MicroOp",
    "InstructionTrace",
    "TournamentPredictor",
    "FunctionalUnitPool",
    "ResourceWindow",
    "Core",
    "CoreConfig",
    "PipelineResult",
    "IdealMemory",
    "CacheMemory",
    "AnalyticCPUModel",
    "PerformanceEstimate",
]
