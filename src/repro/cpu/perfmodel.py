"""Fast analytic IPC model for the Monte-Carlo sweeps.

Running the pipeline model for every (chip x benchmark x scheme) point of
the 100-chip studies would be needlessly slow; what those sweeps need is
how the cache simulator's event counts move IPC.  The standard first-order
decomposition does that:

    CPI = CPI_base                                  (ideal-L1 baseline)
        + extra_mpi * miss_latency * (1 - overlap)  (extra misses)
        + replay_mpi * replay_penalty               (expired/dead replays)
        + blocked_fraction * load_conflict_term     (refresh port blocking)
        + stall_cycles / instructions               (write-buffer stalls)

* ``extra_mpi`` -- misses per instruction beyond the ideal cache's
  cold/conflict misses on the same trace;
* ``overlap`` -- the profile's OoO miss-latency hiding factor;
* replays: an access to an expired or dead line looks like a hit until the
  data turns out to be unusable, forcing a pipeline replay/flush on top of
  the L2 round trip (paper section 4.3.2);
* port blocking: a refresh or RSP line move holds one read and one write
  port; a load that collides waits a cycle.

The model is cross-validated against the pipeline simulator in the test
suite (same trace, same cache -> IPC within a coarse band).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats
from repro.workloads.profiles import BenchmarkProfile

REPLAY_FLUSH_PENALTY_CYCLES: float = 6.0
"""Extra pipeline cycles charged per expired/dead-line miss (scheduler
replay and dependent-instruction flush, on top of the L2 access)."""

LOAD_CONFLICT_WEIGHT: float = 0.5
"""Probability-weight of a one-cycle delay when a load collides with a
refresh/move that holds a read port."""

HIT_LATENCY_EXPOSURE: float = 0.5
"""Fraction of extra L1 load-to-use cycles the OoO scheduler cannot
hide.  Charged only for the cycles a technology's hit latency exceeds
the structural 3-cycle array latency (zero for the paper's designs)."""


@dataclass(frozen=True)
class PerformanceEstimate:
    """IPC estimate with its additive CPI breakdown."""

    ipc: float
    cpi_base: float
    cpi_extra_miss: float
    cpi_replay: float
    cpi_port_block: float
    cpi_write_stall: float

    @property
    def cpi(self) -> float:
        """Total cycles per instruction."""
        return (
            self.cpi_base
            + self.cpi_extra_miss
            + self.cpi_replay
            + self.cpi_port_block
            + self.cpi_write_stall
        )

    def slowdown_vs(self, baseline_ipc: float) -> float:
        """Performance relative to ``baseline_ipc`` (1.0 = equal)."""
        if baseline_ipc <= 0:
            raise ConfigurationError("baseline_ipc must be positive")
        return self.ipc / baseline_ipc


@dataclass
class AnalyticCPUModel:
    """First-order CPI model bound to one benchmark profile."""

    profile: BenchmarkProfile
    cache_config: CacheConfig = field(default_factory=CacheConfig)

    @property
    def baseline_cpi(self) -> float:
        """Ideal-L1 cycles per instruction."""
        return 1.0 / self.profile.base_ipc

    @property
    def baseline_ipc(self) -> float:
        """Ideal-L1 instructions per cycle."""
        return self.profile.base_ipc

    def miss_latency_cycles(self, l2_miss_rate: Optional[float] = None) -> float:
        """Average L1-miss service latency for this benchmark, cycles.

        ``l2_miss_rate`` overrides the profile's statistical value -- used
        when a real L2 was simulated and its miss rate measured.
        """
        config = self.cache_config
        rate = (
            self.profile.l2_miss_rate if l2_miss_rate is None else l2_miss_rate
        )
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("l2_miss_rate must be in [0, 1]")
        return (
            (1.0 - rate) * config.l2_latency_cycles
            + rate * config.memory_latency_cycles
        )

    def estimate(
        self,
        stats: CacheStats,
        instructions: int,
        window_cycles: int,
        baseline_stats: Optional[CacheStats] = None,
        port_block_parallelism: float = 1.0,
        l2_miss_rate: Optional[float] = None,
    ) -> PerformanceEstimate:
        """IPC for a cache-simulation window.

        ``baseline_stats`` are the ideal cache's stats on the same trace
        (its cold/conflict misses are already priced into ``base_ipc``);
        omit them to charge every miss.

        ``port_block_parallelism`` derates refresh/move port blocking for
        line-level schemes: each line refresh only occupies its own
        sub-array pair, so with the paper's 4 pairs a demand access
        collides with only ~1/4 of the blocked cycles.  Global refresh
        blocks the whole cache (parallelism 1).
        """
        if instructions <= 0:
            raise ConfigurationError("instructions must be positive")
        if window_cycles <= 0:
            raise ConfigurationError("window_cycles must be positive")
        if port_block_parallelism < 1.0:
            raise ConfigurationError("port_block_parallelism must be >= 1")

        baseline_misses = baseline_stats.misses if baseline_stats else 0
        extra_misses = max(0, stats.misses - baseline_misses)
        extra_mpi = extra_misses / instructions
        replay_mpi = (
            stats.misses_expired + stats.misses_dead_bypass
        ) / instructions

        effective_latency = self.miss_latency_cycles(l2_miss_rate) * (
            1.0 - self.profile.miss_overlap
        )
        cpi_miss = extra_mpi * effective_latency
        cpi_replay = replay_mpi * REPLAY_FLUSH_PENALTY_CYCLES

        blocked_fraction = (
            min(1.0, stats.blocked_cycles / window_cycles)
            / port_block_parallelism
        )
        loads_per_instr = self.profile.mem_refs_per_instr * (
            1.0 - self.profile.store_fraction
        )
        loads_per_cycle = min(1.0, self.profile.base_ipc * loads_per_instr)
        cpi_ports = (
            blocked_fraction
            * loads_per_instr
            * loads_per_cycle
            * LOAD_CONFLICT_WEIGHT
        )

        cpi_stall = stats.write_buffer_stall_cycles / instructions
        extra_write_cycles = self.cache_config.write_hit_extra_cycles
        if extra_write_cycles:
            # Asymmetric-write technologies (STT-RAM): every store holds
            # the single write port extra cycles; with one write port the
            # occupancy serialises into the store stream.
            cpi_stall += stats.stores / instructions * extra_write_cycles
        extra_hit_cycles = (
            self.cache_config.hit_latency_cycles
            - self.cache_config.geometry.access_latency_cycles
        )
        if extra_hit_cycles > 0:
            # Slower-array technologies (variation-afflicted DRAM): every
            # load-to-use chain sees the extra hit cycles; the scheduler
            # hides part of them.
            cpi_stall += (
                loads_per_instr * extra_hit_cycles * HIT_LATENCY_EXPOSURE
            )

        estimate = PerformanceEstimate(
            ipc=0.0,  # placeholder, replaced below
            cpi_base=self.baseline_cpi,
            cpi_extra_miss=cpi_miss,
            cpi_replay=cpi_replay,
            cpi_port_block=cpi_ports,
            cpi_write_stall=cpi_stall,
        )
        total_cpi = estimate.cpi
        return PerformanceEstimate(
            ipc=1.0 / total_cpi,
            cpi_base=estimate.cpi_base,
            cpi_extra_miss=estimate.cpi_extra_miss,
            cpi_replay=estimate.cpi_replay,
            cpi_port_block=estimate.cpi_port_block,
            cpi_write_stall=estimate.cpi_write_stall,
        )

    def estimate_global_refresh(self, duty: float) -> PerformanceEstimate:
        """IPC under the global refresh scheme with refresh duty ``duty``.

        The global scheme never loses data, so the only cost is the port
        blocking while a pass runs (``duty`` = pass time / retention).
        """
        if not 0.0 <= duty <= 1.0:
            raise ConfigurationError("duty must be in [0, 1]")
        loads_per_instr = self.profile.mem_refs_per_instr * (
            1.0 - self.profile.store_fraction
        )
        loads_per_cycle = min(1.0, self.profile.base_ipc * loads_per_instr)
        cpi_ports = (
            duty * loads_per_instr * loads_per_cycle * LOAD_CONFLICT_WEIGHT
        )
        total = self.baseline_cpi + cpi_ports
        return PerformanceEstimate(
            ipc=1.0 / total,
            cpi_base=self.baseline_cpi,
            cpi_extra_miss=0.0,
            cpi_replay=0.0,
            cpi_port_block=cpi_ports,
            cpi_write_stall=0.0,
        )
