"""Core back-end resources: functional units and windowed structures.

The pipeline model books each micro-op into the reorder buffer, the
appropriate issue queue, and (for memory ops) the load/store queue, and
schedules its execution onto a functional unit.  These helpers keep the
resource bookkeeping out of the pipeline loop:

* :class:`FunctionalUnitPool` -- k units; each issue occupies one unit
  for the op latency (fully pipelined units occupy one cycle).
* :class:`ResourceWindow` -- a capacity-limited window (ROB, IQ, LSQ)
  tracked by the release times of its occupants.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError


@dataclass
class FunctionalUnitPool:
    """A pool of identical functional units.

    ``pipelined`` units accept a new op every cycle and only the *issue
    slot* is booked; non-pipelined units are busy for the full latency.
    """

    count: int
    pipelined: bool = True
    _busy_until: List[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("functional unit count must be >= 1")
        self._busy_until = [0.0] * self.count

    def earliest_issue(self, ready_cycle: float) -> float:
        """Earliest cycle >= ``ready_cycle`` at which a unit can accept."""
        best = min(self._busy_until)
        return max(ready_cycle, best)

    def issue(self, cycle: float, latency: int) -> None:
        """Book the least-loaded unit starting at ``cycle``."""
        index = min(range(self.count), key=lambda i: self._busy_until[i])
        occupancy = 1 if self.pipelined else max(1, latency)
        self._busy_until[index] = cycle + occupancy

    def reset(self) -> None:
        """Forget all bookings."""
        self._busy_until = [0.0] * self.count


@dataclass
class ResourceWindow:
    """A capacity-limited instruction window (ROB / issue queue / LSQ).

    Entries are tracked by release cycle; ``admit`` returns the earliest
    cycle at which a new entry fits (stalling dispatch until then).
    """

    capacity: int
    name: str = "window"
    _releases: List[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"{self.name} capacity must be >= 1, got {self.capacity}"
            )
        self._releases = []

    def admit(self, arrival_cycle: float, release_cycle: float) -> float:
        """Admit an entry; returns the cycle dispatch can actually proceed.

        If the window is full at ``arrival_cycle`` the entry must wait for
        the oldest occupant to release.
        """
        heapq.heappush(self._releases, release_cycle)
        if len(self._releases) <= self.capacity:
            return arrival_cycle
        # Window over-subscribed: dispatch waits for the earliest release.
        earliest = heapq.heappop(self._releases)
        return max(arrival_cycle, earliest)

    @property
    def occupancy(self) -> int:
        """Entries currently tracked (pending releases)."""
        return len(self._releases)

    def reset(self) -> None:
        """Forget all entries."""
        self._releases = []
