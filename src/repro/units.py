"""Physical constants and unit helpers.

The library works internally in SI units (seconds, volts, amperes, watts,
meters, farads) unless a function name explicitly says otherwise (``_ns``,
``_ps``, ``_mw`` ...).  These helpers keep conversions explicit and
self-documenting at call sites.
"""

from __future__ import annotations

# --- fundamental constants -------------------------------------------------

BOLTZMANN: float = 1.380649e-23
"""Boltzmann constant in J/K."""

ELECTRON_CHARGE: float = 1.602176634e-19
"""Elementary charge in C."""

EPSILON_0: float = 8.8541878128e-12
"""Vacuum permittivity in F/m."""

EPSILON_SIO2: float = 3.9 * EPSILON_0
"""Permittivity of silicon dioxide in F/m."""

COPPER_RESISTIVITY: float = 2.2e-8
"""Effective resistivity of scaled copper interconnect in Ohm*m.

Slightly above the bulk value (1.7e-8) to account for surface and grain
boundary scattering in narrow wires, per standard interconnect models.
"""

CELSIUS_OFFSET: float = 273.15

SIMULATION_TEMPERATURE_C: float = 80.0
"""All circuit simulations in the paper are run at 80 degrees Celsius."""


def thermal_voltage(temperature_c: float = SIMULATION_TEMPERATURE_C) -> float:
    """Return kT/q in volts at the given temperature in Celsius.

    At the paper's 80C simulation temperature this is about 30.4mV.
    """
    kelvin = temperature_c + CELSIUS_OFFSET
    return BOLTZMANN * kelvin / ELECTRON_CHARGE


# --- time ------------------------------------------------------------------

def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * 1e-12


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * 1e9


def to_ps(seconds: float) -> float:
    """Convert seconds to picoseconds."""
    return seconds * 1e12


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


# --- length ----------------------------------------------------------------

def nm(value: float) -> float:
    """Convert nanometers to meters."""
    return value * 1e-9


def um(value: float) -> float:
    """Convert micrometers to meters."""
    return value * 1e-6


def to_nm(meters: float) -> float:
    """Convert meters to nanometers."""
    return meters * 1e9


def to_um(meters: float) -> float:
    """Convert meters to micrometers."""
    return meters * 1e6


# --- power / energy --------------------------------------------------------

def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * 1e-3


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1e3


def fj(value: float) -> float:
    """Convert femtojoules to joules."""
    return value * 1e-15


def to_fj(joules: float) -> float:
    """Convert joules to femtojoules."""
    return joules * 1e15


def pj(value: float) -> float:
    """Convert picojoules to joules."""
    return value * 1e-12


def to_pj(joules: float) -> float:
    """Convert joules to picojoules."""
    return joules * 1e12


# --- frequency -------------------------------------------------------------

def ghz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * 1e9


def to_ghz(hertz: float) -> float:
    """Convert hertz to gigahertz."""
    return hertz / 1e9


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` into seconds."""
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert a duration in seconds to (fractional) cycles at ``frequency_hz``."""
    return seconds * frequency_hz
