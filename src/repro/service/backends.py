"""Pluggable execution backends behind ``EngineConfig.backend``.

An :class:`ExecutionBackend` is the protocol surface a work-distribution
strategy implements: given an :class:`~repro.engine.config.EngineConfig`
it produces a *batch executor* whose ``run_batch`` streams
``(index, result)`` pairs for a batch of content-keyed items and whose
``close`` releases whatever the strategy holds (processes, queue
directories, connections).  The
:class:`~repro.engine.parallel.ParallelChipRunner` resolves non-local
backend names through :func:`get_execution_backend` lazily, so the
engine never imports this package for the default path and third-party
backends (a remote-host fleet speaking the same queue protocol, say)
plug in with :func:`register_execution_backend` -- the two built-ins are
registered the same way a remote backend would be.

Executor contract (what a remote-host backend must provide):

* ``run_batch(fn, items, notify, label)`` -- ``fn`` is a module-level
  callable (crosses boundaries by name), ``items`` are
  :class:`BatchItem` records whose ``key`` is the content digest of
  ``(fn, task)``, ``notify`` accepts typed
  :mod:`repro.engine.events` records for supervision reporting.  Yields
  every item's ``(index, result)`` exactly once, in any order; raises
  :class:`~repro.errors.ExecutionError` when an item exhausts its retry
  budget.  Results must be bit-identical to inline execution of
  ``fn(task)`` -- the cross-backend identity tests gate this.
* ``close()`` -- idempotent teardown.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.errors import ConfigurationError, ExecutionError
from repro.engine.config import (
    EngineConfig,
    LOCAL_BACKEND,
    SUBPROCESS_FLEET_BACKEND,
)
from repro.engine.events import EngineEvent, TaskRetried


@dataclass(frozen=True)
class BatchItem:
    """One unit of backend work: batch position, content key, payload."""

    index: int
    key: str
    task: Any


class BatchExecutor(abc.ABC):
    """One live execution strategy instance (see the module contract)."""

    @abc.abstractmethod
    def run_batch(
        self,
        fn: Callable[[Any], Any],
        items: List[BatchItem],
        notify: Callable[[EngineEvent], None],
        label: str = "batch",
    ) -> Iterator[Tuple[int, Any]]:
        """Yield every item's ``(index, result)`` exactly once."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release held resources (idempotent)."""


class ExecutionBackend(abc.ABC):
    """Factory for batch executors, keyed by ``EngineConfig.backend``."""

    name: str = ""

    @abc.abstractmethod
    def executor(self, config: EngineConfig) -> BatchExecutor:
        """A live executor honouring ``config``'s knobs."""


class _InlineExecutor(BatchExecutor):
    """Serial in-process execution with the config's retry budget.

    The reference implementation of the executor contract -- and what
    the ``"local"`` name resolves to when a service routes through the
    registry explicitly.  (The runner's own local path never comes here;
    it keeps its historical supervised pool/serial code bit for bit.)
    """

    def __init__(self, config: EngineConfig):
        self.config = config

    def run_batch(
        self,
        fn: Callable[[Any], Any],
        items: List[BatchItem],
        notify: Callable[[EngineEvent], None],
        label: str = "batch",
    ) -> Iterator[Tuple[int, Any]]:
        for item in items:
            failures = 0
            while True:
                try:
                    value = fn(item.task)
                    break
                except Exception as exc:
                    failures += 1
                    if failures > self.config.max_retries:
                        raise ExecutionError(
                            f"task {item.index} of batch {label!r} failed "
                            f"{failures} times; giving up"
                        ) from exc
                    notify(TaskRetried(label, item.index, failures, repr(exc)))
                    time.sleep(self.config.retry_backoff(failures))
            yield item.index, value

    def close(self) -> None:
        pass


class LocalBackend(ExecutionBackend):
    """The in-process strategy, as a registry entry."""

    name = LOCAL_BACKEND

    def executor(self, config: EngineConfig) -> BatchExecutor:
        return _InlineExecutor(config)


class SubprocessFleetBackend(ExecutionBackend):
    """Persistent worker processes over a durable on-disk queue."""

    name = SUBPROCESS_FLEET_BACKEND

    def executor(self, config: EngineConfig) -> BatchExecutor:
        from repro.service.fleet import SubprocessFleetExecutor

        return SubprocessFleetExecutor(config)


_BACKENDS: Dict[str, ExecutionBackend] = {}


def register_execution_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add (or re-register) a backend; returns it for assignment."""
    if not backend.name:
        raise ConfigurationError("execution backend name must be non-empty")
    _BACKENDS[backend.name] = backend
    return backend


def get_execution_backend(name: str) -> ExecutionBackend:
    """Look up one registered execution backend by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; available: "
            f"{sorted(_BACKENDS)}"
        ) from None


def execution_backend_names() -> Tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_BACKENDS))


register_execution_backend(LocalBackend())
register_execution_backend(SubprocessFleetBackend())


__all__ = [
    "BatchExecutor",
    "BatchItem",
    "ExecutionBackend",
    "LocalBackend",
    "SubprocessFleetBackend",
    "execution_backend_names",
    "get_execution_backend",
    "register_execution_backend",
]
