"""Persistent fleet worker: pull, execute, record, repeat.

``python -m repro.service.worker --queue DIR --worker-id W`` runs the
loop one subprocess-fleet worker executes: claim a task envelope from
the :class:`~repro.service.queue.DurableTaskQueue`, resolve its function
by ``module:qualname``, run it, and durably record ``("ok", result)`` or
``("error", reason)``.  The worker exits when the queue's stop sentinel
appears or its coordinating parent process dies (``--parent-pid``), so
an abandoned fleet never outlives its run.

Workers hold the same per-process evaluator LRU as pool workers
(``--evaluator-cache-size`` mirrors the pool initializer), which is what
makes a persistent fleet amortise trace construction across many jobs.
"""

from __future__ import annotations

import argparse
import importlib
import os
import pathlib
import time
import traceback
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.service.queue import DurableTaskQueue, ERROR, OK

#: How long an idle worker sleeps between claim attempts.
IDLE_POLL_S = 0.02


def resolve_function(module: str, qualname: str) -> Any:
    """Import the module-level callable an envelope names."""
    obj: Any = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ConfigurationError(
            f"{module}:{qualname} resolved to a non-callable {obj!r}"
        )
    return obj


def _parent_alive(parent_pid: Optional[int]) -> bool:
    if parent_pid is None:
        return True
    try:
        os.kill(parent_pid, 0)
    except OSError:
        return False
    return True


def serve(
    queue_dir: pathlib.Path,
    worker_id: str,
    parent_pid: Optional[int] = None,
    evaluator_cache_size: Optional[int] = None,
    idle_poll_s: float = IDLE_POLL_S,
    max_tasks: Optional[int] = None,
) -> int:
    """Run the worker loop; returns the number of tasks executed.

    ``max_tasks`` exists for tests (execute N tasks then return); the
    fleet runs with it unset and exits on stop/orphan only.
    """
    queue = DurableTaskQueue(queue_dir)
    queue.write_worker_pid(worker_id, os.getpid())
    if evaluator_cache_size is not None:
        from repro.engine.parallel import set_evaluator_cache_size

        set_evaluator_cache_size(evaluator_cache_size)
    executed = 0
    while not queue.stop_requested() and _parent_alive(parent_pid):
        if max_tasks is not None and executed >= max_tasks:
            break
        claimed = queue.claim(worker_id)
        if claimed is None:
            time.sleep(idle_poll_s)
            continue
        key, envelope = claimed
        try:
            fn = resolve_function(envelope.fn_module, envelope.fn_qualname)
            value = fn(envelope.task)
            status, payload = OK, value
        except BaseException as exc:
            status = ERROR
            payload = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
        try:
            queue.complete(worker_id, key, status, payload)
        except Exception:
            # An unpicklable result value: record the failure shape
            # instead so the coordinator can retry or surface it.
            queue.complete(
                worker_id, key, ERROR,
                f"result for {key[:12]} could not be serialised",
            )
        executed += 1
    return executed


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        description="Run one persistent fleet worker over a durable queue."
    )
    parser.add_argument("--queue", type=pathlib.Path, required=True)
    parser.add_argument("--worker-id", type=str, required=True)
    parser.add_argument("--parent-pid", type=int, default=None)
    parser.add_argument("--evaluator-cache-size", type=int, default=None)
    parser.add_argument("--idle-poll", type=float, default=IDLE_POLL_S)
    args = parser.parse_args(argv)
    serve(
        args.queue,
        args.worker_id,
        parent_pid=args.parent_pid,
        evaluator_cache_size=args.evaluator_cache_size,
        idle_poll_s=args.idle_poll,
    )


if __name__ == "__main__":
    main()


__all__ = ["IDLE_POLL_S", "main", "resolve_function", "serve"]
