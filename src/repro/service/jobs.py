"""Job specs, statuses, and handles for the execution service.

A *job* is one registered experiment executed under one JSON-able
context specification.  Everything about a job lives in its directory
under the service root::

    jobs/<job_id>/spec.json      the JobSpec (rebuildable context)
    jobs/<job_id>/status.json    the JobStatus (atomically replaced)
    jobs/<job_id>/claim          O_EXCL pid file of the running process
    jobs/<job_id>/cancel         cancellation marker (presence = cancel)
    jobs/<job_id>/events.jsonl   encoded typed engine events, in order
    jobs/<job_id>/checkpoints/   the job's RunJournal directory
    jobs/<job_id>/result.pkl     the pickled experiment result
    jobs/<job_id>/report.txt     the paper-style text report

Specs are deliberately *values*, not pickled contexts: a service
restarted after a crash rebuilds the identical
:class:`~repro.experiments.runner.ExperimentContext` from ``spec.json``,
and the journal under ``checkpoints/`` plus the content-keyed caches
make the re-run bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.events import EngineEvent
    from repro.service.api import ExecutionService

#: Job lifecycle states, in rough order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """The JSON-able description of one submitted job."""

    experiment: str
    chips: int = 60
    refs: int = 8000
    seed: int = 2007
    technology: str = "3t1d"
    geometry: Optional[str] = None
    """``SIZEKB:WAYS[:BANKS]`` spec string, or ``None`` for the paper
    point (same grammar as the ``--geometry`` CLI flag)."""
    workers: Optional[int] = None
    """Pool width override for this job; ``None`` uses the service's
    engine template."""
    backend: Optional[str] = None
    """Execution backend override (e.g. ``"subprocess-fleet"``)."""
    fleet_size: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ConfigurationError("job spec needs an experiment name")
        if self.chips < 1 or self.refs < 1:
            raise ConfigurationError(
                "job spec chips/refs must be >= 1, got "
                f"{self.chips}/{self.refs}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "chips": self.chips,
            "refs": self.refs,
            "seed": self.seed,
            "technology": self.technology,
            "geometry": self.geometry,
            "workers": self.workers,
            "backend": self.backend,
            "fleet_size": self.fleet_size,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in record.items() if k in known})


@dataclass
class JobStatus:
    """One job's externally visible state snapshot."""

    job_id: str
    state: str = QUEUED
    experiment: str = ""
    cached: bool = False
    """True when the result came straight from the shared ResultCache
    (the fleet-wide dedupe signal the CI gate asserts on)."""
    cache_hits: int = 0
    """Shared-cache hits the service recorded while this job resolved."""
    detail: str = ""
    """Failure traceback / cancellation note; empty otherwise."""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "experiment": self.experiment,
            "cached": self.cached,
            "cache_hits": self.cache_hits,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "JobStatus":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in record.items() if k in known})


@dataclass(frozen=True)
class JobHandle:
    """Client-side reference to one submitted job.

    Thin sugar over the service's job-id API: every method delegates, so
    a handle stays valid across service restarts (it holds no state
    beyond the id).
    """

    service: "ExecutionService" = field(repr=False)
    job_id: str

    def status(self) -> JobStatus:
        return self.service.status(self.job_id)

    def events(self, follow: bool = False) -> Iterator["EngineEvent"]:
        return self.service.events(self.job_id, follow=follow)

    def result(self, timeout: Optional[float] = None) -> Any:
        return self.service.result(self.job_id, timeout=timeout)

    def cancel(self) -> bool:
        return self.service.cancel(self.job_id)

    def wait(self, timeout: Optional[float] = None) -> JobStatus:
        return self.service.wait(self.job_id, timeout=timeout)


# ----------------------------------------------------------------------
# job-directory primitives (shared by the service and its CLI)
# ----------------------------------------------------------------------


def write_status(job_dir: pathlib.Path, status: JobStatus) -> None:
    """Atomically replace the job's status snapshot."""
    payload = json.dumps(status.to_dict(), indent=2) + "\n"
    tmp = job_dir / "status.json.tmp"
    tmp.write_text(payload)
    os.replace(tmp, job_dir / "status.json")


def read_status(job_dir: pathlib.Path) -> JobStatus:
    """The job's current status snapshot."""
    path = job_dir / "status.json"
    try:
        return JobStatus.from_dict(json.loads(path.read_text()))
    except FileNotFoundError:
        raise ConfigurationError(
            f"no such job: {job_dir.name!r} (missing {path})"
        ) from None


def write_spec(job_dir: pathlib.Path, spec: JobSpec) -> None:
    (job_dir / "spec.json").write_text(
        json.dumps(spec.to_dict(), indent=2) + "\n"
    )


def read_spec(job_dir: pathlib.Path) -> JobSpec:
    return JobSpec.from_dict(
        json.loads((job_dir / "spec.json").read_text())
    )


def try_claim(job_dir: pathlib.Path, pid: int) -> bool:
    """Atomically claim the right to run this job (O_EXCL pid file)."""
    try:
        fd = os.open(
            job_dir / "claim", os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        handle.write(str(pid))
    return True


def claim_pid(job_dir: pathlib.Path) -> Optional[int]:
    """The pid holding this job's run claim, or ``None``."""
    try:
        return int((job_dir / "claim").read_text().strip())
    except (FileNotFoundError, ValueError):
        return None


def release_claim(job_dir: pathlib.Path) -> None:
    try:
        (job_dir / "claim").unlink()
    except FileNotFoundError:
        pass


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a local pid."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "JobHandle",
    "JobSpec",
    "JobStatus",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "claim_pid",
    "pid_alive",
    "read_spec",
    "read_status",
    "release_claim",
    "try_claim",
    "write_spec",
    "write_status",
]
