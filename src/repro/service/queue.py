"""Durable on-disk task queue keyed by content-digest task keys.

The queue is a directory protocol, not a server: producers atomically
rename task envelopes into ``tasks/``, workers atomically rename them
into a per-worker ``claims/<worker-id>/`` directory (rename is the
mutual-exclusion primitive -- exactly one claimant wins), and completed
results land in ``results/<key>.result`` via the same tmp-file +
``os.replace`` pattern the :class:`~repro.engine.cache.ResultCache`
uses.  Because every filename is the :func:`repro.engine.checkpoint.
task_key` content digest of its payload, the queue dedupes fleet-wide
for free: enqueueing work that any client already completed is a no-op,
and a crashed worker's claims can be requeued without ever recomputing
a finished key.

Layout under one queue root::

    tasks/<key>.task          ready work (pickled TaskEnvelope)
    claims/<worker-id>/       tasks a live worker is executing
    results/<key>.result      pickled ("ok" | "error", value)
    workers/<worker-id>.pid   liveness breadcrumb, written by workers
    stop                      sentinel: workers drain and exit

Envelope functions are referenced by ``module:qualname`` (never pickled
by value), mirroring the engine's rule that task functions cross
process boundaries by name.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import ConfigurationError

OK = "ok"
ERROR = "error"


@dataclass(frozen=True)
class TaskEnvelope:
    """One queued unit of work: a by-name function plus its payload."""

    fn_module: str
    fn_qualname: str
    task: Any

    @classmethod
    def for_call(cls, fn: Any, task: Any) -> "TaskEnvelope":
        module = getattr(fn, "__module__", None)
        qualname = getattr(fn, "__qualname__", None)
        if (
            not module
            or not qualname
            or module == "__main__"
            or "<locals>" in qualname
        ):
            raise ConfigurationError(
                f"queue task functions must be module-level (importable "
                f"by name from any process); got {fn!r}"
            )
        return cls(fn_module=module, fn_qualname=qualname, task=task)


def _atomic_write(path: pathlib.Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via tmp file + atomic replace."""
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class DurableTaskQueue:
    """Filesystem work queue shared by clients and fleet workers."""

    def __init__(self, root: pathlib.Path):
        self.root = pathlib.Path(root)
        self.tasks_dir = self.root / "tasks"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.workers_dir = self.root / "workers"
        for directory in (
            self.tasks_dir, self.claims_dir, self.results_dir,
            self.workers_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------

    def task_path(self, key: str) -> pathlib.Path:
        return self.tasks_dir / f"{key}.task"

    def claim_path(self, worker_id: str, key: str) -> pathlib.Path:
        return self.claims_dir / worker_id / f"{key}.task"

    def result_path(self, key: str) -> pathlib.Path:
        return self.results_dir / f"{key}.result"

    @property
    def stop_path(self) -> pathlib.Path:
        return self.root / "stop"

    # -- producer side -------------------------------------------------

    def enqueue(self, key: str, envelope: TaskEnvelope) -> bool:
        """Offer one task; False if its result or the task already exists.

        The result check is the fleet-wide dedupe: a key any client ever
        completed through this queue is never recomputed.
        """
        if self.result_path(key).exists() or self.task_path(key).exists():
            return False
        _atomic_write(
            self.task_path(key),
            pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL),
        )
        return True

    def read_result(self, key: str) -> Optional[Tuple[str, Any]]:
        """The completed ``(status, value)`` for ``key``, or ``None``.

        An unreadable entry (torn by a crash before the atomic replace,
        which cannot happen, or hand-damaged) reads as missing.
        """
        try:
            with open(self.result_path(key), "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            return None

    def discard_result(self, key: str) -> None:
        """Drop a completed result (the retry path for error results)."""
        try:
            self.result_path(key).unlink()
        except FileNotFoundError:
            pass

    # -- worker side ---------------------------------------------------

    def claim(self, worker_id: str) -> Optional[Tuple[str, TaskEnvelope]]:
        """Atomically take one ready task, or ``None`` when idle.

        The claiming rename moves the envelope under this worker's
        ``claims/`` directory, so a SIGKILLed worker's in-flight work is
        exactly the contents of that directory -- requeueable by the
        coordinator without guessing.
        """
        claim_dir = self.claims_dir / worker_id
        claim_dir.mkdir(parents=True, exist_ok=True)
        for path in sorted(self.tasks_dir.glob("*.task")):
            target = claim_dir / path.name
            try:
                os.rename(path, target)
            except OSError:
                continue  # lost the race to another worker
            key = path.stem
            try:
                with open(target, "rb") as handle:
                    envelope = pickle.load(handle)
            except Exception:
                # Unreadable envelope: record the failure as this task's
                # result so the producer sees it instead of hanging.
                self.complete(worker_id, key, ERROR, "unreadable envelope")
                continue
            return key, envelope
        return None

    def complete(
        self, worker_id: str, key: str, status: str, value: Any
    ) -> None:
        """Durably record one outcome, then release the claim.

        Result-before-claim-release ordering means a crash between the
        two steps leaves a stale claim whose requeue is harmless: the
        re-enqueued task dedupes against the already-written result.
        """
        _atomic_write(
            self.result_path(key),
            pickle.dumps((status, value), protocol=pickle.HIGHEST_PROTOCOL),
        )
        try:
            self.claim_path(worker_id, key).unlink()
        except FileNotFoundError:
            pass

    def write_worker_pid(self, worker_id: str, pid: int) -> None:
        """Leave the worker's liveness breadcrumb."""
        _atomic_write(
            self.workers_dir / f"{worker_id}.pid", str(pid).encode()
        )

    # -- coordinator side ----------------------------------------------

    def requeue_worker(self, worker_id: str) -> List[str]:
        """Return a dead worker's claimed tasks to the ready set."""
        claim_dir = self.claims_dir / worker_id
        requeued: List[str] = []
        if not claim_dir.is_dir():
            return requeued
        for path in sorted(claim_dir.glob("*.task")):
            key = path.stem
            if self.result_path(key).exists():
                # Completed just before the crash: nothing to redo.
                path.unlink()
                continue
            try:
                os.rename(path, self.task_path(key))
            except OSError:
                continue
            requeued.append(key)
        return requeued

    def pending_tasks(self) -> List[str]:
        """Keys currently waiting in the ready set (sorted)."""
        return [p.stem for p in sorted(self.tasks_dir.glob("*.task"))]

    def request_stop(self) -> None:
        """Ask every worker on this queue to exit after its current task."""
        _atomic_write(self.stop_path, b"stop\n")

    def clear_stop(self) -> None:
        try:
            self.stop_path.unlink()
        except FileNotFoundError:
            pass

    def stop_requested(self) -> bool:
        return self.stop_path.exists()


__all__ = [
    "DurableTaskQueue",
    "ERROR",
    "OK",
    "TaskEnvelope",
]
