"""The ``python -m repro.service`` command-line surface.

Four subcommands over one service root directory:

* ``submit`` -- record (and by default run) one experiment job;
  ``--detach`` only queues it for a ``serve`` loop.
* ``serve``  -- claim queued jobs, recover crashed ones, and keep
  serving until idle (or forever with ``--keep-alive``).
* ``watch``  -- stream one job's typed engine events as they land.
* ``jobs``   -- list every known job and its state.

All subcommands coordinate purely through the service root, so any mix
of them (from any number of shells) cooperates: submissions from one
process are picked up by a ``serve`` loop in another, and every process
shares the same sharded result cache.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.engine.config import EngineConfig, LOCAL_BACKEND
from repro.errors import ReproError
from repro.service.api import ExecutionService, WAIT_POLL_S
from repro.service.jobs import QUEUED


def _add_root(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root", type=Path, default=Path("service-root"),
        help="service root directory (default: ./service-root)",
    )


def _service(args: argparse.Namespace) -> ExecutionService:
    return ExecutionService(
        args.root,
        engine=EngineConfig(workers=getattr(args, "workers", 1) or 1),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Async experiment jobs over a shared sharded result cache."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser(
        "submit", help="submit one experiment job",
    )
    _add_root(submit)
    submit.add_argument("experiment", help="registered experiment name")
    submit.add_argument("--chips", type=int, default=60)
    submit.add_argument("--refs", type=int, default=8000)
    submit.add_argument("--seed", type=int, default=2007)
    submit.add_argument("--technology", type=str, default="3t1d")
    submit.add_argument(
        "--geometry", type=str, default=None, metavar="SIZEKB:WAYS[:BANKS]",
    )
    submit.add_argument("--workers", type=int, default=1)
    submit.add_argument(
        "--backend", type=str, default=LOCAL_BACKEND,
        help="execution backend for the job (local, subprocess-fleet)",
    )
    submit.add_argument("--fleet-size", type=int, default=None)
    submit.add_argument(
        "--detach", action="store_true",
        help="only queue the job (a 'serve' loop will run it)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its report",
    )

    serve = sub.add_parser(
        "serve", help="run queued jobs and recover crashed ones",
    )
    _add_root(serve)
    serve.add_argument(
        "--keep-alive", action="store_true",
        help="keep polling for new submissions instead of exiting on idle",
    )
    serve.add_argument(
        "--poll", type=float, default=0.2,
        help="seconds between queue scans (default: 0.2)",
    )

    watch = sub.add_parser("watch", help="stream one job's engine events")
    _add_root(watch)
    watch.add_argument("job_id")
    watch.add_argument(
        "--no-follow", action="store_true",
        help="dump the events recorded so far and exit",
    )

    jobs = sub.add_parser("jobs", help="list known jobs")
    _add_root(jobs)
    return parser


def _cmd_submit(args: argparse.Namespace) -> int:
    service = _service(args)
    handle = service.submit(
        args.experiment,
        start=not args.detach,
        chips=args.chips,
        refs=args.refs,
        seed=args.seed,
        technology=args.technology,
        geometry=args.geometry,
        workers=args.workers,
        backend=args.backend,
        fleet_size=args.fleet_size,
    )
    print(handle.job_id)
    if args.detach:
        return 0
    if args.wait:
        status = handle.wait()
        print(service.report(handle.job_id), end="")
        return 0 if status.state == "done" else 1
    service.close()
    return 0 if service.status(handle.job_id).state == "done" else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    service = _service(args)
    recovered = service.recover()
    for job_id in recovered:
        print(f"recovered {job_id}")
    while True:
        for job_id in service.run_pending():
            print(f"started {job_id}")
        service.drain()
        if not args.keep_alive:
            break
        queued = [s for s in service.jobs() if s.state == QUEUED]
        if not queued:
            time.sleep(args.poll)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    service = _service(args)
    for event in service.events(args.job_id, follow=not args.no_follow):
        print(event)
    status = service.status(args.job_id)
    print(f"{args.job_id}: {status.state}")
    return 0 if status.state in ("done", "running", "queued") else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    service = _service(args)
    statuses = service.jobs()
    if not statuses:
        print("no jobs")
        return 0
    for status in statuses:
        dedupe = " cached" if status.cached else ""
        print(
            f"{status.job_id}  {status.state:<9}  "
            f"{status.experiment}{dedupe}"
        )
    return 0


_COMMANDS = {
    "submit": _cmd_submit,
    "serve": _cmd_serve,
    "watch": _cmd_watch,
    "jobs": _cmd_jobs,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


__all__ = ["build_parser", "main"]
