"""Distributed execution service over the journal/cache substrate.

The service layer turns the single-process engine into an async,
multi-client system without changing a single computed bit:

* :class:`~repro.service.api.ExecutionService` -- async job API
  (``submit``/``status``/``events``/``cancel``/``result``) whose jobs
  share one :class:`~repro.engine.cache.ShardedResultCache` and recover
  from crashes through each job's own run journal.
* :mod:`~repro.service.backends` -- the pluggable execution-backend
  registry behind ``EngineConfig.backend`` (``"local"``,
  ``"subprocess-fleet"``, and the protocol a remote-host backend
  implements).
* :mod:`~repro.service.queue` / :mod:`~repro.service.worker` /
  :mod:`~repro.service.fleet` -- the durable on-disk task queue, the
  persistent worker loop, and the fleet coordinator.
* :mod:`~repro.service.cli` -- ``python -m repro.service``
  (``submit``/``serve``/``watch``/``jobs``).
"""

from repro.service.api import ExecutionService
from repro.service.backends import (
    BatchExecutor,
    BatchItem,
    ExecutionBackend,
    execution_backend_names,
    get_execution_backend,
    register_execution_backend,
)
from repro.service.jobs import (
    JOB_STATES,
    JobHandle,
    JobSpec,
    JobStatus,
    TERMINAL_STATES,
)
from repro.service.queue import DurableTaskQueue, TaskEnvelope

__all__ = [
    "BatchExecutor",
    "BatchItem",
    "DurableTaskQueue",
    "ExecutionBackend",
    "ExecutionService",
    "JOB_STATES",
    "JobHandle",
    "JobSpec",
    "JobStatus",
    "TERMINAL_STATES",
    "TaskEnvelope",
    "execution_backend_names",
    "get_execution_backend",
    "register_execution_backend",
]
