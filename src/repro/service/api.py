"""The execution service: async jobs over the journal/cache substrate.

:class:`ExecutionService` turns the engine into a multi-client job
server without a network daemon: all coordination state is files under
one service root, so any number of submitting processes (plus a
``python -m repro.service serve`` loop) cooperate through atomic
filesystem operations alone.

* **Async API** -- :meth:`submit` returns a
  :class:`~repro.service.jobs.JobHandle` immediately; the job runs on a
  service thread.  :meth:`status`, :meth:`events` (typed
  :mod:`repro.engine.events` records, optionally followed live),
  :meth:`cancel`, and :meth:`result` complete the surface.
* **Fleet-wide dedupe** -- every job resolves through one shared
  :class:`~repro.engine.cache.ShardedResultCache`; identical concurrent
  jobs are additionally *coalesced* through an in-flight registry (the
  second waits for the first and is served as a cache hit instead of
  recomputing).
* **Crash recovery** -- each job journals its chip batches under its own
  ``checkpoints/`` directory with ``resume=True``, so :meth:`recover`
  (after a service crash or SIGKILL) re-runs interrupted jobs
  bit-identically, restoring completed work instead of recomputing it.

Determinism note: the service never reads wall-clock time; waits use
monotonic deadlines, and results carry no timestamps.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import threading
import time
import traceback
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.errors import ConfigurationError, ExecutionError, JobCancelled
from repro.engine.cache import ShardedResultCache
from repro.engine.config import EngineConfig
from repro.engine.events import (
    EngineEvent,
    EventStream,
    ExperimentEnded,
    ExperimentStarted,
    decode_event,
    encode_event,
)
from repro.engine.registry import Experiment, get_experiment
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JobHandle,
    JobSpec,
    JobStatus,
    QUEUED,
    RUNNING,
    claim_pid,
    pid_alive,
    read_spec,
    read_status,
    release_claim,
    try_claim,
    write_spec,
    write_status,
)

#: Poll period for status waits and in-flight coalescing.
WAIT_POLL_S = 0.05


def _geometry_from_spec(spec: Optional[str]):
    """Parse a job spec's geometry string (service-shaped errors)."""
    from repro.experiments.cli import parse_geometry_spec

    if spec is None:
        return None
    try:
        return parse_geometry_spec(spec)
    except SystemExit as exc:  # the CLI helper speaks SystemExit
        raise ConfigurationError(str(exc)) from None


def _geometry_to_spec(geometry) -> str:
    """Render a context geometry back into the spec grammar."""
    if geometry.size_bytes % 1024 or geometry.line_bits != 512:
        raise ConfigurationError(
            "only SIZEKB:WAYS[:BANKS] geometries (512-bit lines, whole-KB "
            f"capacity) can be submitted as jobs; got {geometry.signature}"
        )
    return (
        f"{geometry.size_bytes // 1024}:{geometry.ways}"
        f":{geometry.n_subarrays // 2}"
    )


class _JobEventLog:
    """Streams a job's typed events to ``events.jsonl``; checks cancel.

    Raising :class:`~repro.errors.JobCancelled` from a subscriber
    unwinds the run at the next event boundary -- the engine dispatches
    events synchronously on the coordinating thread, so the partial run
    is abandoned cleanly (nothing half-computed ever reaches the shared
    cache; journalled chips survive for a future resume).
    """

    def __init__(self, path: pathlib.Path, cancel_path: pathlib.Path):
        self._handle = open(path, "a")
        self._cancel_path = cancel_path

    def handle(self, event: EngineEvent) -> None:
        if self._cancel_path.exists():
            raise JobCancelled(
                f"job cancelled ({self._cancel_path.parent.name})"
            )
        record = encode_event(event)
        if record is not None:
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class ExecutionService:
    """Async experiment jobs sharing one sharded fleet-wide cache."""

    def __init__(
        self,
        root: pathlib.Path,
        engine: Optional[EngineConfig] = None,
        shard_prefix_len: int = 2,
    ):
        self.root = pathlib.Path(root)
        self.jobs_dir = self.root / "jobs"
        self.inflight_dir = self.root / "inflight"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.inflight_dir.mkdir(parents=True, exist_ok=True)
        self.engine_template = (
            engine if engine is not None else EngineConfig(workers=1)
        )
        self.cache = ShardedResultCache(
            self.root / "cache", shard_prefix_len=shard_prefix_len
        )
        self._threads: Dict[str, threading.Thread] = {}

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def _spec_for(
        self,
        experiment: Union[Experiment, str],
        context: Optional[Any],
        overrides: Dict[str, Any],
    ) -> JobSpec:
        name = (
            experiment if isinstance(experiment, str) else experiment.name
        )
        get_experiment(name)  # fail fast on unknown experiments
        fields: Dict[str, Any] = {"experiment": name}
        if context is not None:
            fields.update(
                chips=context.n_chips,
                refs=context.n_references,
                seed=context.seed,
                technology=context.technology,
            )
            if context.geometry is not None:
                fields["geometry"] = _geometry_to_spec(context.geometry)
            engine = context.engine
            if engine is not None:
                fields.update(
                    workers=engine.workers,
                    backend=engine.backend,
                    fleet_size=engine.fleet_size,
                )
        fields.update(overrides)
        return JobSpec(**fields)

    def submit(
        self,
        experiment: Union[Experiment, str],
        context: Optional[Any] = None,
        *,
        start: bool = True,
        **overrides: Any,
    ) -> JobHandle:
        """Enqueue one job; returns its handle immediately.

        ``experiment`` is a registered experiment (or its name);
        ``context`` optionally seeds the job spec from an existing
        :class:`~repro.experiments.runner.ExperimentContext`, and
        keyword ``overrides`` set :class:`~repro.service.jobs.JobSpec`
        fields directly (``chips=``, ``seed=``, ``backend=``, ...).

        With ``start=True`` (the default) the job runs on a thread of
        this process; ``start=False`` only records it as ``queued`` for
        a ``python -m repro.service serve`` loop to claim.
        """
        spec = self._spec_for(experiment, context, overrides)
        job_id = self._allocate_job_dir()
        job_dir = self.jobs_dir / job_id
        write_spec(job_dir, spec)
        write_status(
            job_dir,
            JobStatus(job_id=job_id, state=QUEUED, experiment=spec.experiment),
        )
        if start:
            self._start(job_id)
        return JobHandle(service=self, job_id=job_id)

    def _allocate_job_dir(self) -> str:
        n = len(sorted(self.jobs_dir.glob("job-*")))
        while True:
            job_id = f"job-{n:05d}"
            try:
                os.mkdir(self.jobs_dir / job_id)
            except FileExistsError:
                n += 1
                continue
            return job_id

    def _start(self, job_id: str) -> bool:
        """Claim and launch one queued job on a service thread."""
        job_dir = self.jobs_dir / job_id
        if not try_claim(job_dir, os.getpid()):
            return False
        thread = threading.Thread(
            target=self._run_job_guarded, args=(job_id,),
            name=f"repro-service-{job_id}", daemon=True,
        )
        self._threads[job_id] = thread
        thread.start()
        return True

    # ------------------------------------------------------------------
    # the job body
    # ------------------------------------------------------------------

    def _context_for(self, spec: JobSpec, job_dir: pathlib.Path, observer):
        from repro.experiments.runner import ExperimentContext

        engine_fields: Dict[str, Any] = dict(
            checkpoint_dir=job_dir / "checkpoints",
            resume=True,
            cache_dir=None,
        )
        if spec.workers is not None:
            engine_fields["workers"] = spec.workers
        if spec.backend is not None:
            engine_fields["backend"] = spec.backend
        if spec.fleet_size is not None:
            engine_fields["fleet_size"] = spec.fleet_size
        return ExperimentContext(
            n_chips=spec.chips,
            n_references=spec.refs,
            seed=spec.seed,
            technology=spec.technology,
            geometry=_geometry_from_spec(spec.geometry),
            engine=self.engine_template.replace(**engine_fields),
            observer=observer,
        )

    def _run_job_guarded(self, job_id: str) -> None:
        job_dir = self.jobs_dir / job_id
        try:
            self._run_job(job_id, job_dir)
        except JobCancelled:
            write_status(job_dir, JobStatus(
                job_id=job_id, state=CANCELLED,
                experiment=read_spec(job_dir).experiment,
                detail="cancelled",
            ))
        except BaseException:
            write_status(job_dir, JobStatus(
                job_id=job_id, state=FAILED,
                experiment=read_spec(job_dir).experiment,
                detail=traceback.format_exc(),
            ))
        finally:
            release_claim(job_dir)

    def _run_job(self, job_id: str, job_dir: pathlib.Path) -> None:
        spec = read_spec(job_dir)
        if (job_dir / "cancel").exists():
            raise JobCancelled(f"job cancelled before start ({job_id})")
        experiment = get_experiment(spec.experiment)
        write_status(job_dir, JobStatus(
            job_id=job_id, state=RUNNING, experiment=spec.experiment,
        ))
        log = _JobEventLog(job_dir / "events.jsonl", job_dir / "cancel")
        stream = EventStream([log])
        context = self._context_for(spec, job_dir, stream)
        effective = experiment.context_for(context)
        key = self.cache.key_for(experiment, effective)
        owned = self._acquire_inflight(key, job_id)
        hits_before = self.cache.stats.hits
        try:
            if not owned:
                self._await_inflight(key)
            stream.emit(ExperimentStarted(spec.experiment))
            start = time.perf_counter()
            result, cached = experiment.execute(context, self.cache)
            elapsed = time.perf_counter() - start
            stream.emit(ExperimentEnded(spec.experiment, elapsed, cached))
            self._write_result(job_dir, experiment, result)
            write_status(job_dir, JobStatus(
                job_id=job_id, state=DONE, experiment=spec.experiment,
                cached=cached,
                cache_hits=self.cache.stats.hits - hits_before,
            ))
        finally:
            if owned:
                self._release_inflight(key)
            context.close()
            log.close()

    def _write_result(
        self, job_dir: pathlib.Path, experiment: Experiment, result: Any
    ) -> None:
        tmp = job_dir / "result.pkl.tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, job_dir / "result.pkl")
        (job_dir / "report.txt").write_text(
            experiment.report(result) + "\n"
        )

    # ------------------------------------------------------------------
    # in-flight coalescing (concurrent identical jobs)
    # ------------------------------------------------------------------

    def _acquire_inflight(self, key: str, job_id: str) -> bool:
        """Claim the right to *compute* ``key``; False to wait instead."""
        path = self.inflight_dir / key
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    owner = int(path.read_text().split(":", 1)[0])
                except (ValueError, FileNotFoundError):
                    owner = None
                if owner is None or not pid_alive(owner):
                    # Stale marker from a crashed computer: take over.
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                return False
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{os.getpid()}:{job_id}")
            return True

    def _await_inflight(self, key: str) -> None:
        """Block until the computing job releases (or dies); the shared
        cache then serves this job its result as a hit."""
        path = self.inflight_dir / key
        while path.exists():
            try:
                owner = int(path.read_text().split(":", 1)[0])
            except (ValueError, FileNotFoundError):
                break
            if not pid_alive(owner):
                break
            time.sleep(WAIT_POLL_S)

    def _release_inflight(self, key: str) -> None:
        try:
            (self.inflight_dir / key).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # the read API
    # ------------------------------------------------------------------

    def status(self, job_id: str) -> JobStatus:
        """The job's current state snapshot."""
        return read_status(self.jobs_dir / job_id)

    def jobs(self) -> List[JobStatus]:
        """Every known job's status, in job-id order."""
        return [
            read_status(path)
            for path in sorted(self.jobs_dir.glob("job-*"))
            if (path / "status.json").exists()
        ]

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> JobStatus:
        """Block until the job reaches a terminal state."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            status = self.status(job_id)
            if status.terminal:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {status.state} after {timeout:g}s"
                )
            time.sleep(WAIT_POLL_S)

    def result(self, job_id: str, timeout: Optional[float] = None) -> Any:
        """The job's experiment result (blocks until terminal).

        Raises :class:`~repro.errors.ExecutionError` for a failed job
        and :class:`~repro.errors.JobCancelled` for a cancelled one.
        """
        status = self.wait(job_id, timeout=timeout)
        if status.state == CANCELLED:
            raise JobCancelled(f"{job_id} was cancelled")
        if status.state == FAILED:
            raise ExecutionError(
                f"{job_id} failed:\n{status.detail}"
            )
        with open(self.jobs_dir / job_id / "result.pkl", "rb") as handle:
            return pickle.load(handle)

    def report(self, job_id: str, timeout: Optional[float] = None) -> str:
        """The job's paper-style text report (blocks until terminal)."""
        self.result(job_id, timeout=timeout)
        return (self.jobs_dir / job_id / "report.txt").read_text()

    def events(
        self, job_id: str, follow: bool = False
    ) -> Iterator[EngineEvent]:
        """The job's typed event stream, in emission order.

        ``follow=True`` keeps tailing the stream until the job reaches
        a terminal state (live progress for watchers).
        """
        path = self.jobs_dir / job_id / "events.jsonl"
        position = 0

        def drain():
            nonlocal position
            if not path.exists():
                return
            with open(path, "r") as handle:
                handle.seek(position)
                while True:
                    line = handle.readline()
                    if not line.endswith("\n"):
                        return  # torn tail: re-read on the next pass
                    position = handle.tell()
                    yield decode_event(json.loads(line))

        while True:
            yield from drain()
            if not follow or self.status(job_id).terminal:
                # One final drain so events logged between the last read
                # and the terminal status are not dropped.
                if follow:
                    yield from drain()
                return
            time.sleep(WAIT_POLL_S)

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; False if the job already finished.

        Cancellation is cooperative: the running job unwinds at its next
        event boundary, so a cancelled job's journal keeps every chip it
        completed (a resubmitted identical job resumes from there).
        """
        status = self.status(job_id)
        if status.terminal:
            return False
        (self.jobs_dir / job_id / "cancel").write_text("cancel\n")
        return True

    def recover(self) -> List[str]:
        """Re-run jobs whose claiming process died; returns their ids.

        Safe to call on every service start: live claims (including this
        process's own threads) are left alone, and re-run jobs restore
        their journalled chips via ``resume=True``, keeping recovered
        results bit-identical to uninterrupted ones.
        """
        restarted: List[str] = []
        for path in sorted(self.jobs_dir.glob("job-*")):
            job_id = path.name
            if not (path / "status.json").exists():
                continue
            status = read_status(path)
            if status.terminal:
                continue
            thread = self._threads.get(job_id)
            if thread is not None and thread.is_alive():
                continue
            pid = claim_pid(path)
            if pid is None:
                if status.state == QUEUED:
                    # Never claimed: pending work for run_pending(), not
                    # a casualty for recovery.
                    continue
            else:
                if pid != os.getpid() and pid_alive(pid):
                    continue
                release_claim(path)
            if self._start(job_id):
                restarted.append(job_id)
        return restarted

    def run_pending(self) -> List[str]:
        """Claim and start every unclaimed ``queued`` job; returns ids."""
        started: List[str] = []
        for path in sorted(self.jobs_dir.glob("job-*")):
            if not (path / "status.json").exists():
                continue
            if read_status(path).state != QUEUED:
                continue
            if claim_pid(path) is not None:
                continue
            if self._start(path.name):
                started.append(path.name)
        return started

    def drain(self, timeout: Optional[float] = None) -> List[JobStatus]:
        """Start pending jobs and wait for every local job to finish."""
        self.run_pending()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for job_id, thread in sorted(self._threads.items()):
            budget = None
            if deadline is not None:
                budget = max(0.0, deadline - time.monotonic())
            thread.join(timeout=budget)
            if thread.is_alive():
                raise TimeoutError(f"{job_id} did not finish in time")
        return self.jobs()

    def close(self) -> None:
        """Wait for this process's running jobs to finish."""
        self.drain()

    def __enter__(self) -> "ExecutionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ExecutionService", "WAIT_POLL_S"]
