"""Subprocess-fleet batch executor over the durable task queue.

:class:`SubprocessFleetExecutor` is the coordinator half of the
``"subprocess-fleet"`` backend: it spawns N persistent
``python -m repro.service.worker`` processes over one
:class:`~repro.service.queue.DurableTaskQueue`, enqueues each batch item
under its content-digest task key, and polls for durably recorded
results.  Supervision mirrors the in-process pool where the queue makes
it meaningful: a SIGKILLed worker is respawned and its claimed tasks are
requeued (:class:`~repro.engine.events.WorkerRespawned` fires), and an
erroring task is re-enqueued up to the config's retry budget
(:class:`~repro.engine.events.TaskRetried`) before the batch fails with
:class:`~repro.errors.ExecutionError`.

Because results are keyed by content digest, the queue directory *is*
the fleet-wide memo: a second run -- or a concurrent client sharing the
same ``queue_dir`` -- never recomputes a key any worker has finished,
and :attr:`SubprocessFleetExecutor.deduped` counts exactly those skips.
"""

from __future__ import annotations

import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, ExecutionError
from repro.engine.config import EngineConfig
from repro.engine.events import EngineEvent, TaskRetried, WorkerRespawned
from repro.service.backends import BatchExecutor
from repro.service.queue import (
    DurableTaskQueue,
    ERROR,
    OK,
    TaskEnvelope,
)

#: Coordinator poll period while waiting on queue results.
RESULT_POLL_S = 0.02

#: Seconds a stopping fleet worker gets before it is killed.
SHUTDOWN_GRACE_S = 5.0


def _worker_env() -> Dict[str, str]:
    """Child environment with the repro package importable by name."""
    import repro

    package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else os.pathsep.join([package_root, existing])
    )
    return env


def resolve_queue_dir(config: EngineConfig) -> Tuple[pathlib.Path, bool]:
    """The queue directory for ``config``; True when it is private.

    An explicit ``queue_dir`` (shared fleet-wide dedupe) wins; otherwise
    the queue rides next to the run journal under ``checkpoint_dir``;
    with neither, a private temporary directory is created (and removed
    when the executor closes).
    """
    if config.queue_dir is not None:
        return config.queue_dir, False
    if config.checkpoint_dir is not None:
        return config.checkpoint_dir / "fleet-queue", False
    return (
        pathlib.Path(tempfile.mkdtemp(prefix="repro-fleet-queue-")), True
    )


class SubprocessFleetExecutor(BatchExecutor):
    """Coordinates persistent worker subprocesses over one durable queue."""

    def __init__(self, config: EngineConfig):
        if config.task_timeout is not None:
            raise ConfigurationError(
                "task_timeout is not supported by the subprocess-fleet "
                "backend (workers own their tasks durably); use the "
                "local backend for timeout supervision"
            )
        self.config = config
        self.fleet_size = config.effective_fleet_size
        self.queue_dir, self._private_queue = resolve_queue_dir(config)
        self.queue = DurableTaskQueue(self.queue_dir)
        self.deduped = 0
        """Batch items served from pre-existing queue results."""
        self._workers: Dict[str, subprocess.Popen] = {}
        self._respawns = 0
        self._closed = False

    # ------------------------------------------------------------------

    def _spawn(self, worker_id: str) -> None:
        command = [
            sys.executable, "-m", "repro.service.worker",
            "--queue", str(self.queue_dir),
            "--worker-id", worker_id,
            "--parent-pid", str(os.getpid()),
        ]
        if self.config.evaluator_cache_size is not None:
            command += [
                "--evaluator-cache-size",
                str(self.config.evaluator_cache_size),
            ]
        self._workers[worker_id] = subprocess.Popen(
            command,
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def ensure_fleet(self) -> None:
        """Spawn (or top up) the worker fleet."""
        self.queue.clear_stop()
        for n in range(self.fleet_size):
            worker_id = f"w{n:03d}"
            if worker_id not in self._workers:
                self._spawn(worker_id)

    def _supervise_workers(
        self, notify: Callable[[EngineEvent], None], label: str
    ) -> None:
        """Respawn dead workers, requeueing their claimed tasks."""
        for worker_id in sorted(self._workers):
            process = self._workers[worker_id]
            if process.poll() is None:
                continue
            self.queue.requeue_worker(worker_id)
            del self._workers[worker_id]
            self._respawns += 1
            notify(WorkerRespawned(label, self._respawns))
            self._spawn(worker_id)

    # ------------------------------------------------------------------

    def run_batch(
        self,
        fn: Callable[[Any], Any],
        items: List[Any],
        notify: Callable[[EngineEvent], None],
        label: str = "batch",
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, result)`` pairs as queue results land.

        ``items`` are :class:`~repro.service.backends.BatchItem`-shaped
        (``index``/``key``/``task``); identical keys within a batch are
        computed once and fanned out to every index.
        """
        if self._closed:
            raise ExecutionError("fleet executor already closed")
        by_key: Dict[str, List[int]] = {}
        tasks_by_key: Dict[str, Any] = {}
        for item in items:
            by_key.setdefault(item.key, []).append(item.index)
            tasks_by_key[item.key] = item.task
        envelope_fn = TaskEnvelope.for_call(fn, None)
        failures: Dict[str, int] = {key: 0 for key in by_key}
        pending: List[str] = []
        for key in sorted(by_key):
            if self.queue.read_result(key) is not None:
                self.deduped += len(by_key[key])
            elif not self.queue.enqueue(
                key,
                TaskEnvelope(
                    envelope_fn.fn_module,
                    envelope_fn.fn_qualname,
                    tasks_by_key[key],
                ),
            ):
                # Enqueued (or finished) by a concurrent client between
                # the read and the offer; either way the result arrives.
                pass
            pending.append(key)
        self.ensure_fleet()
        while pending:
            progressed = False
            for key in list(pending):
                recorded = self.queue.read_result(key)
                if recorded is None:
                    continue
                status, value = recorded
                if status == OK:
                    pending.remove(key)
                    progressed = True
                    for index in by_key[key]:
                        yield index, value
                    continue
                failures[key] += 1
                self.queue.discard_result(key)
                if failures[key] > self.config.max_retries:
                    raise ExecutionError(
                        f"fleet task {key[:12]} of batch {label!r} failed "
                        f"{failures[key]} times; giving up: {value}"
                    )
                notify(TaskRetried(
                    label, by_key[key][0], failures[key], str(value),
                ))
                self.queue.enqueue(
                    key,
                    TaskEnvelope(
                        envelope_fn.fn_module,
                        envelope_fn.fn_qualname,
                        tasks_by_key[key],
                    ),
                )
                progressed = True
            if pending and not progressed:
                self._supervise_workers(notify, label)
                time.sleep(RESULT_POLL_S)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the fleet; a private queue directory is removed."""
        if self._closed:
            return
        self._closed = True
        self.queue.request_stop()
        deadline = time.monotonic() + SHUTDOWN_GRACE_S
        for worker_id in sorted(self._workers):
            process = self._workers[worker_id]
            budget = max(0.0, deadline - time.monotonic())
            try:
                process.wait(timeout=budget)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        self._workers.clear()
        if self._private_queue:
            shutil.rmtree(self.queue_dir, ignore_errors=True)


__all__ = [
    "RESULT_POLL_S",
    "SHUTDOWN_GRACE_S",
    "SubprocessFleetExecutor",
    "resolve_queue_dir",
]
