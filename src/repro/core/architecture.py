"""Cache architecture assembly: a sampled chip + a retention scheme.

An *architecture* binds a fabricated-chip sample to a scheme and knows how
to construct fresh cache simulator instances for it:

* :class:`Cache3T1DArchitecture` -- the paper's proposal; retention times
  come from the chip sample (quantised by the line counters) and the
  scheme picks refresh + placement.
* :class:`Cache6TArchitecture` -- the 6T baseline under variation: an
  ideal (never-expiring) cache whose *chip frequency* is degraded by the
  slowest cell.
* :class:`IdealCacheArchitecture` -- the golden no-variation 6T design,
  the normalisation reference for every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ChipDiscardedError, ConfigurationError
from repro.technology.node import TechnologyNode
from repro.array.chip import DRAM3T1DChipSample, SRAMChipSample
from repro.array.power import CachePowerModel
from repro.cache.config import CacheConfig
from repro.cache.controller import RetentionAwareCache
from repro.cache.counters import LineCounterConfig
from repro.cache.refresh import GlobalRefresh, make_refresh_policy
from repro.core.schemes import RetentionScheme


@dataclass
class Cache3T1DArchitecture:
    """A 3T1D cache built on one sampled chip, run under one scheme."""

    chip: DRAM3T1DChipSample
    scheme: RetentionScheme
    config: CacheConfig = field(default_factory=CacheConfig)
    counter: Optional[LineCounterConfig] = None

    def __post_init__(self) -> None:
        if self.config.geometry.n_lines != self.chip.geometry.n_lines:
            raise ConfigurationError(
                "cache config and chip sample disagree on line count"
            )
        if self.config.geometry.ways != self.chip.geometry.ways:
            # Re-interpret the physical chip at the config's associativity
            # (Figure 11 sweeps pass a modified config).
            self.chip = self.chip.with_geometry(self.config.geometry)
        if self.counter is None:
            self.counter = LineCounterConfig.for_chip(
                float(np.max(self.retention_cycles_raw)),
                bits=self.config.counter_bits,
            )

    @property
    def node(self) -> TechnologyNode:
        """Technology node of the chip."""
        return self.chip.node

    @property
    def frequency(self) -> float:
        """3T1D chips always run at the nominal design frequency."""
        return self.node.frequency

    @property
    def retention_cycles_raw(self) -> np.ndarray:
        """Per-line retention in cycles at the chip frequency (unquantised)."""
        return self.chip.retention_by_line * self.frequency

    @property
    def chip_retention_cycles(self) -> int:
        """Worst-line retention in cycles (the global scheme's period)."""
        return int(self.chip.chip_retention_time * self.frequency)

    @property
    def dead_line_threshold_cycles(self) -> int:
        """Retention below one counter step counts as dead (section 4.3.1)."""
        return self.counter.step_cycles

    def dead_line_fraction(self) -> float:
        """Fraction of lines the line counters see as dead."""
        return float(
            np.mean(self.retention_cycles_raw < self.dead_line_threshold_cycles)
        )

    def is_operable(self) -> bool:
        """Can this chip run under its scheme at all?

        The global scheme needs the worst line to survive one refresh pass;
        line-level schemes always operate (dead lines are just capacity
        loss).
        """
        if not self.scheme.is_global:
            return True
        return (
            self.chip_retention_cycles
            >= self.config.geometry.refresh_cycles_full_pass
        )

    def build_cache(self) -> RetentionAwareCache:
        """Construct a fresh simulator instance for one benchmark run."""
        if self.scheme.is_global:
            if not self.is_operable():
                raise ChipDiscardedError(
                    f"chip {self.chip.chip_id} retention "
                    f"({self.chip_retention_cycles} cycles) cannot cover a "
                    "global refresh pass"
                )
            refresh = GlobalRefresh(
                chip_retention_cycles=self.chip_retention_cycles,
                pass_cycles=self.config.geometry.refresh_cycles_full_pass,
            )
            return RetentionAwareCache(
                self.config,
                retention_cycles=None,  # global refresh keeps all data alive
                replacement=self.scheme.replacement,
                refresh=refresh,
            )
        refresh = make_refresh_policy(
            self.scheme.refresh,
            partial_threshold_cycles=self.config.partial_refresh_threshold_cycles,
        )
        return RetentionAwareCache(
            self.config,
            retention_cycles=self.retention_cycles_raw,
            replacement=self.scheme.replacement,
            refresh=refresh,
            counter=self.counter,
        )

    def power_model(self) -> CachePowerModel:
        """Dynamic/leakage power bookkeeping for this architecture.

        The default 3T1D technology keeps the calibrated Table 3 energy
        path; chips sampled through another registered backend get that
        backend's access/refresh energies.
        """
        technology = getattr(self.chip, "technology", "3t1d")
        cell_kind = "3T1D" if technology == "3t1d" else technology
        return CachePowerModel(
            self.node, cell_kind=cell_kind, geometry=self.config.geometry
        )


@dataclass
class Cache6TArchitecture:
    """The 6T baseline under variation: full retention, degraded frequency."""

    chip: SRAMChipSample
    config: CacheConfig = field(default_factory=CacheConfig)

    @property
    def node(self) -> TechnologyNode:
        """Technology node of the chip."""
        return self.chip.node

    @property
    def frequency(self) -> float:
        """Chip frequency set by the slowest cell."""
        return self.chip.frequency

    @property
    def normalized_frequency(self) -> float:
        """Frequency relative to the ideal design."""
        return self.chip.normalized_frequency

    def build_cache(self) -> RetentionAwareCache:
        """An ideal (never-expiring) cache; only the clock differs."""
        return RetentionAwareCache(self.config, retention_cycles=None)

    def power_model(self) -> CachePowerModel:
        """Power bookkeeping for the 6T array."""
        return CachePowerModel(
            self.node, cell_kind="6T", geometry=self.config.geometry
        )


@dataclass
class IdealCacheArchitecture:
    """The golden no-variation 6T design (normalisation reference)."""

    node: TechnologyNode
    config: CacheConfig = field(default_factory=CacheConfig)

    @property
    def frequency(self) -> float:
        """Nominal Table 1 frequency."""
        return self.node.frequency

    def build_cache(self) -> RetentionAwareCache:
        """An ideal cache at the nominal frequency."""
        return RetentionAwareCache(self.config, retention_cycles=None)

    def power_model(self) -> CachePowerModel:
        """Power bookkeeping for the golden 6T array."""
        return CachePowerModel(
            self.node, cell_kind="6T", geometry=self.config.geometry
        )
