"""Word-level refresh study (the extension the paper declined to build).

Section 4.3.1: "word-level refresh is also possible, but is not studied
due to the excessive hardware overheads."  This module quantifies that
trade-off.  With partial refresh, only retentions below the threshold
trigger refreshing; at word granularity only the *weak words* of a weak
line are refreshed (64 bits = one sense-amp cycle each) instead of the
whole 512-bit line (8 cycles), but every word needs its own retention
counter -- 8x the counter hardware.

Because within-line variation is dominated by independent per-cell
randomness, a weak line usually contains exactly one weak word, so
word-level refresh cuts refresh bandwidth and energy by nearly 8x -- and
still the paper's call stands: the scheme spends 8x the counters to
shave overheads that the line-level schemes already keep under ~10%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.array.chip import DRAM3T1DChipSample
from repro.technology import calibration


@dataclass(frozen=True)
class RefreshOverheads:
    """Steady-state refresh overheads of one granularity choice."""

    granularity: str
    refresh_events_per_cycle: float
    blocked_cycle_fraction: float
    """Fraction of cycles the refresh holds a sub-array pair's ports."""
    energy_per_cycle_joules: float
    counter_bits: int

    def power_watts(self, frequency: float) -> float:
        """Refresh dynamic power at ``frequency``."""
        return self.energy_per_cycle_joules * frequency


@dataclass(frozen=True)
class WordLevelComparison:
    """Line-level vs word-level partial refresh on one chip."""

    line_level: RefreshOverheads
    word_level: RefreshOverheads
    weak_lines: int
    weak_words: int

    @property
    def bandwidth_saving(self) -> float:
        """Blocked-cycle reduction of word-level refresh (0..1)."""
        if self.line_level.blocked_cycle_fraction == 0:
            return 0.0
        return 1.0 - (
            self.word_level.blocked_cycle_fraction
            / self.line_level.blocked_cycle_fraction
        )

    @property
    def counter_hardware_ratio(self) -> float:
        """Counter bits of word-level relative to line-level (the paper's
        'excessive hardware overhead')."""
        if self.line_level.counter_bits == 0:
            return 0.0
        return self.word_level.counter_bits / self.line_level.counter_bits


def compare_refresh_granularity(
    chip: DRAM3T1DChipSample,
    threshold_cycles: int = 6000,
    counter_bits: int = 3,
) -> WordLevelComparison:
    """Quantify line-level vs word-level partial refresh for ``chip``.

    Steady-state model: every resident line whose (line or word) retention
    sits in ``(0, threshold)`` is refreshed once per its retention period,
    as the partial-refresh policy does while data lives past the
    threshold.  Dead lines/words (retention zero) are never refreshed.
    """
    if threshold_cycles < 1:
        raise ConfigurationError("threshold_cycles must be >= 1")
    if chip.retention_by_word is None:
        raise ConfigurationError(
            "chip sample carries no per-word retention; resample with the "
            "current ChipSampler"
        )
    frequency = chip.node.frequency
    geometry = chip.geometry
    line_cycles = chip.retention_by_line * frequency
    word_cycles = chip.retention_by_word * frequency
    words_per_line = word_cycles.shape[1]

    weak_line_mask = (line_cycles > 0) & (line_cycles < threshold_cycles)
    weak_word_mask = (word_cycles > 0) & (word_cycles < threshold_cycles)
    # A word only needs refreshing if its line is otherwise alive.
    weak_word_mask &= (line_cycles > 0)[:, None]

    line_energy = calibration.refresh_line_energy(chip.node)
    cycles_per_line_refresh = geometry.refresh_cycles_per_line
    n_pairs = geometry.n_pairs

    line_rate = float(np.sum(1.0 / line_cycles[weak_line_mask]))
    line_level = RefreshOverheads(
        granularity="line",
        refresh_events_per_cycle=line_rate,
        blocked_cycle_fraction=min(
            1.0, line_rate * cycles_per_line_refresh / n_pairs
        ),
        energy_per_cycle_joules=line_rate * line_energy,
        counter_bits=geometry.n_lines * counter_bits,
    )

    word_rate = float(np.sum(1.0 / word_cycles[weak_word_mask]))
    word_level = RefreshOverheads(
        granularity="word",
        refresh_events_per_cycle=word_rate,
        blocked_cycle_fraction=min(1.0, word_rate * 1.0 / n_pairs),
        energy_per_cycle_joules=word_rate * line_energy / words_per_line,
        counter_bits=geometry.n_lines * words_per_line * counter_bits,
    )
    return WordLevelComparison(
        line_level=line_level,
        word_level=word_level,
        weak_lines=int(np.sum(weak_line_mask)),
        weak_words=int(np.sum(weak_word_mask)),
    )
