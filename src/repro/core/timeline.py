"""Timeline replay kernels for the former fallback schemes.

:mod:`repro.core.batcheval`'s flattened kernel covers stationary
placement (LRU/DSP) with closed-form refresh accounting.  The schemes it
used to reject -- RSP-FIFO/RSP-LRU block moves, the online token-refresh
engine, and the real L2 simulator -- run here, through two kernels that
are **bit-identical** to ``RetentionAwareCache.run_trace``:

* :func:`_replay_rsp_sets` -- RSP placement without devices.  RSP never
  reads recency and every interaction is set-local, so the trace's
  columnar form (:meth:`TraceArtifacts.set_streams`) is replayed one set
  at a time over position-space state (slot ``p`` = the ``p``-th
  longest-retention live way).  Per-line retention-expiry timelines are
  precomputed as interval arithmetic: a single ``next_expiry`` bound per
  set makes the "is this line still alive?" check one compare, and
  warm-up is a per-set counter snapshot instead of a mid-trace reset.
  Cross-set effects -- the single shared write buffer -- are reconciled
  afterwards by replaying the collected write-back events in global
  program order.
* :func:`_replay_with_devices` -- any supported placement coupled to the
  token engine and/or the real L2.  Device interactions are sequential
  in program order, so this kernel keeps global order but batches the
  expensive parts: expiry sweeps are skipped until a set's earliest
  expiry, and token drains are skipped until the engine's earliest
  armed deadline (:meth:`TokenRefreshEngine.earliest_due`), which is
  sound because a token service never *shortens* a line's timeline
  (``can_sustain`` guarantees the post-service expiry exceeds the
  pre-service one).

Both kernels treat the passed cache as a read-only configuration source,
exactly like the flattened kernel; fresh engine/L2 device instances are
built from the cache's own device parameters.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.cache.refresh import FullRefresh, GlobalRefresh, PartialRefresh
from repro.cache.replacement import DSPPolicy, RSPFIFOPolicy, RSPLRUPolicy
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.cache.token import TokenRefreshEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.controller import RetentionAwareCache
    from repro.core.batcheval import TraceArtifacts


def simulate_trace_timeline(
    cache: "RetentionAwareCache", artifacts: "TraceArtifacts"
) -> CacheStats:
    """Replay a trace on the timeline path; called via ``simulate_trace``.

    Validation (support, fresh cache, matching geometry) happens in the
    dispatcher; this routine only picks the specialized kernel.
    """
    if cache.refresh_engine is not None or cache.l2_cache is not None:
        return _replay_with_devices(cache, artifacts)
    replacement = type(cache.replacement)
    if replacement not in (RSPFIFOPolicy, RSPLRUPolicy):
        raise ConfigurationError(
            "the timeline kernel handles RSP placement or device-coupled "
            f"(token/L2) caches; {cache.replacement.name!r} without "
            "devices belongs on the flattened kernel"
        )
    return _replay_rsp_sets(
        cache, artifacts, promote=replacement is RSPLRUPolicy
    )


def _replay_rsp_sets(
    cache: "RetentionAwareCache", artifacts: "TraceArtifacts", promote: bool
) -> CacheStats:
    """RSP-FIFO / RSP-LRU without devices, one set at a time."""
    config = cache.config
    geometry = config.geometry
    n_sets = geometry.n_sets
    n_ways = geometry.ways
    refresh = cache.refresh
    write_back = config.write_back
    refresh_cpl = geometry.refresh_cycles_per_line

    retention: List[int] = [int(r) for r in cache.retention_grid.reshape(-1)]
    distinct = set(retention)
    life_by_r = {r: refresh.effective_lifetime(r) for r in distinct}
    if type(refresh) is FullRefresh:
        acc_mode = 1
        maxref_by_r = {}
    elif type(refresh) is PartialRefresh:
        acc_mode = 2
        maxref_by_r = {r: refresh.max_refreshes(r) for r in distinct}
    else:  # NoRefresh / GlobalRefresh: zero per-line refreshes
        acc_mode = 0
        maxref_by_r = {}

    INF = math.inf
    warm = artifacts.warmup_references
    end_cycle = artifacts.end_cycle
    streams = artifacts.set_streams()

    # Global (whole-trace) accumulators; per-set counters merge into
    # them with their pre-warmup prefix subtracted (every counter is
    # monotone within a set, so a snapshot at the warmup split is exact).
    g_hits = g_mc = g_me = g_md = 0
    g_wb = g_ewb = g_wt = g_l2a = g_lref = g_rblk = 0
    g_moves = g_mblk = g_fills = 0

    # Write-back arrivals (global reference index, emission order, cycle)
    # for the shared write buffer, replayed in program order afterwards.
    push_events: List[Tuple[int, int, int]] = []
    seq = 0

    for s in range(n_sets):
        stream = streams[s]
        if stream is None:
            continue
        base = s * n_ways
        order = sorted(
            (w for w in range(n_ways) if retention[base + w] > 0),
            key=lambda w: (-retention[base + w], w),
        )
        n_live = len(order)
        retp = [retention[base + w] for w in order]
        life = [life_by_r[r] for r in retp]
        # Expiry sweeps visit ways in way-index order, like the controller.
        sweep_pos = sorted(range(n_live), key=lambda p: order[p])

        # Position-space line state: slot p holds the block currently in
        # the p-th longest-retention live way (-1 = invalid).
        prow = [-1] * n_live
        pdirty = [False] * n_live
        pfill = [0] * n_live
        pexp = [0.0] * n_live
        nxt_exp = INF

        ticks_s, cycs, tags_s, wrs_s, split = stream
        n_acc = len(cycs)
        h = mc = me = md = wb = ewb = wt = l2a = 0
        lref = rblk = mv = mblk = fl = 0
        # Counter snapshot at the warmup split (loads/stores are
        # state-independent and counted globally from the columnar
        # write flags instead).
        snap = None
        if split <= 0:
            snap = (0,) * 13
            segments = ((0, n_acc),)
        elif split < n_acc:
            segments = ((0, split), (split, n_acc))
        else:
            segments = ((0, n_acc),)

        def _promote(position, cyc):
            """RSPLRUPolicy.on_hit + controller.promote_line, slot-space."""
            nonlocal mv, mblk, nxt_exp, lref, rblk
            stash_tag = prow[position]
            stash_dirty = pdirty[position]
            prow[position] = -1
            for i in range(position, 0, -1):
                src = i - 1
                tag_src = prow[src]
                if tag_src >= 0:
                    if acc_mode:
                        age = cyc - pfill[src]
                        if age < 0:
                            age = 0
                        r = retp[src]
                        count = age // r
                        if acc_mode == 2:
                            cap = maxref_by_r[r]
                            if count > cap:
                                count = cap
                        if count:
                            lref += count
                            rblk += count * refresh_cpl
                    prow[i] = tag_src
                    prow[src] = -1
                    pdirty[i] = pdirty[src]
                    pdirty[src] = False
                    pfill[i] = cyc
                    e2 = cyc + life[i]
                    pexp[i] = e2
                    if e2 < nxt_exp:
                        nxt_exp = e2
                    mv += 1
                    mblk += refresh_cpl
            prow[0] = stash_tag
            pdirty[0] = stash_dirty
            pfill[0] = cyc
            e2 = cyc + life[0]
            pexp[0] = e2
            if e2 < nxt_exp:
                nxt_exp = e2
            mv += 1
            mblk += refresh_cpl

        for a, b in segments:
            if a:
                # Measurement begins: snapshot the warmup prefix.
                snap = (h, mc, me, md, wb, ewb, wt, l2a,
                        lref, rblk, mv, mblk, fl)
            for tck, cyc, tag, wr in zip(
                ticks_s[a:b], cycs[a:b], tags_s[a:b], wrs_s[a:b]
            ):
                # Lazy expiry sweep (interval arithmetic on timelines).
                recent = None
                if cyc >= nxt_exp:
                    nxt = INF
                    for p in sweep_pos:
                        if prow[p] >= 0:
                            e = pexp[p]
                            if cyc >= e:
                                if recent is None:
                                    recent = {prow[p]}
                                else:
                                    recent.add(prow[p])
                                if acc_mode:
                                    age = int(e) - pfill[p]
                                    if age < 0:
                                        age = 0
                                    r = retp[p]
                                    count = age // r
                                    if acc_mode == 2:
                                        cap = maxref_by_r[r]
                                        if count > cap:
                                            count = cap
                                    if count:
                                        lref += count
                                        rblk += count * refresh_cpl
                                if pdirty[p]:
                                    wb += 1
                                    ewb += 1
                                    push_events.append((tck, seq, int(e)))
                                    seq += 1
                                    pdirty[p] = False
                                prow[p] = -1
                            elif e < nxt:
                                nxt = e
                    nxt_exp = nxt

                if wr and not write_back:
                    # Write-through, no-write-allocate store path.
                    wt += 1
                    push_events.append((tck, seq, cyc))
                    seq += 1
                    if tag in prow:
                        h += 1
                        if promote:
                            p = prow.index(tag)
                            if p:
                                _promote(p, cyc)
                    else:
                        mc += 1
                    continue

                if tag in prow:
                    h += 1
                    if promote:
                        p = prow.index(tag)
                        if p:
                            _promote(p, cyc)
                        if wr:
                            # After promotion the line sits in slot 0.
                            pdirty[0] = True
                    elif wr:
                        pdirty[prow.index(tag)] = True
                    continue

                # Miss: classify by resident-but-expired tags.
                l2a += 1
                if n_live == 0:
                    md += 1
                    continue
                expired = recent is not None and tag in recent
                # RSPFIFOPolicy.make_room: shift the chain down from the
                # deepest free slot (evicting the tail when full).
                depth = n_live - 1
                for position in range(depth, -1, -1):
                    if prow[position] < 0:
                        depth = position
                        break
                else:
                    tail = n_live - 1
                    if acc_mode:
                        age = cyc - pfill[tail]
                        if age < 0:
                            age = 0
                        r = retp[tail]
                        count = age // r
                        if acc_mode == 2:
                            cap = maxref_by_r[r]
                            if count > cap:
                                count = cap
                        if count:
                            lref += count
                            rblk += count * refresh_cpl
                    if pdirty[tail]:
                        wb += 1
                        push_events.append((tck, seq, cyc))
                        seq += 1
                        pdirty[tail] = False
                    prow[tail] = -1
                    depth = tail
                for position in range(depth, 0, -1):
                    src = position - 1
                    tag_src = prow[src]
                    if tag_src >= 0:
                        if acc_mode:
                            age = cyc - pfill[src]
                            if age < 0:
                                age = 0
                            r = retp[src]
                            count = age // r
                            if acc_mode == 2:
                                cap = maxref_by_r[r]
                                if count > cap:
                                    count = cap
                            if count:
                                lref += count
                                rblk += count * refresh_cpl
                        prow[position] = tag_src
                        prow[src] = -1
                        pdirty[position] = pdirty[src]
                        pdirty[src] = False
                        pfill[position] = cyc
                        e = cyc + life[position]
                        pexp[position] = e
                        if e < nxt_exp:
                            nxt_exp = e
                        mv += 1
                        mblk += refresh_cpl
                if expired:
                    me += 1
                else:
                    mc += 1
                prow[0] = tag
                pdirty[0] = wr
                pfill[0] = cyc
                e = cyc + life[0]
                pexp[0] = e
                if e < nxt_exp:
                    nxt_exp = e
                fl += 1

        if snap is None:
            # Every access of this set fell inside the warmup prefix.
            snap = (h, mc, me, md, wb, ewb, wt, l2a,
                    lref, rblk, mv, mblk, fl)
        g_hits += h - snap[0]
        g_mc += mc - snap[1]
        g_me += me - snap[2]
        g_md += md - snap[3]
        g_wb += wb - snap[4]
        g_ewb += ewb - snap[5]
        g_wt += wt - snap[6]
        g_l2a += l2a - snap[7]
        g_lref += lref - snap[8]
        g_rblk += rblk - snap[9]
        g_moves += mv - snap[10]
        g_mblk += mblk - snap[11]
        g_fills += fl - snap[12]

        # Finalize: refreshes still owed by this set's resident lines
        # (post-warmup by construction: finalize runs after the reset).
        if acc_mode:
            for p in range(n_live):
                if prow[p] >= 0:
                    e = pexp[p]
                    cutoff = end_cycle if e > end_cycle else e
                    age = int(cutoff) - pfill[p]
                    if age < 0:
                        age = 0
                    r = retp[p]
                    count = age // r
                    if acc_mode == 2:
                        cap = maxref_by_r[r]
                        if count > cap:
                            count = cap
                    if count:
                        g_lref += count
                        g_rblk += count * refresh_cpl

    if type(refresh) is GlobalRefresh:
        passes = refresh.passes_in_window(end_cycle)
        g_lref += passes * geometry.n_lines
        g_rblk += passes * refresh.pass_cycles

    # loads/stores are state-independent: count them from the columnar
    # write flags instead of branching once per access in the set loops.
    n_total = len(artifacts.cycles)
    measured_from = warm if warm < n_total else n_total
    writes_col = artifacts.columnar()["write"]
    g_stores = int(np.count_nonzero(writes_col[measured_from:]))
    g_loads = (n_total - measured_from) - g_stores

    # The single shared write buffer: replay every write-back arrival in
    # program order.  Ties share a reference index only within one set,
    # so (tick, emission order) reproduces the controller's sequence.
    wb_stall = 0
    wb_queued = 0
    wb_last = 0.0
    wb_cap = config.write_buffer_entries
    wb_drain = config.l2_write_interval_cycles
    push_events.sort()
    for tick, _seq, cycle in push_events:
        if cycle < wb_last:
            cycle = wb_last
        drained = int((cycle - wb_last) // wb_drain)
        if drained:
            wb_queued -= drained
            if wb_queued < 0:
                wb_queued = 0
        wb_last = cycle
        if wb_queued >= wb_cap:
            wb_queued = wb_cap
            if tick >= warm:
                wb_stall += wb_drain
        else:
            wb_queued += 1

    return CacheStats(
        loads=g_loads,
        stores=g_stores,
        hits=g_hits,
        misses_cold=g_mc,
        misses_expired=g_me,
        misses_dead_bypass=g_md,
        writebacks=g_wb,
        expiry_writebacks=g_ewb,
        write_throughs=g_wt,
        l2_accesses=g_l2a,
        l2_hits=0,
        l2_misses=0,
        line_refreshes=g_lref,
        refresh_blocked_cycles=g_rblk,
        line_moves=g_moves,
        move_blocked_cycles=g_mblk,
        write_buffer_stall_cycles=wb_stall,
        fills=g_fills,
    )


def _replay_with_devices(
    cache: "RetentionAwareCache", artifacts: "TraceArtifacts"
) -> CacheStats:
    """Global-order replay coupled to the token engine / real L2.

    Handles all four placement policies.  Fresh device instances are
    built from the cache's own device parameters (the passed cache stays
    untouched); drains and sweeps are batched behind earliest-deadline
    bounds so idle stretches cost nothing.
    """
    config = cache.config
    geometry = config.geometry
    n_sets = geometry.n_sets
    n_ways = geometry.ways
    n_lines = n_sets * n_ways
    refresh = cache.refresh
    replacement = type(cache.replacement)
    rsp = replacement in (RSPFIFOPolicy, RSPLRUPolicy)
    promote = replacement is RSPLRUPolicy
    dsp = replacement is DSPPolicy
    aware = cache.replacement.uses_retention_info
    write_back = config.write_back
    refresh_cpl = geometry.refresh_cycles_per_line

    retention: List[int] = [int(r) for r in cache.retention_grid.reshape(-1)]
    distinct = set(retention)

    engine = None
    margin = 0
    if cache.refresh_engine is not None:
        engine = TokenRefreshEngine(
            geometry, margin_cycles=cache.refresh_engine.margin_cycles
        )
        margin = engine.margin_cycles
    l2sim = None
    if cache.l2_cache is not None:
        source = cache.l2_cache
        l2sim = SetAssociativeCache(
            capacity_bytes=source.capacity_bytes,
            line_bytes=source.line_bytes,
            ways=source.ways,
            assume_warm=source.assume_warm,
        )

    partial = type(refresh) is PartialRefresh
    threshold = refresh.threshold_cycles if partial else 0
    maxref_by_r = (
        {r: refresh.max_refreshes(r) for r in distinct} if partial else {}
    )
    if engine is not None:
        # Between token services the data lives exactly one retention
        # period; services are counted online, so lazy accounting is off.
        acc_mode = 0
        lifetime: List[float] = [float(r) for r in retention]
    else:
        life_by_r = {r: refresh.effective_lifetime(r) for r in distinct}
        lifetime = [life_by_r[r] for r in retention]
        if type(refresh) is FullRefresh:
            acc_mode = 1
        elif partial:
            acc_mode = 2
        else:
            acc_mode = 0

    set_tags: List[List[int]] = [[-1] * n_ways for _ in range(n_sets)]
    valid = [False] * n_lines
    dirty = [False] * n_lines
    stale = [False] * n_lines
    fill_c = [0] * n_lines
    expiry = [0.0] * n_lines
    recency = [0] * n_lines
    refreshes_done = [0] * n_lines
    INF = math.inf
    next_expiry = [INF] * n_sets
    orders: List[List[int]] = []
    for s in range(n_sets):
        base = s * n_ways
        orders.append(sorted(
            (w for w in range(n_ways) if retention[base + w] > 0),
            key=lambda w: (-retention[base + w], w),
        ))

    loads = stores = hits = misses_cold = misses_expired = 0
    misses_dead = writebacks = expiry_wb = write_throughs = 0
    l2_acc = l2_hits = l2_misses = line_refreshes = refresh_blocked = 0
    line_moves = move_blocked = wb_stall = fills = 0
    next_due = INF

    wb_queued = 0
    wb_last = 0.0
    wb_cap = config.write_buffer_entries
    wb_drain = config.l2_write_interval_cycles

    def _push(cycle):
        """WriteBuffer.push: drain lazily, stall when full; returns stall."""
        nonlocal wb_queued, wb_last
        if cycle < wb_last:
            cycle = wb_last
        drained = int((cycle - wb_last) // wb_drain)
        if drained:
            wb_queued -= drained
            if wb_queued < 0:
                wb_queued = 0
        wb_last = cycle
        if wb_queued >= wb_cap:
            wb_queued = wb_cap
            return wb_drain
        wb_queued += 1
        return 0

    def _account(age, r):
        """Lazy refresh accounting (no-op while the engine is online)."""
        nonlocal line_refreshes, refresh_blocked
        if not acc_mode or r <= 0:
            return
        count = age // r
        if acc_mode == 2:
            cap = maxref_by_r[r]
            if count > cap:
                count = cap
        if count:
            line_refreshes += count
            refresh_blocked += count * refresh_cpl

    def _sched(s, w, j, cycle):
        """Controller._maybe_schedule_refresh, tracking the due bound."""
        nonlocal next_due
        r = retention[j]
        if r <= 0:
            return
        if partial:
            if r >= threshold or refreshes_done[j] >= maxref_by_r[r]:
                return
        if engine.schedule(s, w, n_ways, cycle, r):
            due = cycle + r - margin
            if due < next_due:
                next_due = due

    def _drain(now):
        """Controller._service_scheduled_refreshes + due-bound refresh."""
        nonlocal next_due, line_refreshes, refresh_blocked
        while True:
            serviced = engine.due_refreshes(now)
            if not serviced:
                break
            for service, si, w in serviced:
                j = si * n_ways + w
                if not valid[j] or stale[j]:
                    continue
                r = retention[j]
                fill_c[j] = service
                e = service + r
                expiry[j] = e
                if e < next_expiry[si]:
                    next_expiry[si] = e
                refreshes_done[j] += 1
                line_refreshes += 1
                refresh_blocked += refresh_cpl
                _sched(si, w, j, service)
        earliest = engine.earliest_due()
        next_due = earliest if earliest is not None else INF

    def _writeback(s, w, j, cycle, expired):
        """The dirty write-back half of a line close-out / expiry."""
        nonlocal writebacks, expiry_wb, wb_stall
        writebacks += 1
        if expired:
            expiry_wb += 1
        if l2sim is not None:
            l2sim.fill_dirty(set_tags[s][w] * n_sets + s)
        wb_stall += _push(cycle)
        dirty[j] = False

    def _evict(s, w, j, cycle):
        """Controller.evict_line on a valid way."""
        if stale[j]:
            # Expiry already accounted refreshes and any write-back.
            valid[j] = False
            stale[j] = False
            dirty[j] = False
            set_tags[s][w] = -1
            return
        age = cycle - fill_c[j]
        if age < 0:
            age = 0
        _account(age, retention[j])
        if engine is not None:
            engine.cancel(s, w)
        if dirty[j]:
            _writeback(s, w, j, cycle, False)
        valid[j] = False
        set_tags[s][w] = -1

    def _move(s, src, dst, cycle):
        """Controller.move_line (RSP intrinsic refresh)."""
        nonlocal line_moves, move_blocked
        base = s * n_ways
        jsrc = base + src
        jdst = base + dst
        age = cycle - fill_c[jsrc]
        if age < 0:
            age = 0
        _account(age, retention[jsrc])
        row = set_tags[s]
        row[dst] = row[src]
        row[src] = -1
        dirty[jdst] = dirty[jsrc]
        dirty[jsrc] = False
        recency[jdst] = recency[jsrc]
        fill_c[jdst] = cycle
        e = cycle + lifetime[jdst]
        expiry[jdst] = e
        if e < next_expiry[s]:
            next_expiry[s] = e
        valid[jdst] = True
        valid[jsrc] = False
        refreshes_done[jdst] = 0
        if engine is not None:
            engine.cancel(s, src)
            _sched(s, dst, jdst, cycle)
        line_moves += 1
        move_blocked += refresh_cpl

    def _promote(s, way, j, cycle):
        """RSPLRUPolicy.on_hit + controller.promote_line."""
        nonlocal line_moves, move_blocked
        order = orders[s]
        if not order or way == order[0]:
            return
        try:
            position = order.index(way)
        except ValueError:
            return
        base = s * n_ways
        row = set_tags[s]
        stash_tag = row[way]
        stash_dirty = dirty[j]
        stash_rec = recency[j]
        valid[j] = False
        row[way] = -1
        for i in range(position, 0, -1):
            src, dst = order[i - 1], order[i]
            if valid[base + src]:
                _move(s, src, dst, cycle)
        landing = order[0]
        jl = base + landing
        row[landing] = stash_tag
        dirty[jl] = stash_dirty
        recency[jl] = stash_rec
        fill_c[jl] = cycle
        e = cycle + lifetime[jl]
        expiry[jl] = e
        if e < next_expiry[s]:
            next_expiry[s] = e
        valid[jl] = True
        # The landing slot keeps the controller's quirk: no engine
        # cancel/re-arm and no refreshes_done reset on promotion landing.
        line_moves += 1
        move_blocked += refresh_cpl

    cycles = artifacts.cycles
    sets_in = artifacts.set_indices
    tags_in = artifacts.tags
    writes_in = artifacts.is_write
    n = len(cycles)
    warm = artifacts.warmup_references
    tick = 0

    if 0 < warm < n:
        segments = ((0, warm), (warm, n))
    else:
        segments = ((0, n),)
    for start, stop in segments:
        if start:
            # Measurement begins: drop the warmup counts (state persists).
            loads = stores = hits = misses_cold = misses_expired = 0
            misses_dead = writebacks = expiry_wb = write_throughs = 0
            l2_acc = l2_hits = l2_misses = line_refreshes = 0
            refresh_blocked = line_moves = move_blocked = 0
            wb_stall = fills = 0
        for cyc, s, tag, wr in zip(
            cycles[start:stop],
            sets_in[start:stop],
            tags_in[start:stop],
            writes_in[start:stop],
        ):
            tick += 1
            if engine is not None and cyc >= next_due:
                _drain(cyc)

            base = s * n_ways
            row = set_tags[s]

            # Lazy per-set expiry sweep, in controller way order.
            recent = None
            if cyc >= next_expiry[s]:
                nxt = INF
                for w in range(n_ways):
                    j = base + w
                    if valid[j] and not stale[j]:
                        e = expiry[j]
                        if cyc >= e:
                            t = row[w]
                            if recent is None:
                                recent = {t}
                            else:
                                recent.add(t)
                            ecyc = int(e)
                            age = ecyc - fill_c[j]
                            if age < 0:
                                age = 0
                            _account(age, retention[j])
                            if engine is not None:
                                engine.cancel(s, w)
                            if dirty[j]:
                                _writeback(s, w, j, ecyc, True)
                            if aware:
                                valid[j] = False
                                row[w] = -1
                            else:
                                stale[j] = True
                        elif e < nxt:
                            nxt = e
                next_expiry[s] = nxt

            if wr and not write_back:
                # Write-through, no-write-allocate store path.
                write_throughs += 1
                if l2sim is not None:
                    l2sim.fill_dirty(tag * n_sets + s)
                wb_stall += _push(cyc)
                try:
                    w = row.index(tag)
                except ValueError:
                    w = -1
                if w >= 0:
                    j = base + w
                    if not stale[j]:
                        recency[j] = tick
                        hits += 1
                        if promote:
                            _promote(s, w, j, cyc)
                        continue
                misses_cold += 1
                continue

            # Hits vastly outnumber misses, so a single ``index`` scan
            # with an exception fallback beats ``in`` + ``index``.
            try:
                w = row.index(tag)
            except ValueError:
                w = -1
            if w >= 0:
                j = base + w
                if stale[j]:
                    # Expired miss: the line refills in place from the L2.
                    misses_expired += 1
                    l2_acc += 1
                    if l2sim is not None:
                        if l2sim.access(tag * n_sets + s, is_write=False):
                            l2_hits += 1
                        else:
                            l2_misses += 1
                    stale[j] = False
                    dirty[j] = wr
                    fill_c[j] = cyc
                    e = cyc + lifetime[j]
                    expiry[j] = e
                    if e < next_expiry[s]:
                        next_expiry[s] = e
                    recency[j] = tick
                    fills += 1
                    # Controller quirk preserved: an in-place refill does
                    # not re-arm the engine or reset refreshes_done.
                    continue
                hits += 1
                recency[j] = tick
                if wr:
                    dirty[j] = True
                if promote:
                    _promote(s, w, j, cyc)
                continue

            # Miss: classify by whether the tag was resident-but-expired.
            expired = recent is not None and tag in recent
            l2_acc += 1
            if l2sim is not None:
                if l2sim.access(tag * n_sets + s, is_write=False):
                    l2_hits += 1
                else:
                    l2_misses += 1
            if rsp:
                order = orders[s]
                if not order:
                    misses_dead += 1
                    continue
                depth = len(order) - 1
                for position in range(depth, -1, -1):
                    if not valid[base + order[position]]:
                        depth = position
                        break
                else:
                    tail = order[-1]
                    _evict(s, tail, base + tail, cyc)
                    depth = len(order) - 1
                for position in range(depth, 0, -1):
                    src, dst = order[position - 1], order[position]
                    if valid[base + src]:
                        _move(s, src, dst, cyc)
                victim = order[0]
            elif dsp:
                order = orders[s]
                if not order:
                    misses_dead += 1
                    continue
                victim = -1
                for w in order:
                    if not valid[base + w]:
                        victim = w
                        break
                if victim < 0:
                    best = -1
                    best_r = 0
                    for w in order:
                        r_ = recency[base + w]
                        if best < 0 or r_ < best_r:
                            best = w
                            best_r = r_
                    victim = best
                    _evict(s, victim, base + victim, cyc)
            else:  # LRU, retention-blind
                victim = -1
                for w in range(n_ways):
                    if not valid[base + w]:
                        victim = w
                        break
                if victim < 0:
                    best = 0
                    best_r = recency[base]
                    for w in range(1, n_ways):
                        r_ = recency[base + w]
                        if r_ < best_r:
                            best = w
                            best_r = r_
                    victim = best
                    _evict(s, victim, base + victim, cyc)
            if expired:
                misses_expired += 1
            else:
                misses_cold += 1
            j = base + victim
            row[victim] = tag
            valid[j] = True
            stale[j] = False
            dirty[j] = wr
            fill_c[j] = cyc
            e = cyc + lifetime[j]
            expiry[j] = e
            if e < next_expiry[s]:
                next_expiry[s] = e
            recency[j] = tick
            refreshes_done[j] = 0
            fills += 1
            if engine is not None:
                _sched(s, victim, j, cyc)

    if warm and n <= warm:
        loads = stores = hits = misses_cold = misses_expired = 0
        misses_dead = writebacks = expiry_wb = write_throughs = 0
        l2_acc = l2_hits = l2_misses = line_refreshes = 0
        refresh_blocked = line_moves = move_blocked = 0
        wb_stall = fills = 0
    else:
        # loads/stores are state-independent: count them from the columnar
        # write flags instead of branching once per access in the loop.
        measured_from = warm if 0 < warm < n else 0
        writes_col = artifacts.columnar()["write"]
        stores = int(np.count_nonzero(writes_col[measured_from:]))
        loads = (n - measured_from) - stores

    # Finalize: refreshes still owed by resident lines, then the global
    # scheme's whole-cache passes.
    end_cycle = artifacts.end_cycle
    if acc_mode:
        for j in range(n_lines):
            if valid[j] and not stale[j]:
                e = expiry[j]
                cutoff = end_cycle if e > end_cycle else e
                age = int(cutoff) - fill_c[j]
                if age < 0:
                    age = 0
                _account(age, retention[j])
    if type(refresh) is GlobalRefresh:
        passes = refresh.passes_in_window(end_cycle)
        line_refreshes += passes * n_lines
        refresh_blocked += passes * refresh.pass_cycles

    return CacheStats(
        loads=loads,
        stores=stores,
        hits=hits,
        misses_cold=misses_cold,
        misses_expired=misses_expired,
        misses_dead_bypass=misses_dead,
        writebacks=writebacks,
        expiry_writebacks=expiry_wb,
        write_throughs=write_throughs,
        l2_accesses=l2_acc,
        l2_hits=l2_hits,
        l2_misses=l2_misses,
        line_refreshes=line_refreshes,
        refresh_blocked_cycles=refresh_blocked,
        line_moves=line_moves,
        move_blocked_cycles=move_blocked,
        write_buffer_stall_cycles=wb_stall,
        fills=fills,
    )


__all__ = [
    "simulate_trace_timeline",
]
