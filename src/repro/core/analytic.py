"""Closed-form (simulation-free) scheme evaluation.

The event-driven path (:class:`~repro.core.evaluation.Evaluator`) is the
authority; this module predicts the same normalized performance from
first principles, in microseconds instead of seconds per (chip, scheme,
benchmark) point:

* the benchmark's reuse-distance CDF F(d) (the Figure 1 mixture) says how
  many references arrive at each age of a line;
* a line with effective lifetime L turns references of age > L into
  *expiry misses* -- unless the baseline cache would have evicted the line
  by then anyway (age > the LRU eviction horizon A);
* dead ways shrink a set's associativity, scaling the horizon and adding
  conflict misses; fully-dead sets bypass to the L2;
* the per-scheme effective lifetime is the refresh policy's
  (:meth:`~repro.cache.refresh.RefreshPolicy.effective_lifetime`), and the
  RSP placements see the *longest* ways preferentially.

The closed form deliberately mirrors the analytic CPI model's inputs so
the output plugs straight into
:class:`~repro.cpu.perfmodel.AnalyticCPUModel`.  Cross-validation against
the event simulator lives in
``tests/integration/test_analytic_vs_event.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.cache.counters import LineCounterConfig, quantize_retention
from repro.cache.refresh import make_refresh_policy
from repro.cpu.perfmodel import AnalyticCPUModel, REPLAY_FLUSH_PENALTY_CYCLES
from repro.workloads.profiles import BenchmarkProfile
from repro.core.architecture import Cache3T1DArchitecture


@dataclass(frozen=True)
class AnalyticResult:
    """Closed-form estimate for one (architecture, benchmark) pair."""

    benchmark: str
    scheme: str
    normalized_performance: float
    expiry_miss_fraction: float
    """Predicted expiry/dead misses per demand reference."""
    dead_way_fraction: float
    eviction_horizon_cycles: float


def eviction_horizon_cycles(
    profile: BenchmarkProfile, live_ways: float, n_sets: int
) -> float:
    """Expected age at which the baseline LRU evicts an untouched line.

    Fills arrive at each set at roughly miss_rate * traffic / n_sets per
    cycle; an untouched line falls out after ``live_ways`` further fills.
    """
    if live_ways <= 0:
        return 0.0
    # Fills come from compulsory misses plus the L2-tier reuses, which
    # nearly always miss the L1 and refill their lines.
    base_miss_rate = 1.0 / profile.accesses_per_line + profile.p_l2
    fills_per_cycle = (
        base_miss_rate * profile.cache_traffic_per_cycle / n_sets
    )
    if fills_per_cycle <= 0:
        return math.inf
    return live_ways / fills_per_cycle


REUSE_CLUSTERING_DISCOUNT: float = 0.4
"""Fraction of would-be-expired references that actually miss.

An expiry miss refills the line, so later references clustered behind the
first one hit again; counting every reference older than the lifetime
over-charges.  Fitted against the event simulator (see
``tests/integration/test_analytic_vs_event.py``), which remains the
authority."""


def expiry_fraction_for_lifetime(
    profile: BenchmarkProfile, lifetime_cycles: float, horizon_cycles: float
) -> float:
    """References that expire: older than the lifetime but young enough
    that the baseline would still have held them, discounted for the
    post-refill clustering effect."""
    if lifetime_cycles >= horizon_cycles:
        return 0.0
    raw = max(
        0.0,
        profile.reuse_cdf(horizon_cycles)
        - profile.reuse_cdf(lifetime_cycles),
    )
    return REUSE_CLUSTERING_DISCOUNT * raw


def evaluate_analytically(
    architecture: Cache3T1DArchitecture,
    profile: BenchmarkProfile,
    counter: Optional[LineCounterConfig] = None,
    window_cycles: float = math.inf,
) -> AnalyticResult:
    """Predict normalized performance without running a trace.

    Supports the line-level schemes; the global scheme's closed form
    already exists as
    :meth:`~repro.cpu.perfmodel.AnalyticCPUModel.estimate_global_refresh`.

    ``window_cycles`` caps the reuse distances considered -- pass the
    measurement-window length when comparing against a finite trace
    (reuses longer than the window cannot occur in it); the default
    (infinite) models steady-state execution.
    """
    if window_cycles <= 0:
        raise ConfigurationError("window_cycles must be positive")
    scheme = architecture.scheme
    if scheme.is_global:
        raise ConfigurationError(
            "use AnalyticCPUModel.estimate_global_refresh for the global "
            "scheme"
        )
    config = architecture.config
    geometry = config.geometry
    counter = counter or architecture.counter
    retention = np.asarray(
        quantize_retention(architecture.retention_cycles_raw, counter),
        dtype=float,
    ).reshape(geometry.n_sets, geometry.ways)

    refresh = make_refresh_policy(
        scheme.refresh,
        partial_threshold_cycles=config.partial_refresh_threshold_cycles,
    )
    lifetimes = np.vectorize(refresh.effective_lifetime)(retention)

    dead = retention <= 0
    live_per_set = geometry.ways - dead.sum(axis=1)
    dead_fraction = float(dead.mean())
    mean_live = float(live_per_set.mean())
    horizon = min(
        eviction_horizon_cycles(profile, mean_live, geometry.n_sets),
        window_cycles,
    )

    # Which lines actually hold data?  Retention-aware placements use the
    # live ways; with RSP the *longest-retention* ways carry the traffic
    # (weight the best ways of each set).
    if scheme.replacement.upper().startswith("RSP"):
        sorted_life = np.sort(np.where(dead, 0.0, lifetimes), axis=1)[:, ::-1]
        # Geometric usage weighting: the head of the retention order sees
        # most fills (new blocks always enter there).
        weights = np.array(
            [0.5 ** k for k in range(geometry.ways)], dtype=float
        )
        weights /= weights.sum()
        per_set = np.array(
            [
                sum(
                    weights[k] * expiry_fraction_for_lifetime(
                        profile, sorted_life[s, k], horizon
                    )
                    for k in range(geometry.ways)
                    if sorted_life[s, k] > 0
                )
                for s in range(geometry.n_sets)
            ]
        )
        usable = live_per_set > 0
        expiry = float(np.where(usable, per_set, 0.0).mean())
    elif scheme.replacement.upper() == "DSP":
        masked = np.where(dead, np.nan, lifetimes)
        per_line = np.vectorize(
            lambda L: 0.0
            if math.isnan(L)
            else expiry_fraction_for_lifetime(profile, L, horizon)
        )(masked)
        counts = np.maximum(live_per_set, 1)
        expiry = float(
            (np.nansum(per_line, axis=1) / counts).mean()
        )
    else:
        # Retention-blind LRU: every way (dead ones included) carries
        # 1/ways of the blocks; dead ways expire every reuse.
        per_line = np.vectorize(
            lambda L: expiry_fraction_for_lifetime(profile, L, horizon)
            if L > 0
            else profile.reuse_cdf(horizon)
        )(lifetimes)
        expiry = float(per_line.mean())

    # Fully-dead sets bypass: every reference to them misses.
    fully_dead = float((live_per_set == 0).mean())
    expiry = expiry * (1.0 - fully_dead) + fully_dead * profile.reuse_cdf(
        horizon
    )

    model = AnalyticCPUModel(profile, config)
    effective_latency = model.miss_latency_cycles() * (
        1.0 - profile.miss_overlap
    )
    extra_mpi = expiry * profile.mem_refs_per_instr
    cpi = (
        model.baseline_cpi
        + extra_mpi * effective_latency
        + extra_mpi * REPLAY_FLUSH_PENALTY_CYCLES
    )
    return AnalyticResult(
        benchmark=profile.name,
        scheme=scheme.name,
        normalized_performance=(1.0 / cpi) / profile.base_ipc,
        expiry_miss_fraction=expiry,
        dead_way_fraction=dead_fraction,
        eviction_horizon_cycles=horizon,
    )
