"""Benchmark evaluation of cache architectures.

:class:`Evaluator` is the workhorse behind every figure: it generates (and
caches) the synthetic benchmark traces, runs each architecture's cache
simulator over them, converts the event counts to IPC with the analytic
CPU model, and reports the paper's metrics:

* **normalized performance** -- IPC x frequency relative to the ideal
  (golden 6T) design on the same benchmark;
* **BIPS** -- absolute billions of instructions per second;
* **normalized dynamic power** -- measured dynamic power relative to the
  ideal 6T design's dynamic power on the same trace (the Figure 6b /
  Figure 10 y-axis).

Single-number results are harmonic means over the 8 benchmarks, as in the
paper (section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.technology import calibration
from repro.technology.node import TechnologyNode
from repro.variation.statistics import harmonic_mean
from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats
from repro.cpu.perfmodel import AnalyticCPUModel, PerformanceEstimate
from repro.workloads.generator import MemoryTrace, SyntheticWorkload
from repro.workloads.profiles import benchmark_names, get_profile
from repro.core.architecture import (
    Cache3T1DArchitecture,
    Cache6TArchitecture,
    IdealCacheArchitecture,
)
from repro.core.batcheval import TraceArtifacts, kernel_support, simulate_trace

Architecture = Union[
    Cache3T1DArchitecture, Cache6TArchitecture, IdealCacheArchitecture
]


@dataclass(frozen=True)
class BenchmarkResult:
    """One (architecture, benchmark) evaluation."""

    benchmark: str
    scheme: str
    normalized_performance: float
    ipc: float
    bips: float
    dynamic_power_watts: float
    dynamic_power_normalized: float
    stats: Optional[CacheStats] = None
    estimate: Optional[PerformanceEstimate] = None
    kernel_path: str = "event"
    """Which replay path produced ``stats``: ``"flattened"``,
    ``"timeline"``, or ``"event"`` (see
    :func:`repro.core.batcheval.kernel_support`)."""


@dataclass(frozen=True)
class ChipEvaluation:
    """Aggregate over the benchmark suite for one architecture."""

    scheme: str
    results: Dict[str, BenchmarkResult]

    def _require_results(self) -> None:
        if not self.results:
            raise ConfigurationError(
                "ChipEvaluation holds no benchmark results; aggregate "
                "metrics are undefined over an empty suite"
            )

    @property
    def normalized_performance(self) -> float:
        """Harmonic mean of per-benchmark normalized performance."""
        self._require_results()
        return harmonic_mean(
            [r.normalized_performance for r in self.results.values()]
        )

    @property
    def bips(self) -> float:
        """Harmonic mean BIPS over the suite."""
        self._require_results()
        return harmonic_mean([r.bips for r in self.results.values()])

    @property
    def dynamic_power_normalized(self) -> float:
        """Mean normalized dynamic power over the suite."""
        self._require_results()
        values = [r.dynamic_power_normalized for r in self.results.values()]
        return sum(values) / len(values)

    @property
    def worst_benchmark(self) -> Tuple[str, float]:
        """(name, normalized performance) of the worst-hit benchmark."""
        self._require_results()
        name = min(
            self.results, key=lambda n: self.results[n].normalized_performance
        )
        return name, self.results[name].normalized_performance

    @property
    def kernel_paths(self) -> Dict[str, str]:
        """Replay path taken per benchmark (``benchmark -> path``)."""
        return {
            name: result.kernel_path
            for name, result in self.results.items()
        }


class Evaluator:
    """Runs benchmark suites against cache architectures.

    Traces and the ideal-cache baseline runs are generated once per
    evaluator and reused for every architecture, so comparing many chips
    and schemes stays cheap and consistent (identical reference streams).
    """

    def __init__(
        self,
        node: TechnologyNode,
        config: Optional[CacheConfig] = None,
        n_references: int = 20000,
        seed: int = 0,
        benchmarks: Optional[Sequence[str]] = None,
        use_batch_kernel: bool = True,
    ):
        if n_references < 1:
            raise ConfigurationError("n_references must be >= 1")
        self.node = node
        self.config = config or CacheConfig()
        self.n_references = n_references
        self.seed = seed
        self.use_batch_kernel = use_batch_kernel
        self.benchmarks = tuple(
            benchmark_names() if benchmarks is None else benchmarks
        )
        if not self.benchmarks:
            raise ConfigurationError(
                "benchmarks must be a non-empty sequence (or None for the "
                "full suite)"
            )
        self._traces: Dict[str, MemoryTrace] = {}
        self._baseline_stats: Dict[Tuple[str, int], CacheStats] = {}
        self._baseline_paths: Dict[Tuple[str, int], str] = {}
        self._artifacts: Dict[Tuple[str, int], TraceArtifacts] = {}

    # ------------------------------------------------------------------
    # cached inputs
    # ------------------------------------------------------------------

    def trace(self, benchmark: str) -> MemoryTrace:
        """The cached reference trace for ``benchmark``.

        Every trace is prefixed with one reference to each physical line's
        worth of distinct warmup addresses, so measurements start from a
        full cache (see ``SyntheticWorkload.memory_trace``).
        """
        if benchmark not in self._traces:
            workload = SyntheticWorkload(get_profile(benchmark), seed=self.seed)
            self._traces[benchmark] = workload.memory_trace(
                self.n_references,
                warmup_lines=self.config.geometry.n_lines,
            )
        return self._traces[benchmark]

    def trace_artifacts(self, benchmark: str, n_sets: int) -> TraceArtifacts:
        """The cached kernel artifacts for ``benchmark`` at ``n_sets``.

        Set indices, tags, and plain-int cycle/write arrays are derived
        once per (trace, set count) and shared by every (chip, scheme)
        evaluation that runs through the batched kernel.
        """
        key = (benchmark, n_sets)
        artifacts = self._artifacts.get(key)
        if artifacts is None:
            artifacts = TraceArtifacts.from_trace(self.trace(benchmark), n_sets)
            self._artifacts[key] = artifacts
        return artifacts

    def _run_trace(self, cache, benchmark: str) -> Tuple[CacheStats, str]:
        """Run the benchmark trace through ``cache``.

        Routes through the batched kernels (:mod:`repro.core.batcheval`)
        whenever :func:`~repro.core.batcheval.kernel_support` allows --
        bit-identical to the event controller -- and falls back to
        ``RetentionAwareCache.run_trace`` for caches wired with
        third-party policy or device objects.  Returns the stats plus the
        replay path taken (``"flattened"``/``"timeline"``/``"event"``).
        """
        if self.use_batch_kernel:
            support = kernel_support(cache)
            if support.supported:
                stats = simulate_trace(
                    cache,
                    self.trace_artifacts(
                        benchmark, cache.config.geometry.n_sets
                    ),
                )
                return stats, support.path
        trace = self.trace(benchmark)
        stats = cache.run_trace(
            trace.cycles,
            trace.line_addresses,
            trace.is_write,
            warmup_references=trace.warmup_references,
        )
        return stats, "event"

    def baseline_stats(self, benchmark: str, ways: Optional[int] = None) -> CacheStats:
        """Ideal-cache stats on the benchmark trace (cached per assoc)."""
        ways = ways or self.config.geometry.ways
        key = (benchmark, ways)
        if key not in self._baseline_stats:
            config = (
                self.config
                if ways == self.config.geometry.ways
                else self.config.with_ways(ways)
            )
            ideal = IdealCacheArchitecture(self.node, config)
            stats, path = self._run_trace(ideal.build_cache(), benchmark)
            self._baseline_stats[key] = stats
            self._baseline_paths[key] = path
        return self._baseline_stats[key]

    def baseline_path(self, benchmark: str, ways: Optional[int] = None) -> str:
        """Replay path the cached ideal baseline took for ``benchmark``."""
        ways = ways or self.config.geometry.ways
        self.baseline_stats(benchmark, ways)
        return self._baseline_paths[(benchmark, ways)]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate_benchmark(
        self, architecture: Architecture, benchmark: str
    ) -> BenchmarkResult:
        """Run one benchmark against one architecture."""
        profile = get_profile(benchmark)
        trace = self.trace(benchmark)
        window = max(1, trace.measured_window_cycles)
        ways = architecture.config.geometry.ways
        baseline = self.baseline_stats(benchmark, ways)
        power_6t = calibration.port_access_energy(self.node, "6T")
        ideal_power = (
            baseline.port_accesses * power_6t / window * self.node.frequency
        )

        if isinstance(architecture, IdealCacheArchitecture):
            return BenchmarkResult(
                benchmark=benchmark,
                scheme="ideal-6T",
                normalized_performance=1.0,
                ipc=profile.base_ipc,
                bips=profile.base_ipc * self.node.frequency / 1e9,
                dynamic_power_watts=ideal_power,
                dynamic_power_normalized=1.0,
                stats=baseline,
                kernel_path=self.baseline_path(benchmark, ways),
            )

        if isinstance(architecture, Cache6TArchitecture):
            # Same cache behaviour as ideal; only the clock differs.
            norm = architecture.normalized_frequency
            frequency = architecture.frequency
            return BenchmarkResult(
                benchmark=benchmark,
                scheme=architecture.chip.cell_label,
                normalized_performance=norm,
                ipc=profile.base_ipc,
                bips=profile.base_ipc * frequency / 1e9,
                dynamic_power_watts=ideal_power * norm,
                dynamic_power_normalized=norm,
                stats=baseline,
                kernel_path=self.baseline_path(benchmark, ways),
            )

        # --- 3T1D architecture ---
        cache = architecture.build_cache()
        stats, kernel_path = self._run_trace(cache, benchmark)
        model = AnalyticCPUModel(profile, architecture.config)
        if architecture.scheme.is_global:
            duty = min(
                1.0,
                architecture.config.geometry.refresh_cycles_full_pass
                / max(1, architecture.chip_retention_cycles),
            )
            estimate = model.estimate_global_refresh(duty)
        else:
            measured_l2 = (
                stats.measured_l2_miss_rate
                if architecture.config.real_l2
                and (stats.l2_hits + stats.l2_misses) > 0
                else None
            )
            estimate = model.estimate(
                stats,
                instructions=trace.instructions,
                window_cycles=window,
                baseline_stats=baseline,
                port_block_parallelism=float(
                    architecture.config.geometry.n_pairs
                ),
                l2_miss_rate=measured_l2,
            )
        normalized = estimate.ipc / profile.base_ipc

        power_model = architecture.power_model()
        if architecture.scheme.is_global:
            # The pass energy recurs every retention period regardless of
            # the window; use the closed-form global-refresh power.
            dynamic_power = power_model.event_dynamic_power(
                cycles=window,
                port_accesses=stats.port_accesses,
                line_refreshes=0,
                extra_l2_accesses=max(
                    0, stats.l2_accesses - baseline.l2_accesses
                ),
                store_accesses=stats.stores,
            ) + power_model.global_refresh_power(
                architecture.chip_retention_cycles / self.node.frequency
            )
        else:
            dynamic_power = power_model.event_dynamic_power(
                cycles=window,
                port_accesses=stats.port_accesses,
                line_refreshes=stats.line_refreshes + stats.line_moves,
                extra_l2_accesses=max(
                    0, stats.l2_accesses - baseline.l2_accesses
                ),
                include_line_counters=True,
                store_accesses=stats.stores,
            )
        return BenchmarkResult(
            benchmark=benchmark,
            scheme=architecture.scheme.name,
            normalized_performance=normalized,
            ipc=estimate.ipc,
            bips=estimate.ipc * architecture.frequency / 1e9,
            dynamic_power_watts=dynamic_power,
            dynamic_power_normalized=dynamic_power / ideal_power,
            stats=stats,
            estimate=estimate,
            kernel_path=kernel_path,
        )

    def evaluate(
        self,
        architecture: Architecture,
        benchmarks: Optional[Sequence[str]] = None,
    ) -> ChipEvaluation:
        """Run the benchmark suite against one architecture."""
        names = tuple(self.benchmarks if benchmarks is None else benchmarks)
        if not names:
            raise ConfigurationError(
                "benchmarks must be a non-empty sequence (or None for the "
                "evaluator's suite)"
            )
        results = {
            name: self.evaluate_benchmark(architecture, name) for name in names
        }
        scheme = next(iter(results.values())).scheme
        return ChipEvaluation(scheme=scheme, results=results)
