"""Variable-latency 6T cache: the related-work alternative, quantified.

Section 6 cites variable-latency techniques for caches (Ozdemir et al.,
"yield-aware cache architectures") as the other road past frequency
binning: instead of clocking the whole chip at the slowest cell, keep the
nominal frequency and give slow lines an extra array cycle.  The paper
argues 3T1D beats this family because 6T still suffers the stability and
leakage problems; this module makes the performance side of that
comparison concrete.

Model: the chip keeps the Table 1 frequency.  A line whose access path
fits the single-cycle array budget behaves normally; a slower line adds
one cycle to the L1 hit latency of every access that touches it; a line
slower than even the two-cycle budget is disabled (like a dead 3T1D
line).  The extra hit latency is partially hidden by the out-of-order
core (load-use visibility factor), and disabled lines cost like DSP's
dead ways.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.array.chip import SRAMChipSample
from repro.cpu.perfmodel import AnalyticCPUModel
from repro.cache.config import CacheConfig
from repro.workloads.profiles import BenchmarkProfile

EXTRA_CYCLE_VISIBILITY: float = 0.4
"""Fraction of an extra L1 hit cycle the out-of-order core cannot hide
(load-use chains; consistent with the perf model's overlap factors)."""


@dataclass(frozen=True)
class VariableLatencyResult:
    """Performance of one 6T chip under variable-latency operation."""

    benchmark: str
    normalized_performance: float
    slow_line_fraction: float
    disabled_line_fraction: float

    @property
    def keeps_nominal_frequency(self) -> bool:
        """Variable-latency chips always clock at the Table 1 frequency."""
        return True


def evaluate_variable_latency(
    chip: SRAMChipSample,
    profile: BenchmarkProfile,
    config: CacheConfig = None,
) -> VariableLatencyResult:
    """Evaluate a 6T chip run at nominal frequency with per-line latency.

    The single-cycle budget is the node's cycle time (the array gets one
    of the three pipeline cycles); lines beyond twice that budget are
    disabled.
    """
    if chip.access_time_by_line is None:
        raise ConfigurationError(
            "chip sample carries no per-line access times; resample with "
            "the current ChipSampler"
        )
    config = config or CacheConfig()
    budget = chip.node.cycle_time
    access = chip.access_time_by_line
    slow = float(np.mean((access > budget) & (access <= 2 * budget)))
    disabled = float(np.mean(access > 2 * budget))

    model = AnalyticCPUModel(profile, config)
    # Slow lines: +1 cycle on the fraction of references that land on them
    # (uniform line usage), partially hidden by the OoO core.
    cpi_slow = (
        profile.mem_refs_per_instr * slow * EXTRA_CYCLE_VISIBILITY
    )
    # Disabled lines: capacity loss like dead 3T1D ways under DSP -- the
    # references they would have served miss to the L2.
    effective_latency = model.miss_latency_cycles() * (
        1.0 - profile.miss_overlap
    )
    cpi_disabled = (
        profile.mem_refs_per_instr * disabled * effective_latency
    )
    cpi = model.baseline_cpi + cpi_slow + cpi_disabled
    return VariableLatencyResult(
        benchmark=profile.name,
        normalized_performance=(1.0 / cpi) / profile.base_ipc,
        slow_line_fraction=slow,
        disabled_line_fraction=disabled,
    )
