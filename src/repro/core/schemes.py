"""The retention-scheme design space (paper section 4.3.3).

A scheme is a (refresh policy, placement policy) pair.  The cross product
of {no-refresh, partial-refresh, full-refresh} x {LRU, DSP, RSP-FIFO,
RSP-LRU} gives 12 combinations, but the RSP placements already refresh
intrinsically (moving a block rewrites it), so the paper evaluates 8
line-level schemes plus the section 4.1 global scheme.

The paper picks three representatives for the detailed studies
(``HEADLINE_SCHEMES``): no-refresh/LRU (simplest), partial-refresh/DSP
(dead-line aware, selective refresh), and RSP-FIFO (best performing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetentionScheme:
    """One point in the refresh x placement design space."""

    name: str
    refresh: str
    replacement: str
    is_global: bool = False

    @property
    def has_intrinsic_refresh(self) -> bool:
        """True for RSP placements, whose block moves rewrite the data."""
        return self.replacement.upper().startswith("RSP")

    @property
    def uses_line_counters(self) -> bool:
        """All line-level schemes track per-line retention."""
        return not self.is_global

    def __str__(self) -> str:
        return self.name


SCHEME_GLOBAL = RetentionScheme(
    name="global", refresh="global-refresh", replacement="LRU", is_global=True
)
SCHEME_NO_REFRESH_LRU = RetentionScheme(
    name="no-refresh/LRU", refresh="no-refresh", replacement="LRU"
)
SCHEME_PARTIAL_LRU = RetentionScheme(
    name="partial-refresh/LRU", refresh="partial-refresh", replacement="LRU"
)
SCHEME_FULL_LRU = RetentionScheme(
    name="full-refresh/LRU", refresh="full-refresh", replacement="LRU"
)
SCHEME_NO_REFRESH_DSP = RetentionScheme(
    name="no-refresh/DSP", refresh="no-refresh", replacement="DSP"
)
SCHEME_PARTIAL_DSP = RetentionScheme(
    name="partial-refresh/DSP", refresh="partial-refresh", replacement="DSP"
)
SCHEME_FULL_DSP = RetentionScheme(
    name="full-refresh/DSP", refresh="full-refresh", replacement="DSP"
)
SCHEME_RSP_FIFO = RetentionScheme(
    name="RSP-FIFO", refresh="no-refresh", replacement="RSP-FIFO"
)
SCHEME_RSP_LRU = RetentionScheme(
    name="RSP-LRU", refresh="no-refresh", replacement="RSP-LRU"
)

LINE_LEVEL_SCHEMES: Tuple[RetentionScheme, ...] = (
    SCHEME_NO_REFRESH_LRU,
    SCHEME_PARTIAL_LRU,
    SCHEME_FULL_LRU,
    SCHEME_NO_REFRESH_DSP,
    SCHEME_PARTIAL_DSP,
    SCHEME_FULL_DSP,
    SCHEME_RSP_FIFO,
    SCHEME_RSP_LRU,
)
"""The eight line-level schemes of Figure 9, in the paper's order."""

HEADLINE_SCHEMES: Tuple[RetentionScheme, ...] = (
    SCHEME_NO_REFRESH_LRU,
    SCHEME_PARTIAL_DSP,
    SCHEME_RSP_FIFO,
)
"""The three representatives used for Figures 10-12."""

_ALL: Dict[str, RetentionScheme] = {
    scheme.name.lower(): scheme
    for scheme in (SCHEME_GLOBAL,) + LINE_LEVEL_SCHEMES
}


def get_scheme(name: str) -> RetentionScheme:
    """Look up a scheme by its paper-style name (case-insensitive)."""
    try:
        return _ALL[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {name!r}; available: {sorted(_ALL)}"
        ) from None
