"""Batched scheme-evaluation kernel (the fast path behind every figure).

Every figure driver ultimately replays benchmark reference traces through
:class:`~repro.cache.controller.RetentionAwareCache`, once per
(chip x scheme x benchmark).  That event controller is the semantic
reference, but it pays interpreter overhead per memory reference.  This
module provides the production path:

* :class:`TraceArtifacts` -- per-trace columnar artifacts (a numpy
  structured array plus the plain-``int`` views derived from it)
  precomputed **once per suite** and shared by every evaluation instead
  of being re-derived per access;
* :func:`kernel_support` -- the typed capability probe: which replay
  path (``"flattened"``, ``"timeline"``, or ``"event"``) a cache
  configuration takes, and why when it must fall back;
* :func:`simulate_trace` -- the batched replay dispatcher.  LRU/DSP
  placement under the paper's four closed-form refresh policies runs the
  flattened kernel in this module; the RSP block-move schemes, the
  online token-refresh engine, and the real L2 simulator run the
  timeline kernels in :mod:`repro.core.timeline`.  Both paths are
  **bit-identical** to ``RetentionAwareCache.run_trace``; only caches
  with third-party refresh/replacement/device objects fall back to the
  event controller;
* :func:`evaluate_many` / :func:`evaluate` -- the stable batched API the
  engine (:mod:`repro.engine.parallel`) and the fig09/fig10/fig11
  drivers route through.

Bit-identity is enforced by tests that cross-validate the kernels
against the event controller on every scheme x benchmark; the perf
harness in ``benchmarks/perf/`` times both paths and records the speedup
and fast-path coverage in ``BENCH_batcheval.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChipDiscardedError, ConfigurationError, SimulationError
from repro.cache.controller import RetentionAwareCache
from repro.cache.refresh import (
    FullRefresh,
    GlobalRefresh,
    NoRefresh,
    PartialRefresh,
)
from repro.cache.replacement import (
    DSPPolicy,
    LRUPolicy,
    RSPFIFOPolicy,
    RSPLRUPolicy,
)
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.cache.token import TokenRefreshEngine
from repro.workloads.generator import MemoryTrace


def _trace_span(name: str, cat: str = "task", **args):
    """Ambient engine trace span (no-op unless a tracer is active).

    The import is deferred to call time: ``repro.engine``'s package init
    imports :mod:`repro.engine.parallel`, which imports this module, so
    a module-level import of ``repro.engine.trace`` here would be a
    cycle whenever batcheval is imported first.
    """
    from repro.engine.trace import span

    return span(name, cat=cat, **args)


#: Columnar layout shared by the replay kernels: one record per memory
#: reference, in program order.
COLUMN_DTYPE = np.dtype([
    ("cycle", np.int64),
    ("set", np.int32),
    ("tag", np.int64),
    ("write", np.bool_),
])


@dataclass(frozen=True)
class TraceArtifacts:
    """Per-trace columns precomputed once and shared by every evaluation.

    The event controller re-derives ``line_address % n_sets`` and
    ``line_address // n_sets`` (plus numpy-scalar conversions) on every
    access of every (chip, scheme) evaluation.  The kernels instead run
    over views of one structured array (:data:`COLUMN_DTYPE`), derived
    once per (trace, n_sets): the flattened kernel walks the
    program-order plain-``int`` lists; the per-set timeline kernel walks
    the :meth:`set_streams` regrouping of the same columns.
    """

    name: str
    n_sets: int
    cycles: List[int]
    set_indices: List[int]
    tags: List[int]
    is_write: List[bool]
    warmup_references: int
    end_cycle: int

    def __len__(self) -> int:
        return len(self.cycles)

    @classmethod
    def from_trace(cls, trace: MemoryTrace, n_sets: int) -> "TraceArtifacts":
        """Precompute the kernels' per-reference columns for one trace."""
        if n_sets < 1:
            raise ConfigurationError("n_sets must be >= 1")
        with _trace_span(
            "trace_artifacts", cat="traces",
            benchmark=trace.name, references=len(trace),
        ):
            addresses = np.asarray(trace.line_addresses, dtype=np.int64)
            columns = np.empty(len(addresses), dtype=COLUMN_DTYPE)
            columns["cycle"] = np.asarray(trace.cycles, dtype=np.int64)
            columns["set"] = addresses % n_sets
            columns["tag"] = addresses // n_sets
            columns["write"] = np.asarray(trace.is_write, dtype=bool)
            artifacts = cls(
                name=trace.name,
                n_sets=n_sets,
                cycles=columns["cycle"].tolist(),
                set_indices=columns["set"].tolist(),
                tags=columns["tag"].tolist(),
                is_write=columns["write"].tolist(),
                warmup_references=trace.warmup_references,
                end_cycle=int(trace.cycles[-1]) if len(trace) else 0,
            )
            object.__setattr__(artifacts, "_columns", columns)
            return artifacts

    def columnar(self) -> np.ndarray:
        """The trace as one structured array (:data:`COLUMN_DTYPE`).

        Built eagerly by :meth:`from_trace` (and lazily for artifacts
        constructed field-by-field), then cached on the instance.
        """
        cached = getattr(self, "_columns", None)
        if cached is not None:
            return cached
        columns = np.empty(len(self.cycles), dtype=COLUMN_DTYPE)
        columns["cycle"] = self.cycles
        columns["set"] = self.set_indices
        columns["tag"] = self.tags
        columns["write"] = self.is_write
        object.__setattr__(self, "_columns", columns)
        return columns

    def set_streams(self) -> List[Optional[Tuple]]:
        """The columns regrouped per cache set, for the timeline kernel.

        One entry per set: ``None`` for sets the trace never touches,
        else ``(ticks, cycles, tags, writes, warm_split)`` plain-int
        lists in program order, where ``ticks`` are global reference
        indices and ``warm_split`` is the position of the first
        post-warmup reference in this set's stream.  Derived once via a
        stable argsort over the ``set`` column, then cached.
        """
        cached = getattr(self, "_set_streams", None)
        if cached is not None:
            return cached
        columns = self.columnar()
        streams: List[Optional[Tuple]] = [None] * self.n_sets
        if len(columns):
            order = np.argsort(columns["set"], kind="stable")
            sets_sorted = columns["set"][order]
            bounds = np.searchsorted(
                sets_sorted, np.arange(self.n_sets + 1)
            )
            cycles_sorted = columns["cycle"][order]
            tags_sorted = columns["tag"][order]
            writes_sorted = columns["write"][order]
            warm = self.warmup_references
            for s in range(self.n_sets):
                lo, hi = int(bounds[s]), int(bounds[s + 1])
                if lo == hi:
                    continue
                ticks = order[lo:hi]
                streams[s] = (
                    ticks.tolist(),
                    cycles_sorted[lo:hi].tolist(),
                    tags_sorted[lo:hi].tolist(),
                    writes_sorted[lo:hi].tolist(),
                    int(np.searchsorted(ticks, warm)),
                )
        object.__setattr__(self, "_set_streams", streams)
        return streams


#: The replay paths :func:`kernel_support` can assign a cache to.
KERNEL_PATHS = ("flattened", "timeline", "event")


@dataclass(frozen=True)
class KernelSupport:
    """Which replay path a cache configuration takes, and why.

    ``path`` is ``"flattened"`` (this module's stationary-placement
    kernel), ``"timeline"`` (the RSP/token/L2 kernels in
    :mod:`repro.core.timeline`), or ``"event"`` (the per-reference event
    controller, with ``reason`` explaining the fallback).  ``supported``
    is True exactly when :func:`simulate_trace` accepts the cache.
    """

    supported: bool
    path: str
    reason: Optional[str] = None


def kernel_support(cache: RetentionAwareCache) -> KernelSupport:
    """Classify ``cache`` onto a batched replay path.

    The kernels are specialized for the paper's own policy and device
    objects; a cache wired with third-party refresh policies, placement
    policies, refresh engines, or L2 simulators keeps the event
    controller (the returned ``reason`` says which object forced it).
    """
    if type(cache.refresh) not in (
        NoRefresh,
        PartialRefresh,
        FullRefresh,
        GlobalRefresh,
    ):
        return KernelSupport(False, "event", (
            f"refresh policy {cache.refresh.name!r} is not one of the "
            "paper's four closed-form policies"
        ))
    if type(cache.replacement) not in (
        LRUPolicy, DSPPolicy, RSPFIFOPolicy, RSPLRUPolicy
    ):
        return KernelSupport(False, "event", (
            f"replacement {cache.replacement.name!r} is not one of the "
            "paper's four placement policies"
        ))
    if (
        cache.refresh_engine is not None
        and type(cache.refresh_engine) is not TokenRefreshEngine
    ):
        return KernelSupport(False, "event", (
            "third-party refresh engines only run on the event controller"
        ))
    if (
        cache.l2_cache is not None
        and type(cache.l2_cache) is not SetAssociativeCache
    ):
        return KernelSupport(False, "event", (
            "third-party L2 simulators only run on the event controller"
        ))
    if (
        cache.refresh_engine is not None
        or cache.l2_cache is not None
        or type(cache.replacement) in (RSPFIFOPolicy, RSPLRUPolicy)
    ):
        return KernelSupport(True, "timeline")
    return KernelSupport(True, "flattened")


def _kernel_supported(cache: RetentionAwareCache) -> bool:
    """Private predicate behind the dispatcher; use :func:`kernel_support`.

    Kept out of the public surface on purpose (linter rule API004): the
    typed :class:`KernelSupport` result is the supported probe.
    """
    return kernel_support(cache).supported


def simulate_trace(
    cache: RetentionAwareCache, artifacts: TraceArtifacts
) -> CacheStats:
    """Run a whole trace through the batched kernels; returns the stats.

    ``cache`` must be a *fresh* (never accessed) simulator instance; it is
    used as the source of configuration, quantised retention, and policy
    objects, and is not mutated.  Dispatches on
    :func:`kernel_support`: stationary LRU/DSP placement runs the
    flattened kernel here; RSP placement, the token engine, and the real
    L2 run the timeline kernels in :mod:`repro.core.timeline`.  The
    returned :class:`CacheStats` is bit-identical to ``cache.run_trace``
    on the same trace for every supported configuration.
    """
    support = kernel_support(cache)
    if not support.supported:
        raise ConfigurationError(
            f"kernel cannot run this cache: {support.reason}"
        )
    if cache._tick:
        raise SimulationError(
            "simulate_trace needs a fresh (never accessed) cache instance"
        )
    if artifacts.n_sets != cache.config.geometry.n_sets:
        raise ConfigurationError(
            f"artifacts were built for {artifacts.n_sets} sets but the "
            f"cache has {cache.config.geometry.n_sets}"
        )
    if support.path == "timeline":
        # Deferred: repro.core.timeline imports this module's artifacts.
        from repro.core.timeline import simulate_trace_timeline

        return simulate_trace_timeline(cache, artifacts)
    return _simulate_flattened(cache, artifacts)


def _simulate_flattened(
    cache: RetentionAwareCache, artifacts: TraceArtifacts
) -> CacheStats:
    """The stationary-placement (LRU/DSP, no devices) replay kernel."""
    config = cache.config
    geometry = config.geometry
    n_sets = geometry.n_sets
    n_ways = geometry.ways

    refresh = cache.refresh
    aware = cache.replacement.uses_retention_info
    dsp = type(cache.replacement) is DSPPolicy
    write_back = config.write_back
    refresh_cpl = geometry.refresh_cycles_per_line

    # Per-line constants.  Retention is already quantised by the
    # controller's constructor; effective lifetimes and partial-refresh
    # caps are pure functions of retention, so compute them once per
    # distinct value (a b-bit counter admits at most 2**b of them).
    retention: List[int] = [int(r) for r in cache.retention_grid.reshape(-1)]
    distinct = set(retention)
    life_by_r = {r: refresh.effective_lifetime(r) for r in distinct}
    lifetime: List[float] = [life_by_r[r] for r in retention]
    if type(refresh) is FullRefresh:
        acc_mode = 1
        maxref_by_r: Dict[int, int] = {}
    elif type(refresh) is PartialRefresh:
        acc_mode = 2
        maxref_by_r = {r: refresh.max_refreshes(r) for r in distinct}
    else:  # NoRefresh / GlobalRefresh: zero per-line refreshes
        acc_mode = 0
        maxref_by_r = {}

    n_lines = n_sets * n_ways
    # Tags live in one row per set with -1 marking invalid ways, so the
    # hot-path lookup is a C-speed ``tag in row`` / ``row.index(tag)``
    # over n_ways elements instead of a Python loop; first-match order
    # equals the controller's way-order scan.
    set_tags: List[List[int]] = [[-1] * n_ways for _ in range(n_sets)]
    valid = [False] * n_lines
    dirty = [False] * n_lines
    stale = [False] * n_lines
    fill_c = [0] * n_lines
    expiry = [0.0] * n_lines
    recency = [0] * n_lines
    INF = math.inf
    # Earliest expiry of any live resident line per set: the kernel only
    # scans a set for expiries when the clock actually reaches it.
    next_expiry = [INF] * n_sets
    live_by_set: List[List[int]] = []
    if dsp:
        for s in range(n_sets):
            base = s * n_ways
            live_by_set.append(sorted(
                (base + w for w in range(n_ways) if retention[base + w] > 0),
                key=lambda j: (-retention[j], j),
            ))

    # Stat counters as locals (assembled into CacheStats at the end).
    loads = stores = hits = misses_cold = misses_expired = 0
    misses_dead = writebacks = expiry_wb = write_throughs = 0
    l2_acc = line_refreshes = refresh_blocked = wb_stall = fills = 0

    # Write-buffer state (same update rules as cache.l2.WriteBuffer).
    wb_queued = 0
    wb_last = 0.0
    wb_cap = config.write_buffer_entries
    wb_drain = config.l2_write_interval_cycles

    def _push(cycle):
        """WriteBuffer.push: drain lazily, stall when full; returns stall."""
        nonlocal wb_queued, wb_last
        if cycle < wb_last:
            cycle = wb_last
        drained = int((cycle - wb_last) // wb_drain)
        if drained:
            wb_queued -= drained
            if wb_queued < 0:
                wb_queued = 0
        wb_last = cycle
        if wb_queued >= wb_cap:
            wb_queued = wb_cap
            return wb_drain
        wb_queued += 1
        return 0

    def _account(age, r):
        """Lazy refresh accounting (RefreshPolicy.refresh_count)."""
        nonlocal line_refreshes, refresh_blocked
        if r <= 0:
            return
        count = age // r
        if acc_mode == 2:
            cap = maxref_by_r[r]
            if count > cap:
                count = cap
        if count:
            line_refreshes += count
            refresh_blocked += count * refresh_cpl

    def _evict(j, cyc):
        """Controller.evict_line on a valid way."""
        nonlocal writebacks, wb_stall
        if stale[j]:
            # Expiry already accounted refreshes and any write-back.
            valid[j] = False
            stale[j] = False
            dirty[j] = False
            return
        age = cyc - fill_c[j]
        if age < 0:
            age = 0
        if acc_mode:
            _account(age, retention[j])
        if dirty[j]:
            writebacks += 1
            wb_stall += _push(cyc)
            dirty[j] = False
        valid[j] = False

    cycles = artifacts.cycles
    sets_in = artifacts.set_indices
    tags_in = artifacts.tags
    writes_in = artifacts.is_write
    n = len(cycles)
    warm = artifacts.warmup_references
    tick = 0

    # Two zip segments split at the warmup boundary: the per-access loop
    # then carries no index arithmetic and no warmup branch.
    if 0 < warm < n:
        segments = ((0, warm), (warm, n))
    else:
        segments = ((0, n),)
    for start, stop in segments:
        if start:
            # Measurement begins: drop the warmup counts (state persists).
            loads = stores = hits = misses_cold = misses_expired = 0
            misses_dead = writebacks = expiry_wb = write_throughs = 0
            l2_acc = line_refreshes = refresh_blocked = wb_stall = fills = 0
        for cyc, s, tag, wr in zip(
            cycles[start:stop],
            sets_in[start:stop],
            tags_in[start:stop],
            writes_in[start:stop],
        ):
            tick += 1
            base = s * n_ways
            row = set_tags[s]

            # Lazy per-set expiry sweep, skipped while nothing can expire.
            recent = None
            if cyc >= next_expiry[s]:
                nxt = INF
                for w in range(n_ways):
                    j = base + w
                    if valid[j] and not stale[j]:
                        e = expiry[j]
                        if cyc >= e:
                            t = row[w]
                            if recent is None:
                                recent = {t}
                            else:
                                recent.add(t)
                            ecyc = int(e)
                            age = ecyc - fill_c[j]
                            if age < 0:
                                age = 0
                            if acc_mode:
                                _account(age, retention[j])
                            if dirty[j]:
                                writebacks += 1
                                expiry_wb += 1
                                wb_stall += _push(ecyc)
                                dirty[j] = False
                            if aware:
                                valid[j] = False
                                row[w] = -1
                            else:
                                stale[j] = True
                        elif e < nxt:
                            nxt = e
                next_expiry[s] = nxt

            # Hits vastly outnumber misses, so a single ``index`` scan
            # with an exception fallback beats ``in`` + ``index``.
            try:
                way = base + row.index(tag)
            except ValueError:
                way = -1

            if wr and not write_back:
                # Write-through, no-write-allocate store path.
                write_throughs += 1
                wb_stall += _push(cyc)
                if way >= 0 and not stale[way]:
                    recency[way] = tick
                    hits += 1
                else:
                    misses_cold += 1
                continue

            if way >= 0:
                if stale[way]:
                    # Expired miss: the line refills in place from the L2.
                    misses_expired += 1
                    l2_acc += 1
                    stale[way] = False
                    dirty[way] = wr
                    fill_c[way] = cyc
                    e = cyc + lifetime[way]
                    expiry[way] = e
                    if e < next_expiry[s]:
                        next_expiry[s] = e
                    recency[way] = tick
                    fills += 1
                    continue
                hits += 1
                recency[way] = tick
                if wr:
                    dirty[way] = True
                continue

            # Miss: classify by whether the tag was resident-but-expired.
            expired = recent is not None and tag in recent
            l2_acc += 1
            if dsp:
                live = live_by_set[s]
                if not live:
                    misses_dead += 1
                    continue
                victim = -1
                for j in live:
                    if not valid[j]:
                        victim = j
                        break
                if victim < 0:
                    best = -1
                    best_r = 0
                    for j in live:
                        r_ = recency[j]
                        if best < 0 or r_ < best_r:
                            best = j
                            best_r = r_
                    victim = best
                    _evict(victim, cyc)
            else:
                victim = -1
                for w in range(n_ways):
                    j = base + w
                    if not valid[j]:
                        victim = j
                        break
                if victim < 0:
                    best = base
                    best_r = recency[base]
                    for w in range(1, n_ways):
                        j = base + w
                        r_ = recency[j]
                        if r_ < best_r:
                            best = j
                            best_r = r_
                    victim = best
                    _evict(victim, cyc)
            if expired:
                misses_expired += 1
            else:
                misses_cold += 1
            row[victim - base] = tag
            valid[victim] = True
            stale[victim] = False
            dirty[victim] = wr
            fill_c[victim] = cyc
            e = cyc + lifetime[victim]
            expiry[victim] = e
            if e < next_expiry[s]:
                next_expiry[s] = e
            recency[victim] = tick
            fills += 1

    if warm and n <= warm:
        loads = stores = hits = misses_cold = misses_expired = 0
        misses_dead = writebacks = expiry_wb = write_throughs = 0
        l2_acc = line_refreshes = refresh_blocked = wb_stall = fills = 0
    else:
        # loads/stores are state-independent: count them from the columnar
        # write flags instead of branching once per access in the loop.
        measured_from = warm if 0 < warm < n else 0
        writes_col = artifacts.columnar()["write"]
        stores = int(np.count_nonzero(writes_col[measured_from:]))
        loads = (n - measured_from) - stores

    # Finalize: refreshes still owed by resident lines, then the global
    # scheme's whole-cache passes.
    end_cycle = artifacts.end_cycle
    for j in range(n_lines):
        if valid[j] and not stale[j]:
            e = expiry[j]
            cutoff = end_cycle if e > end_cycle else e
            age = int(cutoff) - fill_c[j]
            if age < 0:
                age = 0
            if acc_mode:
                _account(age, retention[j])
    if type(refresh) is GlobalRefresh:
        passes = end_cycle // refresh.chip_retention_cycles
        line_refreshes += passes * n_lines
        refresh_blocked += passes * refresh.pass_cycles

    return CacheStats(
        loads=loads,
        stores=stores,
        hits=hits,
        misses_cold=misses_cold,
        misses_expired=misses_expired,
        misses_dead_bypass=misses_dead,
        writebacks=writebacks,
        expiry_writebacks=expiry_wb,
        write_throughs=write_throughs,
        l2_accesses=l2_acc,
        l2_hits=0,
        l2_misses=0,
        line_refreshes=line_refreshes,
        refresh_blocked_cycles=refresh_blocked,
        line_moves=0,
        move_blocked_cycles=0,
        write_buffer_stall_cycles=wb_stall,
        fills=fills,
    )


# ----------------------------------------------------------------------
# batched evaluation API
# ----------------------------------------------------------------------


def _resolve_suite(suite):
    """Turn ``suite`` into an Evaluator (the object hosting the traces).

    Accepts an :class:`~repro.core.evaluation.Evaluator`, anything with a
    ``build()`` method returning one (e.g.
    :class:`~repro.engine.parallel.EvaluatorSpec`), or ``None`` for the
    default 32nm suite.
    """
    from repro.core.evaluation import Evaluator

    if suite is None:
        from repro.technology.node import NODE_32NM

        return Evaluator(NODE_32NM)
    if isinstance(suite, Evaluator):
        return suite
    build = getattr(suite, "build", None)
    if callable(build):
        evaluator = build()
        if isinstance(evaluator, Evaluator):
            return evaluator
    raise ConfigurationError(
        "suite must be an Evaluator, an object whose .build() returns "
        f"one, or None; got {type(suite).__name__}"
    )


def evaluate_many(
    chips: Sequence,
    schemes: Sequence,
    suite=None,
    *,
    benchmarks: Optional[Sequence[str]] = None,
):
    """Evaluate every (chip, scheme) pair against the benchmark suite.

    Parameters
    ----------
    chips:
        :class:`~repro.array.chip.DRAM3T1DChipSample` instances.
    schemes:
        :class:`~repro.core.schemes.RetentionScheme` objects or
        paper-style names.
    suite:
        The benchmark suite: an
        :class:`~repro.core.evaluation.Evaluator` (traces and per-trace
        artifacts are precomputed once on it and shared by every pair),
        an ``EvaluatorSpec``-like object with ``build()``, or ``None``
        for the default suite.
    benchmarks:
        Optional benchmark subset (default: the suite's full set).

    Returns
    -------
    A list with one row per chip; each row holds one
    :class:`~repro.core.evaluation.ChipEvaluation` per scheme, in order,
    or ``None`` where the chip is discarded under that scheme (the
    global scheme's retention rule).
    """
    from repro.core.architecture import Cache3T1DArchitecture
    from repro.core.schemes import RetentionScheme, get_scheme

    evaluator = _resolve_suite(suite)
    scheme_objs = [
        scheme if isinstance(scheme, RetentionScheme) else get_scheme(scheme)
        for scheme in schemes
    ]
    results = []
    for chip in chips:
        with _trace_span(
            "evaluate_schemes", cat="kernel",
            chip_id=getattr(chip, "chip_id", -1), schemes=len(scheme_objs),
        ):
            row = []
            for scheme in scheme_objs:
                try:
                    architecture = Cache3T1DArchitecture(
                        chip, scheme, config=evaluator.config
                    )
                    row.append(
                        evaluator.evaluate(architecture, benchmarks=benchmarks)
                    )
                except ChipDiscardedError:
                    row.append(None)
            results.append(row)
    return results


def evaluate(
    chip,
    scheme,
    suite=None,
    *,
    benchmarks: Optional[Sequence[str]] = None,
):
    """Evaluate one (chip, scheme) pair; the single-pair facade entry.

    Raises :class:`~repro.errors.ChipDiscardedError` when the chip
    cannot operate under the scheme (use :func:`evaluate_many` to get
    ``None`` markers instead of exceptions over a batch).
    """
    result = evaluate_many([chip], [scheme], suite, benchmarks=benchmarks)
    evaluation = result[0][0]
    if evaluation is None:
        from repro.core.schemes import RetentionScheme, get_scheme

        name = (
            scheme.name if isinstance(scheme, RetentionScheme)
            else get_scheme(scheme).name
        )
        raise ChipDiscardedError(
            f"chip {getattr(chip, 'chip_id', '?')} is discarded under "
            f"scheme {name!r}"
        )
    return evaluation


__all__ = [
    "COLUMN_DTYPE",
    "KERNEL_PATHS",
    "KernelSupport",
    "TraceArtifacts",
    "simulate_trace",
    "kernel_support",
    "evaluate_many",
    "evaluate",
]
