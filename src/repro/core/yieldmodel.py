"""Chip binning and yield statistics (paper sections 4.2-4.3).

The paper's discard rule for the global scheme: a chip whose worst line
cannot survive one refresh pass loses data and must be thrown away --
about 80% of chips under severe variation.  Line-level schemes keep every
chip alive (dead lines just cost capacity), which is the yield argument
for the proposal.

:class:`YieldModel` also bins chips the way the figures do: picks the
good / median / bad chips by mean line retention (Figure 8) and computes
discard and dead-line statistics over a Monte-Carlo batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.array.chip import DRAM3T1DChipSample
from repro.cache.counters import LineCounterConfig


@dataclass(frozen=True)
class YieldReport:
    """Discard and dead-line statistics over a chip batch."""

    n_chips: int
    discard_rate_global: float
    median_dead_line_fraction: float
    p90_dead_line_fraction: float
    max_dead_line_fraction: float
    median_chip_retention_ns: float

    def __str__(self) -> str:
        return (
            f"chips={self.n_chips} discard(global)={self.discard_rate_global:.0%} "
            f"dead lines: median={self.median_dead_line_fraction:.1%} "
            f"p90={self.p90_dead_line_fraction:.1%} "
            f"max={self.max_dead_line_fraction:.1%} "
            f"median chip retention={self.median_chip_retention_ns:.0f}ns"
        )


@dataclass
class YieldModel:
    """Yield analysis over a batch of sampled 3T1D chips."""

    chips: Sequence[DRAM3T1DChipSample]
    counter_bits: int = 3

    def __post_init__(self) -> None:
        if not self.chips:
            raise ConfigurationError("YieldModel needs at least one chip")

    def _pass_seconds(self, chip: DRAM3T1DChipSample) -> float:
        return chip.geometry.refresh_cycles_full_pass / chip.node.frequency

    def dead_line_fraction(self, chip: DRAM3T1DChipSample) -> float:
        """Dead lines as the line counters see them (below one step)."""
        frequency = chip.node.frequency
        retention_cycles = chip.retention_by_line * frequency
        counter = LineCounterConfig.for_chip(
            float(np.max(retention_cycles)), bits=self.counter_bits
        )
        return float(np.mean(retention_cycles < counter.step_cycles))

    def is_discarded_global(self, chip: DRAM3T1DChipSample) -> bool:
        """Global-scheme discard: retention below one refresh pass."""
        return chip.chip_retention_time < self._pass_seconds(chip)

    def report(self) -> YieldReport:
        """Aggregate discard and dead-line statistics."""
        dead = np.array([self.dead_line_fraction(c) for c in self.chips])
        discarded = np.array(
            [self.is_discarded_global(c) for c in self.chips]
        )
        retention_ns = np.array(
            [units.to_ns(c.chip_retention_time) for c in self.chips]
        )
        return YieldReport(
            n_chips=len(self.chips),
            discard_rate_global=float(np.mean(discarded)),
            median_dead_line_fraction=float(np.median(dead)),
            p90_dead_line_fraction=float(np.percentile(dead, 90)),
            max_dead_line_fraction=float(np.max(dead)),
            median_chip_retention_ns=float(np.median(retention_ns)),
        )

    def chip_quality(self, chip: DRAM3T1DChipSample) -> float:
        """Architecture-visible retention quality of a chip, seconds.

        Mean line retention with each line capped at the ~6K-cycle reuse
        horizon (Figure 1): retention beyond the horizon adds nothing,
        while dead lines contribute zero.  This is the ordering in which
        the schemes actually experience chips -- a chip with long-lived
        lines but many dead ones ranks below a uniformly mediocre one.
        """
        horizon = 6000.0 / chip.node.frequency
        return float(np.mean(np.minimum(chip.retention_by_line, horizon)))

    def pick_good_median_bad(
        self,
    ) -> Tuple[DRAM3T1DChipSample, DRAM3T1DChipSample, DRAM3T1DChipSample]:
        """The Figure 8 chips: long / median / short retention corners.

        Ranked by :meth:`chip_quality`.  The good and bad picks use the
        95th and 5th percentile rather than the absolute extremes so a
        single outlier draw cannot dominate the three-chip studies (the
        paper's bad chip has ~23% dead lines, i.e. a bad-tail chip, not a
        pathological one).
        """
        ranked: List[DRAM3T1DChipSample] = sorted(
            self.chips, key=self.chip_quality
        )
        last = len(ranked) - 1
        good = ranked[min(last, round(0.95 * last))]
        bad = ranked[max(0, round(0.05 * last))]
        return good, ranked[len(ranked) // 2], bad
