"""The paper's contribution: process-variation-tolerant 3T1D cache
architectures.

This package assembles the substrates into the systems the paper
evaluates:

* :mod:`repro.core.schemes` -- the retention-scheme design space (global
  refresh and the eight line-level refresh x placement combinations);
* :mod:`repro.core.architecture` -- a sampled chip + a scheme = a cache
  architecture instance that can build simulators;
* :mod:`repro.core.evaluation` -- runs benchmarks against an architecture
  and reports the paper's metrics (normalized performance, BIPS, dynamic
  and leakage power);
* :mod:`repro.core.batcheval` -- the batched scheme-evaluation kernel
  behind ``evaluate``/``evaluate_many`` (bit-identical fast path for the
  non-RSP schemes, with per-suite trace artifacts);
* :mod:`repro.core.yieldmodel` -- chip binning and discard statistics.
"""

from repro.core.schemes import (
    RetentionScheme,
    SCHEME_GLOBAL,
    SCHEME_NO_REFRESH_LRU,
    SCHEME_PARTIAL_LRU,
    SCHEME_FULL_LRU,
    SCHEME_NO_REFRESH_DSP,
    SCHEME_PARTIAL_DSP,
    SCHEME_FULL_DSP,
    SCHEME_RSP_FIFO,
    SCHEME_RSP_LRU,
    LINE_LEVEL_SCHEMES,
    HEADLINE_SCHEMES,
    get_scheme,
)
from repro.core.architecture import (
    Cache3T1DArchitecture,
    Cache6TArchitecture,
    IdealCacheArchitecture,
)
from repro.core.evaluation import (
    BenchmarkResult,
    ChipEvaluation,
    Evaluator,
)
from repro.core.batcheval import (
    KernelSupport,
    TraceArtifacts,
    evaluate,
    evaluate_many,
    kernel_support,
    simulate_trace,
)
from repro.core.yieldmodel import YieldModel, YieldReport
from repro.core.wordlevel import WordLevelComparison, compare_refresh_granularity
from repro.core import redundancy
from repro.core.analytic import AnalyticResult, evaluate_analytically
from repro.core.variable_latency import (
    VariableLatencyResult,
    evaluate_variable_latency,
)

__all__ = [
    "RetentionScheme",
    "SCHEME_GLOBAL",
    "SCHEME_NO_REFRESH_LRU",
    "SCHEME_PARTIAL_LRU",
    "SCHEME_FULL_LRU",
    "SCHEME_NO_REFRESH_DSP",
    "SCHEME_PARTIAL_DSP",
    "SCHEME_FULL_DSP",
    "SCHEME_RSP_FIFO",
    "SCHEME_RSP_LRU",
    "LINE_LEVEL_SCHEMES",
    "HEADLINE_SCHEMES",
    "get_scheme",
    "Cache3T1DArchitecture",
    "Cache6TArchitecture",
    "IdealCacheArchitecture",
    "BenchmarkResult",
    "ChipEvaluation",
    "Evaluator",
    "TraceArtifacts",
    "evaluate",
    "evaluate_many",
    "KernelSupport",
    "kernel_support",
    "simulate_trace",
    "YieldModel",
    "YieldReport",
    "WordLevelComparison",
    "compare_refresh_granularity",
    "redundancy",
    "AnalyticResult",
    "evaluate_analytically",
    "VariableLatencyResult",
    "evaluate_variable_latency",
]
