"""Redundancy and ECC analysis for 6T caches (paper section 2.1).

The paper dismisses the classic fixes for 6T instability in two
sentences: "in a data cache, line-level redundancy is straightforward to
implement, but is ineffective because 256-bit lines would experience a
64% probability of line failure (i.e., 1-0.996^256), which is not
acceptable."  This module makes that argument quantitative and extensible:

* line failure probability under a bit-flip rate (the 64% anchor),
* yield of a cache protected by R spare lines,
* yield under per-word SECDED ECC (corrects 1 flip per 72-bit word),
* the flip-rate each mechanism could actually absorb.

Conclusions match the paper: spares are hopeless at a 0.4% flip rate
(virtually every line has a flipped bit), and even word-level SECDED
leaves a large fraction of words with double flips under severe
variation -- which is why the paper moves to 3T1D cells instead of
patching 6T.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

SECDED_WORD_DATA_BITS: int = 64
SECDED_WORD_TOTAL_BITS: int = 72  # 64 data + 8 check bits


def line_failure_probability(bit_flip_rate: float, line_bits: int = 256) -> float:
    """Probability that at least one bit of a line is unstable.

    The paper's 1 - 0.996^256 = 64% example.
    """
    _check_rate(bit_flip_rate)
    if line_bits < 1:
        raise ConfigurationError("line_bits must be >= 1")
    return 1.0 - (1.0 - bit_flip_rate) ** line_bits


def spare_line_yield(
    bit_flip_rate: float,
    n_lines: int = 1024,
    spare_lines: int = 16,
    line_bits: int = 256,
) -> float:
    """Probability a cache is usable with ``spare_lines`` spares.

    The cache works if the number of failing lines does not exceed the
    spares (binomial tail).
    """
    _check_rate(bit_flip_rate)
    if n_lines < 1 or spare_lines < 0:
        raise ConfigurationError("n_lines >= 1 and spare_lines >= 0 required")
    p_line = line_failure_probability(bit_flip_rate, line_bits)
    return _binomial_cdf(spare_lines, n_lines, p_line)


def secded_word_failure_probability(bit_flip_rate: float) -> float:
    """Probability a SECDED-protected 72-bit word is uncorrectable.

    SECDED corrects a single flipped bit; two or more flips in the word
    defeat it.
    """
    _check_rate(bit_flip_rate)
    n = SECDED_WORD_TOTAL_BITS
    p = bit_flip_rate
    none = (1.0 - p) ** n
    one = n * p * (1.0 - p) ** (n - 1)
    return 1.0 - none - one


def secded_line_failure_probability(
    bit_flip_rate: float, line_bits: int = 512
) -> float:
    """Probability an ECC-protected line still fails (any word defeated)."""
    _check_rate(bit_flip_rate)
    words = max(1, line_bits // SECDED_WORD_DATA_BITS)
    p_word = secded_word_failure_probability(bit_flip_rate)
    return 1.0 - (1.0 - p_word) ** words


def secded_cache_yield(
    bit_flip_rate: float,
    n_lines: int = 1024,
    spare_lines: int = 16,
    line_bits: int = 512,
) -> float:
    """Yield of a cache combining per-word SECDED with spare lines."""
    p_line = secded_line_failure_probability(bit_flip_rate, line_bits)
    return _binomial_cdf(spare_lines, n_lines, p_line)


def max_tolerable_flip_rate(
    target_yield: float = 0.9,
    n_lines: int = 1024,
    spare_lines: int = 16,
    line_bits: int = 512,
    use_ecc: bool = True,
) -> float:
    """Largest bit-flip rate at which the protection scheme still yields.

    Bisected to ~1% precision; useful for asking "how much variation
    could patched 6T actually take?"
    """
    if not 0.0 < target_yield < 1.0:
        raise ConfigurationError("target_yield must be in (0, 1)")

    def yield_at(rate: float) -> float:
        if use_ecc:
            return secded_cache_yield(rate, n_lines, spare_lines, line_bits)
        return spare_line_yield(rate, n_lines, spare_lines, line_bits)

    low, high = 0.0, 0.5
    for _ in range(60):
        mid = 0.5 * (low + high)
        if yield_at(mid) >= target_yield:
            low = mid
        else:
            high = mid
    return low


@dataclass(frozen=True)
class ProtectionReport:
    """Section 2.1 protection summary at one bit-flip rate."""

    bit_flip_rate: float
    line_failure: float
    spare_yield: float
    ecc_line_failure: float
    ecc_yield: float

    def __str__(self) -> str:
        return (
            f"flip rate {self.bit_flip_rate:.2%}: "
            f"line failure {self.line_failure:.0%}, "
            f"16-spare yield {self.spare_yield:.1%}, "
            f"SECDED line failure {self.ecc_line_failure:.1%}, "
            f"SECDED+spares yield {self.ecc_yield:.1%}"
        )


def protection_report(
    bit_flip_rate: float, spare_lines: int = 16
) -> ProtectionReport:
    """Evaluate every protection option at ``bit_flip_rate``."""
    return ProtectionReport(
        bit_flip_rate=bit_flip_rate,
        line_failure=line_failure_probability(bit_flip_rate, 256),
        spare_yield=spare_line_yield(
            bit_flip_rate, spare_lines=spare_lines, line_bits=256
        ),
        ecc_line_failure=secded_line_failure_probability(bit_flip_rate),
        ecc_yield=secded_cache_yield(bit_flip_rate, spare_lines=spare_lines),
    )


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"bit_flip_rate must be in [0, 1], got {rate}")


def _binomial_cdf(k: int, n: int, p: float) -> float:
    """P(X <= k) for X ~ Binomial(n, p), numerically careful for small p."""
    if p <= 0.0:
        return 1.0
    if p >= 1.0:
        return 0.0 if k < n else 1.0
    log_q = math.log1p(-p)
    log_p = math.log(p)
    total = 0.0
    log_coeff = 0.0  # log C(n, 0)
    for i in range(0, k + 1):
        if i > 0:
            log_coeff += math.log(n - i + 1) - math.log(i)
        total += math.exp(log_coeff + i * log_p + (n - i) * log_q)
    return min(1.0, total)
