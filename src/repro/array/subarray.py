"""Sub-array timing: access-path assembly and refresh timing.

:class:`SubArrayTiming` turns per-cell drive-current factors into array
access times for one sub-array (used by the 6T chip sampler to find the
frequency-limiting cell).  :class:`RefreshTiming` converts the geometry's
refresh cycle counts into wall-clock numbers at a node's frequency --
reproducing the paper's "2K cycles, 476.3ns at 4.3GHz" bookkeeping from
section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.technology import calibration
from repro.technology.node import TechnologyNode
from repro.technology.wire import WireModel
from repro.array import cactimodel
from repro.array.geometry import CacheGeometry

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class SubArrayTiming:
    """Access-path timing of one 256x256 sub-array at a node.

    The calibrated nominal access time is decomposed into a bitline share
    (per-cell drive), a wordline/decoder share (sub-array periphery), and a
    fixed sense-amp share (see :mod:`repro.technology.calibration`).  The
    wire model provides a sanity check that the physical bitline RC at the
    node is comfortably inside the calibrated bitline budget.
    """

    node: TechnologyNode
    geometry: CacheGeometry = CacheGeometry()

    @property
    def geometry_time_factor(self) -> float:
        """Access-time scaling of this organisation vs. the paper's.

        The CACTI-calibrated banking model (DESIGN 3h): bitline RC with
        rows, wordline RC with columns, H-tree routing with die extent,
        port loading.  Exactly 1.0 for the paper organisation.
        """
        return cactimodel.access_time_factor(self.geometry)

    @property
    def nominal_access_time(self) -> float:
        """Ideal array access time at this node, seconds.

        The node calibration anchors the paper organisation; other
        geometries scale by :attr:`geometry_time_factor`.
        """
        base = calibration.nominal_access_time(self.node)
        factor = self.geometry_time_factor
        if factor == 1.0:
            return base
        return base * factor

    @property
    def bitline_length(self) -> float:
        """Physical bitline length in meters (rows * cell pitch)."""
        cell_pitch = np.sqrt(self.node.cell_area)
        return self.geometry.subarray_rows * float(cell_pitch)

    @property
    def bitline_wire_delay(self) -> float:
        """Distributed RC delay of the bare bitline wire, seconds."""
        wire = WireModel(self.node)
        return wire.elmore_delay(self.bitline_length)

    @property
    def wordline_length(self) -> float:
        """Physical wordline length in meters (cols * cell pitch)."""
        cell_pitch = np.sqrt(self.node.cell_area)
        return self.geometry.subarray_cols * float(cell_pitch)

    def access_times(
        self,
        cell_current_factors: ArrayLike,
        periphery_factor: ArrayLike = 1.0,
    ) -> ArrayLike:
        """Access time per cell, seconds.

        ``cell_current_factors`` is the read-path drive current of each cell
        relative to nominal; ``periphery_factor`` the sub-array's correlated
        wordline/decoder slowdown (1.0 nominal).  Cells with zero drive get
        ``inf``.
        """
        factors = np.asarray(cell_current_factors, dtype=float)
        if np.any(factors < 0):
            raise ConfigurationError("drive-current factors must be >= 0")
        with np.errstate(divide="ignore"):
            bitline = np.where(
                factors > 0,
                calibration.BITLINE_FRACTION / np.maximum(factors, 1e-12),
                np.inf,
            )
        wordline = calibration.WORDLINE_FRACTION * np.asarray(periphery_factor)
        return self.nominal_access_time * (
            bitline + wordline + calibration.PERIPHERY_FRACTION
        )

    def worst_access_time(
        self,
        cell_current_factors: ArrayLike,
        periphery_factor: ArrayLike = 1.0,
    ) -> float:
        """Slowest cell access in this sub-array, seconds."""
        return float(
            np.max(self.access_times(cell_current_factors, periphery_factor))
        )


@dataclass(frozen=True)
class RefreshTiming:
    """Wall-clock refresh timing at a node (paper section 4.1)."""

    node: TechnologyNode
    geometry: CacheGeometry = CacheGeometry()

    @property
    def cycles_per_line(self) -> int:
        """Clock cycles to refresh one line (8 for the paper's design)."""
        return self.geometry.refresh_cycles_per_line

    @property
    def cycles_full_pass(self) -> int:
        """Clock cycles for a full refresh pass (2K for the paper's design)."""
        return self.geometry.refresh_cycles_full_pass

    @property
    def line_refresh_seconds(self) -> float:
        """Wall-clock time to refresh one line."""
        return self.cycles_per_line / self.node.frequency

    @property
    def full_pass_seconds(self) -> float:
        """Wall-clock time for a full pass (476.3ns at 32nm/4.3GHz)."""
        return self.cycles_full_pass / self.node.frequency

    def bandwidth_fraction(self, retention_time: float) -> float:
        """Fraction of cache bandwidth spent on global refresh.

        The paper's example: 476.3ns per pass / 6000ns retention = ~8%.
        Returns 1.0 (saturated) when retention is no longer than a pass --
        the cache can do nothing but refresh.
        """
        if retention_time <= 0:
            return 1.0
        return min(1.0, self.full_pass_seconds / retention_time)
