"""Built-in self test for retention measurement (paper section 4.3.1).

After fabrication the retention time of each cache line must be measured
and loaded into the line counters.  The paper's procedure: "a built-in
self test structure can load a pattern of '1s' into the cache and keep
reading out the contents of each line until the line fails to give the
correct value.  The amount of time required to fail reading the '1s'
pattern is recorded as the line retention time."  Testing happens at a
guard-banded worst-case temperature.

:class:`RetentionBIST` models that procedure against the physical chip
sample: it probes each line at a configurable time step (the tester
cannot observe continuous time), applies the temperature guard-band, and
returns the counter contents the architecture will run with.  The
measured values are *conservative by construction*: a BIST measurement
never exceeds the line's true retention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.array.chip import DRAM3T1DChipSample
from repro.cache.counters import LineCounterConfig, quantize_retention

TEMPERATURE_GUARD_BAND: float = 0.9
"""Retention derating applied for worst-case operating temperature.

The paper assumes worst-case temperatures when setting retention times;
circuit simulations run at 80C while the thermal spec corner sits higher,
costing roughly 10% of retention (subthreshold leakage grows with T)."""


@dataclass(frozen=True)
class BISTResult:
    """Outcome of one chip's retention self-test."""

    measured_retention_cycles: np.ndarray
    """Per-line retention as measured (guard-banded, probe-quantised)."""
    counter_values: np.ndarray
    """Per-line retention as stored in the line counters (cycles)."""
    counter: LineCounterConfig
    test_cycles: int
    """Total tester time spent, in chip cycles."""

    @property
    def dead_lines(self) -> np.ndarray:
        """Lines whose counters read zero."""
        return self.counter_values == 0

    @property
    def dead_line_fraction(self) -> float:
        """Fraction of lines the architecture will treat as dead."""
        return float(np.mean(self.dead_lines))


@dataclass
class RetentionBIST:
    """Retention self-test engine for 3T1D chips.

    ``probe_step_cycles`` is the interval at which the tester re-reads the
    "1s" pattern; a line's measured retention is the last probe at which
    it still read correctly (floored, hence conservative).  ``None``
    defaults to the line-counter step that will be used anyway -- probing
    finer than the counter resolution buys nothing.
    """

    counter_bits: int = 3
    probe_step_cycles: Optional[int] = None
    guard_band: float = TEMPERATURE_GUARD_BAND

    def __post_init__(self) -> None:
        if not 0.0 < self.guard_band <= 1.0:
            raise ConfigurationError(
                f"guard_band must be in (0, 1], got {self.guard_band!r}"
            )
        if self.probe_step_cycles is not None and self.probe_step_cycles < 1:
            raise ConfigurationError("probe_step_cycles must be >= 1")

    def test_chip(self, chip: DRAM3T1DChipSample) -> BISTResult:
        """Run the retention self-test on ``chip``.

        Returns the counter contents plus tester-time bookkeeping.
        """
        true_cycles = chip.retention_by_line * chip.node.frequency
        derated = true_cycles * self.guard_band

        counter = LineCounterConfig.for_chip(
            float(np.max(derated)) if derated.size else 1.0,
            bits=self.counter_bits,
        )
        step = self.probe_step_cycles or counter.step_cycles
        # The tester observes failure between probe k and k+1; the last
        # good probe (floor) is recorded -- conservative.
        measured = (np.floor(derated / step) * step).astype(np.int64)
        counters = quantize_retention(measured, counter)

        # Tester time: each line is probed until it fails, i.e. roughly
        # its retention; probing runs per sub-array pair in parallel, and
        # line ``i`` lives in pair ``i % n_pairs``.
        n_pairs = chip.geometry.n_pairs
        line_time = measured + step
        pair_time = [
            int(np.sum(line_time[pair::n_pairs])) for pair in range(n_pairs)
        ]
        test_cycles = max(pair_time) if pair_time else 0
        return BISTResult(
            measured_retention_cycles=measured,
            counter_values=np.asarray(counters, dtype=np.int64),
            counter=counter,
            test_cycles=test_cycles,
        )
