"""Physical organisation of the paper's 64KB L1 data cache.

Section 3.2: "The data cache is a 64KB, 512-bit block size, 4-way set
associative, write-back memory, with 2 read ports and 1 write port.  This
cache is divided into 8 sub-arrays of 256x256b with a cache access latency
of three cycles where one cycle is reserved to access the array.  Every
pair of arrays share 64 sense amplifiers and combine to form the 512-bit
blocks."

The geometry object also defines the physical line placement used by the
variation model: line ``line_id`` lives in sub-array pair ``line_id %
n_pairs`` at row ``line_id // n_pairs``, so for the 4-way configuration
each way of a set sits in a different sub-array pair -- which is why ways
of one set have (partially) independent retention times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

PHYSICAL_ADDRESS_BITS: int = 44
"""Physical address width used to size tags (matches the paper's era)."""

STATUS_BITS_PER_LINE: int = 2
"""Valid + dirty bits stored alongside each tag."""


def derived_tag_bits(size_bytes: int, line_bits: int, ways: int) -> int:
    """Tag/status/LRU bits per line for a ``PHYSICAL_ADDRESS_BITS`` machine.

    Address tag (physical address minus set-index and line-offset bits)
    plus the valid/dirty status bits plus ``ceil(log2(ways))`` LRU bits.
    Reproduces the paper's 34 bits at the 64KB / 4-way / 512-bit point.
    """
    n_lines = (size_bytes * 8) // line_bits
    n_sets = max(1, n_lines // ways)
    set_index_bits = (n_sets - 1).bit_length()
    line_offset_bits = ((line_bits // 8) - 1).bit_length()
    lru_bits = (ways - 1).bit_length()
    address_tag = PHYSICAL_ADDRESS_BITS - set_index_bits - line_offset_bits
    if address_tag <= 0:
        raise ConfigurationError(
            f"cache of {size_bytes} bytes leaves no address tag bits in a "
            f"{PHYSICAL_ADDRESS_BITS}-bit physical address"
        )
    return address_tag + STATUS_BITS_PER_LINE + lru_bits


@dataclass(frozen=True)
class CacheGeometry:
    """Size and organisation of the cache array."""

    size_bytes: int = 64 * 1024
    line_bits: int = 512
    ways: int = 4
    n_subarrays: int = 8
    subarray_rows: int = 256
    subarray_cols: int = 256
    sense_amps_per_pair: int = 64
    tag_bits_per_line: int = 34
    read_ports: int = 2
    write_ports: int = 1
    access_latency_cycles: int = 3

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bits <= 0:
            raise ConfigurationError("cache size and line size must be positive")
        if self.line_bits % 8 != 0:
            raise ConfigurationError("line_bits must be a whole number of bytes")
        if self.ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {self.ways}")
        if self.n_subarrays % 2 != 0:
            raise ConfigurationError(
                "sub-arrays pair up to form blocks; need an even count"
            )
        if self.n_lines % self.ways != 0:
            raise ConfigurationError(
                f"{self.n_lines} lines do not divide into {self.ways} ways"
            )
        if self.n_lines % self.n_pairs != 0:
            raise ConfigurationError(
                f"{self.n_lines} lines do not map onto {self.n_pairs} sub-array pairs"
            )
        if self.line_bits % self.sense_amps_per_pair != 0:
            raise ConfigurationError(
                "line_bits must be a multiple of the shared sense amplifiers"
            )
        array_bits = self.n_subarrays * self.subarray_rows * self.subarray_cols
        if array_bits != self.total_data_bits:
            raise ConfigurationError(
                f"sub-array geometry stores {array_bits} bits but the cache "
                f"holds {self.total_data_bits}"
            )

    # --- derived construction (the sweep-facing API) ---------------------

    @classmethod
    def from_capacity(
        cls,
        size_bytes: int,
        ways: int,
        line_bits: int = 512,
        banks: Optional[int] = None,
        read_ports: int = 2,
        write_ports: int = 1,
        n_subarrays: Optional[int] = None,
        subarray_rows: Optional[int] = None,
        subarray_cols: Optional[int] = None,
        sense_amps_per_pair: Optional[int] = None,
        tag_bits_per_line: Optional[int] = None,
        access_latency_cycles: Optional[int] = None,
    ) -> "CacheGeometry":
        """Build a consistent geometry from the top-level knobs.

        Every dependent field is derived so the result always satisfies
        the ``__post_init__`` invariants:

        * ``banks`` is the number of sub-array *pairs* (the refresh and
          placement domains); each pair contributes two sub-arrays, each
          storing half of every line it holds (so ``subarray_cols =
          line_bits / 2`` and ``subarray_rows = n_lines / banks``).
          The default banking keeps sub-arrays at the paper's 256 rows.
        * ``sense_amps_per_pair`` defaults to ``line_bits / 8``: the
          paper's 8-cycle per-line refresh at any line width.
        * ``tag_bits_per_line`` defaults to :func:`derived_tag_bits`.
        * ``access_latency_cycles`` defaults to the calibrated
          geometry-timing model (two pipeline cycles plus however many
          array cycles the organisation needs relative to the paper's
          one); the 64KB paper point derives the paper's 3 cycles.

        Explicit keyword values for the derived fields are pinned
        verbatim (and still validated), which is how
        :meth:`with_ways` keeps the Figure 11 sweep's physical layout
        frozen across associativities.
        """
        if size_bytes <= 0 or line_bits <= 0:
            raise ConfigurationError(
                "cache size and line size must be positive"
            )
        total_bits = size_bytes * 8
        if total_bits % line_bits != 0:
            raise ConfigurationError(
                f"{size_bytes} bytes is not a whole number of "
                f"{line_bits}-bit lines"
            )
        n_lines = total_bits // line_bits
        if banks is None:
            if n_subarrays is not None:
                banks = n_subarrays // 2
            else:
                banks = max(1, n_lines // 256)
        if banks < 1:
            raise ConfigurationError(f"banks must be >= 1, got {banks}")
        if n_subarrays is None:
            n_subarrays = 2 * banks
        elif n_subarrays != 2 * banks:
            raise ConfigurationError(
                f"{n_subarrays} sub-arrays is inconsistent with {banks} "
                "banks (each bank is one sub-array pair)"
            )
        if n_lines % banks != 0:
            raise ConfigurationError(
                f"{n_lines} lines do not divide into {banks} banks"
            )
        if line_bits % 2 != 0:
            raise ConfigurationError(
                "line_bits must split evenly across a sub-array pair"
            )
        if subarray_rows is None:
            subarray_rows = n_lines // banks
        if subarray_cols is None:
            subarray_cols = line_bits // 2
        if sense_amps_per_pair is None:
            sense_amps_per_pair = max(1, line_bits // 8)
        if tag_bits_per_line is None:
            tag_bits_per_line = derived_tag_bits(size_bytes, line_bits, ways)
        if access_latency_cycles is None:
            provisional = cls(
                size_bytes=size_bytes,
                line_bits=line_bits,
                ways=ways,
                n_subarrays=n_subarrays,
                subarray_rows=subarray_rows,
                subarray_cols=subarray_cols,
                sense_amps_per_pair=sense_amps_per_pair,
                tag_bits_per_line=tag_bits_per_line,
                read_ports=read_ports,
                write_ports=write_ports,
            )
            # Lazy import: the calibrated timing model consumes geometry
            # objects, so the dependency must point this way at runtime.
            from repro.array.cactimodel import derived_access_latency_cycles

            return provisional.replace(
                access_latency_cycles=derived_access_latency_cycles(
                    provisional
                )
            )
        return cls(
            size_bytes=size_bytes,
            line_bits=line_bits,
            ways=ways,
            n_subarrays=n_subarrays,
            subarray_rows=subarray_rows,
            subarray_cols=subarray_cols,
            sense_amps_per_pair=sense_amps_per_pair,
            tag_bits_per_line=tag_bits_per_line,
            read_ports=read_ports,
            write_ports=write_ports,
            access_latency_cycles=access_latency_cycles,
        )

    _REPLACE_TOP_LEVEL = (
        "size_bytes",
        "ways",
        "line_bits",
        "banks",
        "read_ports",
        "write_ports",
    )
    _REPLACE_DERIVED = (
        "n_subarrays",
        "subarray_rows",
        "subarray_cols",
        "sense_amps_per_pair",
        "tag_bits_per_line",
        "access_latency_cycles",
    )

    def replace(self, **knobs: object) -> "CacheGeometry":
        """A copy with ``knobs`` applied and dependent fields re-derived.

        Top-level knobs (``size_bytes``/``ways``/``line_bits``/``banks``/
        ports) default to this geometry's values; dependent fields are
        re-derived through :meth:`from_capacity` unless explicitly pinned
        in ``knobs``.  Banking is preserved (not re-defaulted) so
        ``replace(ways=...)`` never silently re-floorplans the array.
        """
        base = {
            "size_bytes": self.size_bytes,
            "ways": self.ways,
            "line_bits": self.line_bits,
            "banks": self.n_pairs,
            "read_ports": self.read_ports,
            "write_ports": self.write_ports,
        }
        derived = {}
        for key, value in knobs.items():
            if key in self._REPLACE_TOP_LEVEL:
                base[key] = value
            elif key in self._REPLACE_DERIVED:
                derived[key] = value
            else:
                raise ConfigurationError(
                    f"unknown geometry knob {key!r}; expected one of "
                    f"{self._REPLACE_TOP_LEVEL + self._REPLACE_DERIVED}"
                )
        if "banks" in knobs and "n_subarrays" in derived:
            if derived["n_subarrays"] != 2 * int(base["banks"]):  # type: ignore[arg-type]
                raise ConfigurationError(
                    "banks and n_subarrays knobs disagree"
                )
        return CacheGeometry.from_capacity(**base, **derived)  # type: ignore[arg-type]

    # --- derived counts --------------------------------------------------

    @property
    def total_data_bits(self) -> int:
        """Data bits in the cache."""
        return self.size_bytes * 8

    @property
    def n_lines(self) -> int:
        """Number of cache lines."""
        return self.total_data_bits // self.line_bits

    @property
    def n_sets(self) -> int:
        """Number of cache sets."""
        return self.n_lines // self.ways

    @property
    def n_pairs(self) -> int:
        """Number of sub-array pairs (each pair forms full 512-bit blocks)."""
        return self.n_subarrays // 2

    @property
    def rows_per_pair(self) -> int:
        """Cache lines stored in each sub-array pair."""
        return self.n_lines // self.n_pairs

    @property
    def cells_per_line(self) -> int:
        """Memory cells backing one line, including its tag/status bits."""
        return self.line_bits + self.tag_bits_per_line

    @property
    def total_cells(self) -> int:
        """All memory cells in the cache (data + tags)."""
        return self.n_lines * self.cells_per_line

    @property
    def banks(self) -> int:
        """Independently-addressed banks (alias of :attr:`n_pairs`).

        Each sub-array pair is one bank: it refreshes autonomously and
        holds a contiguous interleaving class of lines.
        """
        return self.n_pairs

    @property
    def total_ports(self) -> int:
        """All ports on the array (read + write)."""
        return self.read_ports + self.write_ports

    @property
    def die_grid(self) -> Tuple[int, int]:
        """Sub-array placement grid ``(rows, cols)`` on the die.

        The most-square factorisation of ``n_subarrays`` with
        ``rows <= cols`` -- the paper's 8 sub-arrays land on the 2 x 4
        grid the variation model has always assumed.
        """
        n = self.n_subarrays
        rows = 1
        for divisor in range(1, int(n**0.5) + 1):
            if n % divisor == 0:
                rows = divisor
        return rows, n // rows

    @property
    def ndbl(self) -> int:
        """CACTI-style bitline divisions (die-grid rows)."""
        return self.die_grid[0]

    @property
    def ndwl(self) -> int:
        """CACTI-style wordline divisions (die-grid columns)."""
        return self.die_grid[1]

    @property
    def signature(self) -> str:
        """A compact, unique label for cache keys and sweep tables.

        Encodes every physical field, so two geometries share a
        signature iff they are equal.
        """
        return (
            f"{self.size_bytes}B-{self.ways}w-{self.line_bits}l"
            f"-{self.n_subarrays}x{self.subarray_rows}x{self.subarray_cols}"
            f"-s{self.sense_amps_per_pair}-t{self.tag_bits_per_line}"
            f"-{self.read_ports}r{self.write_ports}w"
            f"-c{self.access_latency_cycles}"
        )

    @property
    def line_offset_bits(self) -> int:
        """Address bits covered by the line offset."""
        return (self.line_bits // 8).bit_length() - 1

    @property
    def set_index_bits(self) -> int:
        """Address bits used as the set index."""
        return self.n_sets.bit_length() - 1

    # --- refresh timing counts (section 4.1) ------------------------------

    @property
    def refresh_cycles_per_line(self) -> int:
        """Cycles to refresh one line: limited by the shared sense amps.

        For the paper's design: 512 bits / 64 sense amps = 8 cycles.
        """
        return self.line_bits // self.sense_amps_per_pair

    @property
    def refresh_cycles_full_pass(self) -> int:
        """Cycles for a full refresh pass over the cache.

        Sub-array pairs refresh in parallel (the refresh is encapsulated in
        each sub-array), so a pass takes rows_per_pair * cycles_per_line --
        2K cycles for the paper's 256-line sub-arrays.
        """
        return self.rows_per_pair * self.refresh_cycles_per_line

    # --- physical placement ----------------------------------------------

    def line_id(self, set_index: int, way: int) -> int:
        """Flat line id of (set, way)."""
        if not 0 <= set_index < self.n_sets:
            raise ConfigurationError(
                f"set_index {set_index} out of range [0, {self.n_sets})"
            )
        if not 0 <= way < self.ways:
            raise ConfigurationError(f"way {way} out of range [0, {self.ways})")
        return set_index * self.ways + way

    def pair_of_line(self, line_id: int) -> int:
        """Sub-array pair holding ``line_id``."""
        if not 0 <= line_id < self.n_lines:
            raise ConfigurationError(
                f"line_id {line_id} out of range [0, {self.n_lines})"
            )
        return line_id % self.n_pairs

    def subarrays_of_pair(self, pair: int) -> Tuple[int, int]:
        """The two sub-array indices forming ``pair``."""
        if not 0 <= pair < self.n_pairs:
            raise ConfigurationError(
                f"pair {pair} out of range [0, {self.n_pairs})"
            )
        return 2 * pair, 2 * pair + 1

    def with_ways(self, ways: int) -> "CacheGeometry":
        """Same cache re-organised with a different associativity.

        Used by the Figure 11 associativity sweep; total capacity, line
        size, the physical sub-array layout, the tag width, and the
        access latency all stay pinned (only the set/way indexing
        changes), so chips sampled at one associativity re-interpret
        bit-identically at another.
        """
        return self.replace(
            ways=ways,
            n_subarrays=self.n_subarrays,
            subarray_rows=self.subarray_rows,
            subarray_cols=self.subarray_cols,
            sense_amps_per_pair=self.sense_amps_per_pair,
            tag_bits_per_line=self.tag_bits_per_line,
            access_latency_cycles=self.access_latency_cycles,
        )
