"""Physical organisation of the paper's 64KB L1 data cache.

Section 3.2: "The data cache is a 64KB, 512-bit block size, 4-way set
associative, write-back memory, with 2 read ports and 1 write port.  This
cache is divided into 8 sub-arrays of 256x256b with a cache access latency
of three cycles where one cycle is reserved to access the array.  Every
pair of arrays share 64 sense amplifiers and combine to form the 512-bit
blocks."

The geometry object also defines the physical line placement used by the
variation model: line ``line_id`` lives in sub-array pair ``line_id %
n_pairs`` at row ``line_id // n_pairs``, so for the 4-way configuration
each way of a set sits in a different sub-array pair -- which is why ways
of one set have (partially) independent retention times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheGeometry:
    """Size and organisation of the cache array."""

    size_bytes: int = 64 * 1024
    line_bits: int = 512
    ways: int = 4
    n_subarrays: int = 8
    subarray_rows: int = 256
    subarray_cols: int = 256
    sense_amps_per_pair: int = 64
    tag_bits_per_line: int = 34
    read_ports: int = 2
    write_ports: int = 1
    access_latency_cycles: int = 3

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bits <= 0:
            raise ConfigurationError("cache size and line size must be positive")
        if self.line_bits % 8 != 0:
            raise ConfigurationError("line_bits must be a whole number of bytes")
        if self.ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {self.ways}")
        if self.n_subarrays % 2 != 0:
            raise ConfigurationError(
                "sub-arrays pair up to form blocks; need an even count"
            )
        if self.n_lines % self.ways != 0:
            raise ConfigurationError(
                f"{self.n_lines} lines do not divide into {self.ways} ways"
            )
        if self.n_lines % self.n_pairs != 0:
            raise ConfigurationError(
                f"{self.n_lines} lines do not map onto {self.n_pairs} sub-array pairs"
            )
        if self.line_bits % self.sense_amps_per_pair != 0:
            raise ConfigurationError(
                "line_bits must be a multiple of the shared sense amplifiers"
            )
        array_bits = self.n_subarrays * self.subarray_rows * self.subarray_cols
        if array_bits != self.total_data_bits:
            raise ConfigurationError(
                f"sub-array geometry stores {array_bits} bits but the cache "
                f"holds {self.total_data_bits}"
            )

    # --- derived counts --------------------------------------------------

    @property
    def total_data_bits(self) -> int:
        """Data bits in the cache."""
        return self.size_bytes * 8

    @property
    def n_lines(self) -> int:
        """Number of cache lines."""
        return self.total_data_bits // self.line_bits

    @property
    def n_sets(self) -> int:
        """Number of cache sets."""
        return self.n_lines // self.ways

    @property
    def n_pairs(self) -> int:
        """Number of sub-array pairs (each pair forms full 512-bit blocks)."""
        return self.n_subarrays // 2

    @property
    def rows_per_pair(self) -> int:
        """Cache lines stored in each sub-array pair."""
        return self.n_lines // self.n_pairs

    @property
    def cells_per_line(self) -> int:
        """Memory cells backing one line, including its tag/status bits."""
        return self.line_bits + self.tag_bits_per_line

    @property
    def total_cells(self) -> int:
        """All memory cells in the cache (data + tags)."""
        return self.n_lines * self.cells_per_line

    @property
    def line_offset_bits(self) -> int:
        """Address bits covered by the line offset."""
        return (self.line_bits // 8).bit_length() - 1

    @property
    def set_index_bits(self) -> int:
        """Address bits used as the set index."""
        return self.n_sets.bit_length() - 1

    # --- refresh timing counts (section 4.1) ------------------------------

    @property
    def refresh_cycles_per_line(self) -> int:
        """Cycles to refresh one line: limited by the shared sense amps.

        For the paper's design: 512 bits / 64 sense amps = 8 cycles.
        """
        return self.line_bits // self.sense_amps_per_pair

    @property
    def refresh_cycles_full_pass(self) -> int:
        """Cycles for a full refresh pass over the cache.

        Sub-array pairs refresh in parallel (the refresh is encapsulated in
        each sub-array), so a pass takes rows_per_pair * cycles_per_line --
        2K cycles for the paper's 256-line sub-arrays.
        """
        return self.rows_per_pair * self.refresh_cycles_per_line

    # --- physical placement ----------------------------------------------

    def line_id(self, set_index: int, way: int) -> int:
        """Flat line id of (set, way)."""
        if not 0 <= set_index < self.n_sets:
            raise ConfigurationError(
                f"set_index {set_index} out of range [0, {self.n_sets})"
            )
        if not 0 <= way < self.ways:
            raise ConfigurationError(f"way {way} out of range [0, {self.ways})")
        return set_index * self.ways + way

    def pair_of_line(self, line_id: int) -> int:
        """Sub-array pair holding ``line_id``."""
        if not 0 <= line_id < self.n_lines:
            raise ConfigurationError(
                f"line_id {line_id} out of range [0, {self.n_lines})"
            )
        return line_id % self.n_pairs

    def subarrays_of_pair(self, pair: int) -> Tuple[int, int]:
        """The two sub-array indices forming ``pair``."""
        if not 0 <= pair < self.n_pairs:
            raise ConfigurationError(
                f"pair {pair} out of range [0, {self.n_pairs})"
            )
        return 2 * pair, 2 * pair + 1

    def with_ways(self, ways: int) -> "CacheGeometry":
        """Same cache re-organised with a different associativity.

        Used by the Figure 11 associativity sweep; total capacity, line
        size, and the physical sub-array layout stay fixed.
        """
        return CacheGeometry(
            size_bytes=self.size_bytes,
            line_bits=self.line_bits,
            ways=ways,
            n_subarrays=self.n_subarrays,
            subarray_rows=self.subarray_rows,
            subarray_cols=self.subarray_cols,
            sense_amps_per_pair=self.sense_amps_per_pair,
            tag_bits_per_line=self.tag_bits_per_line,
            read_ports=self.read_ports,
            write_ports=self.write_ports,
            access_latency_cycles=self.access_latency_cycles,
        )
