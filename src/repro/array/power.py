"""Cache power aggregation: dynamic, refresh, and leakage components.

Dynamic energy anchors come from Table 3 (see
:mod:`repro.technology.calibration`); this module turns them into the
power numbers the experiments report:

* ``dynamic_power`` -- activity-driven dynamic power from port accesses,
* ``global_refresh_power`` -- the section 4.1 global scheme's overhead
  (a fixed control/clocking part plus a per-pass energy part that grows as
  retention time shrinks, saturating when the cache refreshes
  back-to-back),
* ``l2_access_energy`` -- energy of an L2 access caused by an extra L1
  miss (what makes the no-refresh scheme's power overhead balloon on bad
  chips in Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.technology import calibration
from repro.technology.node import TechnologyNode
from repro.array import cactimodel
from repro.array.geometry import CacheGeometry
from repro.array.subarray import RefreshTiming

L2_ACCESS_ENERGY_FACTOR: float = 8.0
"""Energy of one L2 access in units of one L1 full-port access.

The 2MB L2 moves far more bits per access over longer wires; 8x is in line
with CACTI-class ratios for a 32x capacity step."""

LINE_COUNTER_POWER_OVERHEAD: float = 0.04
"""Dynamic power overhead of the per-line retention counters and control
logic for line-level schemes, as a fraction of ideal mean dynamic power
(the paper estimates ~10% area overhead for the 3-bit counters; their
switching activity is a small fraction of the array's)."""


@dataclass(frozen=True)
class CachePowerModel:
    """Power bookkeeping for one cache design at one node."""

    node: TechnologyNode
    cell_kind: str = "3T1D"
    """``"6T"``/``"3T1D"`` use the Table 3 calibration anchors directly;
    any other value must be a registered technology backend name whose
    :class:`~repro.technology.backends.CellEnergy` supplies the access and
    refresh energies."""
    geometry: CacheGeometry = CacheGeometry()

    def __post_init__(self) -> None:
        if self.cell_kind in ("6T", "3T1D"):
            return
        from repro.technology.backends import get_backend

        get_backend(self.cell_kind)  # raises ConfigurationError if unknown

    def _backend_energy(self):
        from repro.technology.backends import get_backend

        return get_backend(self.cell_kind).cell_energy(self.node)

    # --- energies ---------------------------------------------------------

    @property
    def geometry_energy_factor(self) -> float:
        """Per-access energy scaling of this organisation vs. the paper's.

        From the CACTI-calibrated banking model (DESIGN 3h); exactly 1.0
        for the paper organisation, so the calibrated Table 3 anchors
        pass through untouched on every existing driver.
        """
        return cactimodel.read_energy_factor(self.geometry)

    def _scale_by_geometry(self, energy: float) -> float:
        factor = self.geometry_energy_factor
        if factor == 1.0:
            return energy
        return energy * factor

    @property
    def port_access_energy(self) -> float:
        """Energy of one full-width port access (joules).

        For backend cell kinds this is the *read* energy; writes add
        :attr:`store_energy_premium` per store on top.  Non-paper
        organisations scale by :attr:`geometry_energy_factor`.
        """
        if self.cell_kind in ("6T", "3T1D"):
            base = calibration.port_access_energy(self.node, self.cell_kind)
        else:
            base = self._backend_energy().read_energy
        return self._scale_by_geometry(base)

    @property
    def store_energy_premium(self) -> float:
        """Extra energy of a write over a read, joules.

        Zero for the calibrated 6T/3T1D kinds (Table 3 anchors already
        average reads and writes); positive for asymmetric technologies
        such as STT-RAM.
        """
        if self.cell_kind in ("6T", "3T1D"):
            return 0.0
        return self._backend_energy().store_energy_premium

    @property
    def refresh_line_energy(self) -> float:
        """Energy to refresh one line (pipelined read + write back), joules.

        Scales with :attr:`geometry_energy_factor` like any other
        full-line array operation.
        """
        if self.cell_kind in ("6T", "3T1D"):
            base = calibration.refresh_line_energy(self.node)
        else:
            base = self._backend_energy().refresh_line_energy
        return self._scale_by_geometry(base)

    @property
    def l2_access_energy(self) -> float:
        """Energy charged to one L2 access caused by an L1 miss, joules."""
        return L2_ACCESS_ENERGY_FACTOR * calibration.port_access_energy(
            self.node, "6T"
        )

    # --- reference powers ---------------------------------------------------

    @property
    def full_dynamic_power(self) -> float:
        """Dynamic power with every port busy every cycle, watts."""
        total_ports = self.geometry.read_ports + self.geometry.write_ports
        return total_ports * self.port_access_energy * self.node.frequency

    @property
    def ideal_mean_dynamic_power(self) -> float:
        """Table 3 mean dynamic power of the ideal 6T design, watts.

        The normalisation reference for every dynamic-power figure.
        """
        return calibration.MEAN_DYNAMIC_POWER_6T[self.node.name]

    # --- activity-driven powers ----------------------------------------------

    def dynamic_power(self, port_accesses_per_cycle: float) -> float:
        """Dynamic power for a measured port-access rate, watts.

        ``port_accesses_per_cycle`` is the average number of ports active
        per cycle (0 .. read_ports + write_ports).
        """
        total_ports = self.geometry.read_ports + self.geometry.write_ports
        if not 0.0 <= port_accesses_per_cycle <= total_ports + 1e-9:
            raise ConfigurationError(
                f"port_accesses_per_cycle must be within [0, {total_ports}], "
                f"got {port_accesses_per_cycle!r}"
            )
        return (
            port_accesses_per_cycle * self.port_access_energy * self.node.frequency
        )

    def global_refresh_power(self, retention_time: float) -> float:
        """Dynamic power of the global refresh scheme, watts.

        A fixed control overhead plus the per-pass array energy: every
        ``retention_time`` seconds all lines are re-read and re-written.
        When retention is shorter than a full pass the refresh runs
        back-to-back and the power saturates.
        """
        if retention_time < 0:
            raise ConfigurationError("retention_time must be >= 0")
        timing = RefreshTiming(self.node, self.geometry)
        period = max(retention_time, timing.full_pass_seconds)
        pass_energy = self.geometry.n_lines * self.refresh_line_energy
        control = calibration.REFRESH_CONTROL_OVERHEAD * self.ideal_mean_dynamic_power
        return control + pass_energy / period

    def line_counter_power(self) -> float:
        """Dynamic power of line-level retention counters/control, watts."""
        return LINE_COUNTER_POWER_OVERHEAD * self.ideal_mean_dynamic_power

    def event_dynamic_power(
        self,
        cycles: float,
        port_accesses: float,
        line_refreshes: float = 0.0,
        extra_l2_accesses: float = 0.0,
        include_line_counters: bool = False,
        store_accesses: float = 0.0,
    ) -> float:
        """Dynamic power from event counts of a simulation window, watts.

        ``cycles`` is the window length in clock cycles; the event counts
        are totals over the window.  ``store_accesses`` (a subset of
        ``port_accesses``) only matters for technologies with asymmetric
        write energy: each store is charged the write-over-read premium.
        """
        if cycles <= 0:
            raise ConfigurationError(f"cycles must be positive, got {cycles}")
        window = cycles / self.node.frequency
        energy = (
            port_accesses * self.port_access_energy
            + line_refreshes * self.refresh_line_energy
            + extra_l2_accesses * self.l2_access_energy
        )
        premium = self.store_energy_premium
        if premium > 0.0 and store_accesses > 0.0:
            energy += store_accesses * premium
        power = energy / window
        if include_line_counters:
            power += self.line_counter_power()
        return power
