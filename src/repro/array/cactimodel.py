"""CACTI-calibrated geometry/banking scaling model (DESIGN 3h).

The paper evaluates one fixed organisation (64KB, 8 sub-arrays of
256x256, 2R/1W ports); this module makes timing, read energy, and
leakage *functions of an arbitrary* :class:`~repro.array.geometry.
CacheGeometry` so the geometry-sweep workload can explore array
organisation.  The functional form follows the classical CACTI
decomposition:

* a fixed sense/drive term,
* a bitline RC term growing with ``subarray_rows`` and a wordline RC
  term growing with ``subarray_cols`` (wordline-per-cell delay is the
  calibrated 32/45 of the bitline-per-cell delay, matching the
  wordline/bitline split of ``repro.technology.calibration``),
* an H-tree routing term growing with the die extent
  ``sqrt(n_subarrays * rows * cols)`` (Ndwl/Ndbl-style banking shortens
  bitlines but lengthens the routing tree),
* a port-loading power law (each extra port widens the cell in both
  pitches and loads every wire).

The constants are calibrated against the three CACTI 7.0 anchor runs
recorded in SNIPPETS.md (22nm, 64-byte blocks):

======== ====== ====== =========== =========== ============
capacity assoc  ports  access (ns) read (nJ)   leakage (mW)
======== ====== ====== =========== =========== ============
16KB     full   1 RW   0.399362    0.0174358   11.0568
64KB     4-way  1 RW   0.464286    0.0452934   22.5863
256KB    8-way  8 RW   3.50264     3.18447     220.157
======== ====== ====== =========== =========== ============

The calibration solves the three-term linear system per metric exactly,
so the model reproduces all nine anchor values to rounding error (the
acceptance bar is 15%).

Everything downstream consumes *relative* factors -- metric(geometry)
divided by metric(paper geometry) -- so the absolute 22nm reference
never leaks into the paper-calibrated 65/45/32nm models.  The factors
are short-circuited to exactly ``1.0`` whenever a geometry shares the
paper point's physical organisation (whatever its associativity), which
is what keeps every existing driver byte-identical: multiplying by the
float ``1.0`` is an exact no-op, and the code skips even that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro import units
from repro.array.geometry import CacheGeometry
from repro.errors import ConfigurationError

# --- calibrated constants (22nm CACTI reference) ---------------------------

WORDLINE_BITLINE_RATIO: float = 32.0 / 45.0
"""Wordline-per-cell delay relative to bitline-per-cell delay.

Tied to the calibrated wordline/bitline access-time split (0.32/0.45)
of ``repro.technology.calibration`` so the two models cannot drift.
"""

ACCESS_TIME_BASE: float = units.ns(0.28404429437616463)
"""Geometry-independent sense/decode/drive time, seconds."""

ACCESS_TIME_PER_BITLINE_CELL: float = units.ps(0.2768208927090566)
"""Bitline RC delay per row (seconds per cell height)."""

ACCESS_TIME_PER_HTREE_CELL: float = units.ps(0.08145794363063819)
"""H-tree routing delay per unit of die extent (seconds per cell pitch)."""

ACCESS_TIME_PORT_EXPONENT: float = 1.25
"""Port-loading power law on the wire terms of the access time."""

READ_ENERGY_BASE: float = units.pj(1.0653278256404935)
"""Geometry-independent decode/sense energy per read, joules."""

READ_ENERGY_PER_BITLINE_CELL: float = units.fj(0.03294836408212157)
"""Bitline charge per (row, activated column) cell pair, joules."""

READ_ENERGY_PER_HTREE_BIT: float = units.fj(0.003971883171892421)
"""Routing energy per output bit per die-extent^1.5 unit, joules.

The superlinear (3/2-power) extent term models the repeated H-tree
drivers whose sizing grows with the routed distance.
"""

READ_ENERGY_PORT_EXPONENT: float = 1.59
"""Port-loading power law on the wire terms of the read energy."""

LEAKAGE_BASE: float = units.mw(5.485565077340567)
"""Bank-independent control/clock leakage, watts."""

LEAKAGE_PER_CELL: float = units.mw(1.2692155425582982e-05)
"""Array cell leakage, watts per (data or tag) cell."""

LEAKAGE_PER_PERIPHERY_CELL: float = units.mw(0.002442504896385324)
"""Per-bank periphery leakage, watts per (row driver + sense column)."""

LEAKAGE_PORT_EXPONENT: float = 0.55
"""Port-loading power law on the leaking array/periphery transistors."""

PIPELINE_OVERHEAD_CYCLES: int = 2
"""Cycles of the paper's 3-cycle access spent outside the array."""


@dataclass(frozen=True)
class ArrayMetrics:
    """Absolute reference metrics of one organisation at the 22nm anchor.

    Attributes are SI: seconds, joules, watts.
    """

    access_time: float
    read_energy: float
    leakage_power: float


def _physical_key(geometry: CacheGeometry) -> Tuple[int, ...]:
    """The fields that enter the scaling model (associativity excluded).

    Two geometries with equal keys are physically the same array, so
    their relative factors are exactly 1.0 -- the Figure 11 sweep's
    ``with_ways`` variants all share the paper's key.
    """
    return (
        geometry.size_bytes,
        geometry.line_bits,
        geometry.n_subarrays,
        geometry.subarray_rows,
        geometry.subarray_cols,
        geometry.sense_amps_per_pair,
        geometry.tag_bits_per_line,
        geometry.read_ports,
        geometry.write_ports,
    )


def _die_extent(geometry: CacheGeometry) -> float:
    """Die edge length in cell pitches: sqrt of the total array area."""
    return math.sqrt(
        geometry.n_subarrays
        * geometry.subarray_rows
        * geometry.subarray_cols
    )


def reference_metrics(geometry: CacheGeometry) -> ArrayMetrics:
    """Absolute access time / read energy / leakage at the 22nm anchor.

    This is the calibrated CACTI-style model; downstream code should
    normally consume the relative ``*_factor`` functions instead.
    """
    ports = max(1, geometry.total_ports)
    rows = geometry.subarray_rows
    cols = geometry.subarray_cols
    extent = _die_extent(geometry)

    time_ports = ports**ACCESS_TIME_PORT_EXPONENT
    access_time = ACCESS_TIME_BASE + time_ports * (
        ACCESS_TIME_PER_BITLINE_CELL
        * (rows + WORDLINE_BITLINE_RATIO * cols)
        + ACCESS_TIME_PER_HTREE_CELL * extent
    )

    energy_ports = ports**READ_ENERGY_PORT_EXPONENT
    read_energy = READ_ENERGY_BASE + energy_ports * (
        READ_ENERGY_PER_BITLINE_CELL * rows * geometry.cells_per_line
        + READ_ENERGY_PER_HTREE_BIT * extent**1.5 * geometry.line_bits
    )

    leakage_ports = ports**LEAKAGE_PORT_EXPONENT
    leakage_power = LEAKAGE_BASE + leakage_ports * (
        LEAKAGE_PER_CELL * geometry.total_cells
        + LEAKAGE_PER_PERIPHERY_CELL
        * geometry.n_subarrays
        * (rows + cols)
    )

    return ArrayMetrics(
        access_time=access_time,
        read_energy=read_energy,
        leakage_power=leakage_power,
    )


_PAPER_GEOMETRY = CacheGeometry()
_PAPER_KEY = _physical_key(_PAPER_GEOMETRY)
_PAPER_METRICS = reference_metrics(_PAPER_GEOMETRY)


def is_paper_organisation(geometry: CacheGeometry) -> bool:
    """True when ``geometry`` is physically the paper's array.

    Associativity is an indexing choice, not a physical one, so every
    ``with_ways`` variant of the paper point qualifies.
    """
    return _physical_key(geometry) == _PAPER_KEY


def access_time_factor(geometry: CacheGeometry) -> float:
    """Access time of ``geometry`` relative to the paper organisation."""
    if is_paper_organisation(geometry):
        return 1.0
    return reference_metrics(geometry).access_time / _PAPER_METRICS.access_time


def read_energy_factor(geometry: CacheGeometry) -> float:
    """Per-read energy of ``geometry`` relative to the paper organisation."""
    if is_paper_organisation(geometry):
        return 1.0
    return reference_metrics(geometry).read_energy / _PAPER_METRICS.read_energy


def leakage_factor(geometry: CacheGeometry) -> float:
    """Total leakage of ``geometry`` relative to the paper organisation.

    Includes the capacity term; use :func:`bank_leakage_overhead_factor`
    when scaling an already cell-summed leakage figure.
    """
    if is_paper_organisation(geometry):
        return 1.0
    return (
        reference_metrics(geometry).leakage_power
        / _PAPER_METRICS.leakage_power
    )


def _periphery_burden(geometry: CacheGeometry) -> float:
    """Total leakage over cell-only leakage for one organisation."""
    ports = max(1, geometry.total_ports)
    cell_only = (
        ports**LEAKAGE_PORT_EXPONENT
        * LEAKAGE_PER_CELL
        * geometry.total_cells
    )
    if cell_only <= 0.0:
        raise ConfigurationError(
            "leakage burden undefined for a cache with no cells"
        )
    return reference_metrics(geometry).leakage_power / cell_only


def bank_leakage_overhead_factor(geometry: CacheGeometry) -> float:
    """Per-bank periphery leakage burden relative to the paper layout.

    The chip models already sum per-cell leakage over the sampled
    retention map, which scales correctly with capacity; this factor
    layers the banking-dependent periphery overhead (sense columns and
    row drivers per sub-array, fixed control) on top.  Exactly ``1.0``
    for the paper organisation.
    """
    if is_paper_organisation(geometry):
        return 1.0
    return _periphery_burden(geometry) / _periphery_burden(_PAPER_GEOMETRY)


def scale_chip_leakage(leakage_power: float, geometry: CacheGeometry) -> float:
    """Apply the banking periphery overhead to a cell-summed leakage.

    Bit-exact no-op (the multiply is skipped entirely) for any geometry
    sharing the paper organisation.
    """
    factor = bank_leakage_overhead_factor(geometry)
    if factor == 1.0:
        return leakage_power
    return leakage_power * factor


def derived_access_latency_cycles(geometry: CacheGeometry) -> int:
    """Pipeline cycles a cache access needs at this organisation.

    The paper reserves one of its three cycles for the array; an
    organisation that is ``f`` times slower needs ``ceil(f)`` array
    cycles on top of the same two pipeline-overhead cycles.  Derives
    exactly 3 at the paper point.
    """
    factor = access_time_factor(geometry)
    array_cycles = max(1, math.ceil(factor - 1e-9))
    return PIPELINE_OVERHEAD_CYCLES + array_cycles


# --- the calibration anchors (exported for tests and docs) -----------------

@dataclass(frozen=True)
class CactiAnchor:
    """One CACTI 7.0 run from SNIPPETS.md, with its geometry mapping."""

    label: str
    geometry: CacheGeometry
    access_time: float
    read_energy: float
    leakage_power: float


def _anchor_geometry(
    size_bytes: int, ways: int, banks: int, ports: int
) -> CacheGeometry:
    # CACTI's RW ports map to read ports here; the anchor runs predate
    # the paper's split 2R/1W porting.  Latency is pinned (the anchors
    # calibrate timing, they do not consume the derived latency).
    return CacheGeometry.from_capacity(
        size_bytes,
        ways,
        banks=banks,
        read_ports=ports,
        write_ports=0,
        access_latency_cycles=3,
    )


CACTI_ANCHORS: Tuple[CactiAnchor, ...] = (
    CactiAnchor(
        label="16KB fully-associative, 1 RW port (Ndwl 1 x Ndbl 4)",
        geometry=_anchor_geometry(16 * 1024, ways=256, banks=2, ports=1),
        access_time=units.ns(0.399362),
        read_energy=units.pj(17.4358),
        leakage_power=units.mw(11.0568),
    ),
    CactiAnchor(
        label="64KB 4-way, 1 RW port (Ndwl 4 x Ndbl 2)",
        geometry=_anchor_geometry(64 * 1024, ways=4, banks=4, ports=1),
        access_time=units.ns(0.464286),
        read_energy=units.pj(45.2934),
        leakage_power=units.mw(22.5863),
    ),
    CactiAnchor(
        label="256KB 8-way, 8 RW ports (Ndwl 16 x Ndbl 2)",
        geometry=_anchor_geometry(256 * 1024, ways=8, banks=16, ports=8),
        access_time=units.ns(3.50264),
        read_energy=units.pj(3184.47),
        leakage_power=units.mw(220.157),
    ),
)


__all__ = [
    "ArrayMetrics",
    "CACTI_ANCHORS",
    "CactiAnchor",
    "access_time_factor",
    "bank_leakage_overhead_factor",
    "derived_access_latency_cycles",
    "is_paper_organisation",
    "leakage_factor",
    "read_energy_factor",
    "reference_metrics",
    "scale_chip_leakage",
]
