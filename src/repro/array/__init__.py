"""Cache array substrate: geometry, timing, power, and chip sampling.

This layer aggregates cell-level models over the paper's 64KB L1 data
cache organisation (8 sub-arrays of 256x256 bits; each pair of sub-arrays
shares 64 sense amplifiers and forms the 512-bit blocks) and produces the
chip-level Monte-Carlo samples every architecture experiment consumes.
"""

from repro.array.geometry import CacheGeometry, derived_tag_bits
from repro.array.subarray import SubArrayTiming, RefreshTiming
from repro.array.power import CachePowerModel
from repro.array.bist import BISTResult, RetentionBIST
from repro.array.cactimodel import (
    CACTI_ANCHORS,
    ArrayMetrics,
    access_time_factor,
    bank_leakage_overhead_factor,
    derived_access_latency_cycles,
    leakage_factor,
    read_energy_factor,
    reference_metrics,
)
from repro.array.chip import (
    ChipBuildTask,
    ChipSampler,
    DRAM3T1DChipSample,
    SRAMChipSample,
)

__all__ = [
    "ArrayMetrics",
    "CACTI_ANCHORS",
    "ChipBuildTask",
    "CacheGeometry",
    "SubArrayTiming",
    "RefreshTiming",
    "CachePowerModel",
    "RetentionBIST",
    "BISTResult",
    "ChipSampler",
    "DRAM3T1DChipSample",
    "SRAMChipSample",
    "access_time_factor",
    "bank_leakage_overhead_factor",
    "derived_access_latency_cycles",
    "derived_tag_bits",
    "leakage_factor",
    "read_energy_factor",
    "reference_metrics",
]
