"""Chip-level Monte-Carlo sampling (the paper's "100 sample chips").

Each sampled chip freezes one draw of die-to-die, correlated within-die,
and random per-device variation, and reduces it to the quantities the
architecture study consumes:

* **6T chips** (:class:`SRAMChipSample`): the slowest cell sets the chip
  frequency (Figure 6a); threshold mismatch sets the count of unstable
  bits (section 2.1); per-cell leakage sums into chip leakage (Figure 7a).
* **3T1D chips** (:class:`DRAM3T1DChipSample`): every line gets the
  retention time of its worst cell (Figure 8); the worst line sets the
  global-scheme retention (Figure 6b); leakage sums as for 6T but with the
  3T1D cell's compressed sensitivity (Figure 7b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.technology.node import TechnologyNode
from repro.variation.montecarlo import (
    ChipVariation,
    VariationSampler,
    validate_chip_count,
)
from repro.variation.parameters import VariationParams
from repro.cells.dram3t1d import DRAM3T1DCell
from repro.cells.retention import RetentionModel
from repro.cells.sram6t import SRAM6TCell
from repro.array import cactimodel
from repro.array.geometry import CacheGeometry
from repro.technology.backends import (
    DEFAULT_TECHNOLOGY,
    TechnologyBackend,
    get_backend,
)


@dataclass(frozen=True)
class SRAMChipSample:
    """One fabricated 6T-cache chip under process variation."""

    node: TechnologyNode
    cell_label: str
    chip_id: int
    worst_access_time: float
    nominal_access_time: float
    leakage_power: float
    golden_leakage_power: float
    flip_count: int
    total_cells: int
    access_time_by_line: Optional[np.ndarray] = None
    """Optional per-line worst access time in seconds (flat line-id
    order), for variable-latency 6T studies; its maximum equals
    ``worst_access_time``."""

    def slow_line_fraction(self, budget_seconds: float) -> float:
        """Fraction of lines slower than an access-time budget."""
        if self.access_time_by_line is None:
            raise ConfigurationError(
                "chip sample carries no per-line access times; resample "
                "with the current ChipSampler"
            )
        if budget_seconds <= 0:
            raise ConfigurationError("budget_seconds must be positive")
        return float(np.mean(self.access_time_by_line > budget_seconds))

    @property
    def normalized_frequency(self) -> float:
        """Chip frequency relative to the ideal design (Figure 6a x-axis).

        The slowest cell's access path sets the cycle; 1.0 is the
        no-variation design, values above 1.0 are chips that bin faster.
        """
        return self.nominal_access_time / self.worst_access_time

    @property
    def frequency(self) -> float:
        """Absolute chip frequency in Hz."""
        return self.normalized_frequency * self.node.frequency

    @property
    def normalized_leakage(self) -> float:
        """Leakage relative to the golden (no-variation) design (Figure 7)."""
        return self.leakage_power / self.golden_leakage_power

    @property
    def flip_rate(self) -> float:
        """Fraction of bits that are read-unstable."""
        return self.flip_count / self.total_cells

    @property
    def has_unstable_cells(self) -> bool:
        """True if any bit in the cache can flip on a read."""
        return self.flip_count > 0


@dataclass(frozen=True)
class DRAM3T1DChipSample:
    """One fabricated 3T1D-cache chip under process variation.

    ``retention_by_line`` holds each line's retention time in seconds,
    indexed by flat line id (``set * ways + way``); a zero means the line
    is dead (cannot be read at 6T speed even right after a write).
    """

    node: TechnologyNode
    geometry: CacheGeometry
    chip_id: int
    retention_by_line: np.ndarray
    leakage_power: float
    golden_leakage_power: float
    retention_by_word: Optional[np.ndarray] = None
    """Optional per-word retention, shape ``(n_lines, words_per_line)``;
    word 0 also covers the line's tag cells.  Populated by the sampler to
    support word-granularity refresh studies; the per-line values are the
    row-wise minima of this array."""
    technology: str = DEFAULT_TECHNOLOGY
    """Registered technology backend this chip was sampled with.  The
    class name predates the backend protocol; a sample is the generic
    per-line retention map any registered backend produces."""
    latency_factor_by_line: Optional[np.ndarray] = None
    """Optional per-line access-time multiplier (design-induced latency
    variation, e.g. the vardram backend); ``None`` for uniform-latency
    technologies."""

    def __post_init__(self) -> None:
        if self.retention_by_line.shape != (self.geometry.n_lines,):
            raise ConfigurationError(
                f"retention_by_line must have shape ({self.geometry.n_lines},), "
                f"got {self.retention_by_line.shape}"
            )
        if self.retention_by_word is not None:
            if (
                self.retention_by_word.ndim != 2
                or self.retention_by_word.shape[0] != self.geometry.n_lines
            ):
                raise ConfigurationError(
                    "retention_by_word must have one row per line"
                )
        if self.latency_factor_by_line is not None:
            if self.latency_factor_by_line.shape != (self.geometry.n_lines,):
                raise ConfigurationError(
                    "latency_factor_by_line must have one entry per line"
                )

    @property
    def mean_latency_factor(self) -> float:
        """Mean design-induced latency multiplier (1.0 when uniform)."""
        if self.latency_factor_by_line is None:
            return 1.0
        return float(np.mean(self.latency_factor_by_line))

    @property
    def retention_grid(self) -> np.ndarray:
        """Retention times as a ``(n_sets, ways)`` grid, seconds."""
        return self.retention_by_line.reshape(
            self.geometry.n_sets, self.geometry.ways
        )

    @property
    def chip_retention_time(self) -> float:
        """Global-scheme retention: the worst line limits the whole cache."""
        return float(np.min(self.retention_by_line))

    @property
    def mean_line_retention(self) -> float:
        """Mean per-line retention time, seconds."""
        return float(np.mean(self.retention_by_line))

    def dead_lines(self, threshold: float = 0.0) -> np.ndarray:
        """Boolean mask of lines whose retention is at or below ``threshold``.

        The paper also counts a line as dead when its retention is below
        the minimal line-counter step; pass that step as ``threshold``.
        """
        if threshold < 0:
            raise ConfigurationError("threshold must be >= 0")
        return self.retention_by_line <= threshold

    def dead_line_fraction(self, threshold: float = 0.0) -> float:
        """Fraction of cache lines that are dead."""
        return float(np.mean(self.dead_lines(threshold)))

    def is_discarded_under_global_scheme(self, threshold: float = 0.0) -> bool:
        """True if the global refresh scheme cannot operate this chip.

        One dead line forces the global retention to zero, so the chip
        must be discarded (paper section 4.3).
        """
        return bool(np.any(self.dead_lines(threshold)))

    @property
    def normalized_leakage(self) -> float:
        """Leakage relative to the *golden 6T* design (Figure 7b x-axis)."""
        return self.leakage_power / self.golden_leakage_power

    def with_geometry(self, geometry: CacheGeometry) -> "DRAM3T1DChipSample":
        """Re-interpret the same physical chip with a different associativity.

        The physical lines and their retention times are unchanged; only
        the (set, way) interpretation moves.  Used by the Figure 11 sweep.
        """
        if geometry.n_lines != self.geometry.n_lines:
            raise ConfigurationError(
                "can only re-interpret a chip with the same total line count"
            )
        return DRAM3T1DChipSample(
            node=self.node,
            geometry=geometry,
            chip_id=self.chip_id,
            retention_by_line=self.retention_by_line,
            leakage_power=self.leakage_power,
            golden_leakage_power=self.golden_leakage_power,
            retention_by_word=self.retention_by_word,
            technology=self.technology,
            latency_factor_by_line=self.latency_factor_by_line,
        )


@dataclass(frozen=True)
class ChipBuildTask:
    """A reserved chip draw that can be realized in any process.

    The ``(chip_id, chip_seed)`` pair was reserved serially from a
    :class:`~repro.variation.montecarlo.VariationSampler` root generator
    (see :meth:`ChipSampler.reserve_build_tasks`), so realizing tasks in
    parallel -- in any order, on any process -- reproduces the exact chip
    sequence a serial ``sample_*_chips`` loop would have drawn.
    """

    node: TechnologyNode
    params: VariationParams
    geometry: CacheGeometry
    kind: str
    """``"3t1d"`` or ``"sram"``."""
    chip_id: int
    chip_seed: int
    size_factor: float = 1.0
    """6T cell size factor; ignored for 3T1D builds."""
    technology: str = DEFAULT_TECHNOLOGY
    """Backend name used for ``kind == "3t1d"`` (retention-map) builds."""

    def build(self) -> Union["DRAM3T1DChipSample", "SRAMChipSample"]:
        """Realize the reserved chip sample."""
        sampler = ChipSampler(
            self.node,
            self.params,
            seed=0,
            geometry=self.geometry,
            technology=self.technology,
        )
        chip = sampler._sampler.chip_from_seed(self.chip_id, self.chip_seed)
        if self.kind == "3t1d":
            return sampler._build_3t1d_sample(chip)
        if self.kind == "sram":
            return sampler._build_sram_sample(chip, self.size_factor)
        raise ConfigurationError(
            f"unknown chip kind {self.kind!r}; expected '3t1d' or 'sram'"
        )


@dataclass
class ChipSampler:
    """Draws fabricated-chip samples for one node and variation scenario.

    A single sampler instance produces a deterministic chip sequence for a
    given ``seed``; 6T and 3T1D samples drawn at the same position in the
    sequence share the same correlated-variation draw, mimicking "the same
    wafer corner built both ways".
    """

    node: TechnologyNode
    params: VariationParams
    seed: int = 0
    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    technology: str = DEFAULT_TECHNOLOGY
    """Registered backend that maps variation draws to retention maps for
    the ``sample_3t1d_*`` entry points (6T sampling is backend-independent
    -- it is the normalisation reference)."""
    _sampler: VariationSampler = field(init=False, repr=False)
    _backend: TechnologyBackend = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._backend = get_backend(self.technology)
        # The correlation grid follows the geometry's die placement: the
        # paper's 8 sub-arrays land on the historical 2 x 4 layout, and
        # swept geometries get their own most-square grid with enough
        # quad-tree levels to resolve it.
        die_rows, die_cols = self.geometry.die_grid
        levels = max(3, (max(die_rows, die_cols) - 1).bit_length())
        self._sampler = VariationSampler(
            node=self.node,
            params=self.params,
            seed=self.seed,
            subarray_rows=die_rows,
            subarray_cols=die_cols,
            quadtree_levels=levels,
        )

    # ------------------------------------------------------------------
    # batch reservation (parallel sampling)
    # ------------------------------------------------------------------

    def reserve_build_tasks(
        self, count: int, kind: str = "3t1d", size_factor: float = 1.0
    ) -> List[ChipBuildTask]:
        """Reserve ``count`` upcoming draws as self-contained build tasks.

        Reservation consumes the root generator exactly like serial
        sampling, so ``[t.build() for t in tasks]`` -- or realizing the
        tasks across worker processes -- equals ``sample_3t1d_chips`` /
        ``sample_sram_chips`` bit for bit.
        """
        if kind not in ("3t1d", "sram"):
            raise ConfigurationError(
                f"unknown chip kind {kind!r}; expected '3t1d' or 'sram'"
            )
        return [
            ChipBuildTask(
                node=self.node,
                params=self.params,
                geometry=self.geometry,
                kind=kind,
                chip_id=chip_id,
                chip_seed=chip_seed,
                size_factor=size_factor,
                technology=self.technology,
            )
            for chip_id, chip_seed in self._sampler.reserve_chip_seeds(count)
        ]

    # ------------------------------------------------------------------
    # 6T sampling
    # ------------------------------------------------------------------

    def sample_sram_chip(self, size_factor: float = 1.0) -> SRAMChipSample:
        """Draw the next chip built with 6T cells of ``size_factor``."""
        chip = self._sampler.sample_chip()
        return self._build_sram_sample(chip, size_factor)

    def sample_sram_chips(
        self, count: int, size_factor: float = 1.0
    ) -> List[SRAMChipSample]:
        """Draw ``count`` consecutive 6T chips."""
        return [
            self.sample_sram_chip(size_factor)
            for _ in range(validate_chip_count(count))
        ]

    def _build_sram_sample(
        self, chip: ChipVariation, size_factor: float
    ) -> SRAMChipSample:
        cell = SRAM6TCell(self.node, size_factor=size_factor)
        sigma_vth_min = self.params.sigma_vth(self.node)
        sigma_vth_cell = sigma_vth_min * cell.mismatch_scale
        geometry = self.geometry
        rows = geometry.rows_per_pair
        cells = geometry.cells_per_line

        access_by_line = np.empty(geometry.n_lines)
        leakage = 0.0
        golden_cell_leak = cell.nominal_cell_leakage_power()
        for pair in range(geometry.n_pairs):
            sub_a, sub_b = geometry.subarrays_of_pair(pair)
            delta_l = 0.5 * (
                chip.delta_l_total(sub_a) + chip.delta_l_total(sub_b)
            )
            periphery = float(cell.periphery_delay_factor(delta_l))
            shape = (rows, cells)
            delta_vth = (
                chip.rng.normal(0.0, sigma_vth_cell, size=shape)
                if sigma_vth_cell > 0
                else np.zeros(shape)
            )
            access = cell.access_time(
                delta_vth=delta_vth, delta_l=delta_l, periphery_factor=periphery
            )
            line_ids = np.arange(rows) * geometry.n_pairs + pair
            access_by_line[line_ids] = np.max(access, axis=1)
            leak_vth = (
                chip.rng.normal(0.0, sigma_vth_cell, size=shape)
                if sigma_vth_cell > 0
                else np.zeros(shape)
            )
            leakage += float(np.sum(cell.leakage_power(leak_vth, delta_l)))
        # Banking periphery leakage (sense columns, row drivers, control)
        # relative to the paper layout; an exact no-op for the paper's
        # organisation, so default-geometry chips stay bit-identical.
        leakage = cactimodel.scale_chip_leakage(leakage, geometry)
        golden_chip_leak = cactimodel.scale_chip_leakage(
            golden_cell_leak * geometry.total_cells, geometry
        )
        worst_access = float(np.max(access_by_line))

        p_flip = cell.flip_probability(sigma_vth_min)
        flip_count = (
            int(chip.rng.binomial(self.geometry.total_cells, p_flip))
            if p_flip > 0
            else 0
        )
        return SRAMChipSample(
            node=self.node,
            cell_label=cell.label,
            chip_id=chip.chip_id,
            worst_access_time=worst_access,
            nominal_access_time=cell.nominal_access_time(),
            leakage_power=leakage,
            golden_leakage_power=golden_chip_leak,
            flip_count=flip_count,
            total_cells=self.geometry.total_cells,
            access_time_by_line=access_by_line,
        )

    # ------------------------------------------------------------------
    # 3T1D sampling
    # ------------------------------------------------------------------

    def sample_3t1d_chip(self) -> DRAM3T1DChipSample:
        """Draw the next chip built with 3T1D cells."""
        chip = self._sampler.sample_chip()
        return self._build_3t1d_sample(chip)

    def sample_3t1d_chips(self, count: int) -> List[DRAM3T1DChipSample]:
        """Draw ``count`` consecutive 3T1D chips."""
        return [
            self.sample_3t1d_chip()
            for _ in range(validate_chip_count(count))
        ]

    def _build_3t1d_sample(self, chip: ChipVariation) -> DRAM3T1DChipSample:
        rmap = self._backend.sample_retention_map(chip, self.geometry)
        return DRAM3T1DChipSample(
            node=self.node,
            geometry=self.geometry,
            chip_id=chip.chip_id,
            retention_by_line=rmap.retention_by_line,
            leakage_power=cactimodel.scale_chip_leakage(
                rmap.leakage_power, self.geometry
            ),
            golden_leakage_power=cactimodel.scale_chip_leakage(
                rmap.golden_leakage_power, self.geometry
            ),
            retention_by_word=rmap.retention_by_word,
            technology=self.technology,
            latency_factor_by_line=rmap.latency_factor_by_line,
        )

    # ------------------------------------------------------------------
    # golden references
    # ------------------------------------------------------------------

    @classmethod
    def golden_sram_chip(
        cls,
        node: TechnologyNode,
        size_factor: float = 1.0,
        geometry: Optional[CacheGeometry] = None,
    ) -> SRAMChipSample:
        """The no-variation 6T chip (the normalisation reference)."""
        geometry = geometry or CacheGeometry()
        cell = SRAM6TCell(node, size_factor=size_factor)
        golden_leak = cactimodel.scale_chip_leakage(
            cell.nominal_cell_leakage_power() * geometry.total_cells, geometry
        )
        return SRAMChipSample(
            node=node,
            cell_label=cell.label,
            chip_id=-1,
            worst_access_time=cell.nominal_access_time(),
            nominal_access_time=cell.nominal_access_time(),
            leakage_power=golden_leak,
            golden_leakage_power=golden_leak,
            flip_count=0,
            total_cells=geometry.total_cells,
        )

    @classmethod
    def golden_3t1d_chip(
        cls,
        node: TechnologyNode,
        geometry: Optional[CacheGeometry] = None,
    ) -> DRAM3T1DChipSample:
        """The no-variation 3T1D chip: every line at nominal retention."""
        geometry = geometry or CacheGeometry()
        cell = DRAM3T1DCell(node)
        model = RetentionModel(cell)
        nominal = model.nominal_retention_time()
        sram_golden = cactimodel.scale_chip_leakage(
            SRAM6TCell(node).nominal_cell_leakage_power()
            * geometry.total_cells,
            geometry,
        )
        return DRAM3T1DChipSample(
            node=node,
            geometry=geometry,
            chip_id=-1,
            retention_by_line=np.full(geometry.n_lines, nominal),
            leakage_power=cactimodel.scale_chip_leakage(
                cell.nominal_cell_leakage_power() * geometry.total_cells,
                geometry,
            ),
            golden_leakage_power=sram_golden,
        )
