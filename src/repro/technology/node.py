"""Technology node definitions (paper Table 1).

Each :class:`TechnologyNode` carries the circuit parameters the paper lists
for its three simulated nodes (65nm, 45nm, 32nm) plus the electrical
quantities the first-order device models need (supply voltage, nominal
threshold voltage, gate oxide capacitance).

The paper's Table 1::

    node   min cell area  wire width  wire thickness  oxide  chip frequency
    65nm   0.90 um^2      0.10 um     0.20 um         1.2nm  3.0 GHz
    45nm   0.45 um^2      0.07 um     0.14 um         1.1nm  3.5 GHz
    32nm   0.23 um^2      0.05 um     0.10 um         1.0nm  4.3 GHz

Supply and threshold voltages are not tabulated in the paper; we use the
PTM-typical values for these nodes (the paper's sensitivity study mentions a
1.1 V supply for its 45nm/32nm design points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TechnologyNode:
    """Parameters of one CMOS process node.

    Attributes mirror Table 1 of the paper, in SI units:

    * ``name`` -- human-readable node name, e.g. ``"32nm"``.
    * ``feature_size`` -- drawn gate length in meters.
    * ``cell_area`` -- minimum-size 6T cache cell area in m^2.
    * ``wire_width`` / ``wire_thickness`` -- interconnect geometry in meters.
    * ``oxide_thickness`` -- gate oxide thickness in meters.
    * ``frequency`` -- nominal chip frequency in Hz.
    * ``vdd`` -- nominal supply voltage in volts.
    * ``vth`` -- nominal NMOS threshold voltage in volts.
    """

    name: str
    feature_size: float
    cell_area: float
    wire_width: float
    wire_thickness: float
    oxide_thickness: float
    frequency: float
    vdd: float = 1.1
    vth: float = 0.30

    def __post_init__(self) -> None:
        positive = {
            "feature_size": self.feature_size,
            "cell_area": self.cell_area,
            "wire_width": self.wire_width,
            "wire_thickness": self.wire_thickness,
            "oxide_thickness": self.oxide_thickness,
            "frequency": self.frequency,
            "vdd": self.vdd,
        }
        for attr, value in positive.items():
            if value <= 0:
                raise ConfigurationError(
                    f"TechnologyNode.{attr} must be positive, got {value!r}"
                )
        if not 0 < self.vth < self.vdd:
            raise ConfigurationError(
                f"vth must lie in (0, vdd); got vth={self.vth}, vdd={self.vdd}"
            )

    # --- derived electrical quantities ---------------------------------

    @property
    def cycle_time(self) -> float:
        """Nominal clock period in seconds."""
        return 1.0 / self.frequency

    @property
    def oxide_capacitance_per_area(self) -> float:
        """Gate oxide capacitance per unit area, F/m^2."""
        return units.EPSILON_SIO2 / self.oxide_thickness

    @property
    def gate_overdrive(self) -> float:
        """Nominal gate overdrive ``vdd - vth`` in volts."""
        return self.vdd - self.vth

    def scaled(self, **overrides: float) -> "TechnologyNode":
        """Return a copy of this node with selected fields replaced.

        Useful for what-if studies, e.g. supply-voltage scaling in the
        sensitivity analysis (paper Figure 12 design points)::

            low_voltage = NODE_32NM.scaled(vdd=0.9)
        """
        values = {
            "name": self.name,
            "feature_size": self.feature_size,
            "cell_area": self.cell_area,
            "wire_width": self.wire_width,
            "wire_thickness": self.wire_thickness,
            "oxide_thickness": self.oxide_thickness,
            "frequency": self.frequency,
            "vdd": self.vdd,
            "vth": self.vth,
        }
        unknown = set(overrides) - set(values)
        if unknown:
            raise ConfigurationError(
                f"unknown TechnologyNode fields: {sorted(unknown)}"
            )
        values.update(overrides)
        return TechnologyNode(**values)

    @staticmethod
    def from_name(name: str) -> "TechnologyNode":
        """Look up one of the paper's three nodes by name ("65nm", "45nm", "32nm")."""
        try:
            return ALL_NODES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown technology node {name!r}; "
                f"available: {sorted(ALL_NODES)}"
            ) from None


NODE_65NM = TechnologyNode(
    name="65nm",
    feature_size=units.nm(65),
    cell_area=units.um(0.90) * units.um(1.0),  # 0.90 um^2
    wire_width=units.um(0.10),
    wire_thickness=units.um(0.20),
    oxide_thickness=units.nm(1.2),
    frequency=units.ghz(3.0),
    vdd=1.1,
    vth=0.35,
)

NODE_45NM = TechnologyNode(
    name="45nm",
    feature_size=units.nm(45),
    cell_area=units.um(0.45) * units.um(1.0),  # 0.45 um^2
    wire_width=units.um(0.07),
    wire_thickness=units.um(0.14),
    oxide_thickness=units.nm(1.1),
    frequency=units.ghz(3.5),
    vdd=1.1,
    vth=0.33,
)

NODE_32NM = TechnologyNode(
    name="32nm",
    feature_size=units.nm(32),
    cell_area=units.um(0.23) * units.um(1.0),  # 0.23 um^2
    wire_width=units.um(0.05),
    wire_thickness=units.um(0.10),
    oxide_thickness=units.nm(1.0),
    frequency=units.ghz(4.3),
    vdd=1.1,
    vth=0.30,
)

ALL_NODES: Dict[str, TechnologyNode] = {
    node.name: node for node in (NODE_65NM, NODE_45NM, NODE_32NM)
}

NODE_ORDER: Tuple[str, ...] = ("65nm", "45nm", "32nm")
"""Scaling order used when iterating nodes in paper tables."""
