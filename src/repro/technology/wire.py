"""Distributed-pi RC wire model (paper section 3.1).

The paper scales all wires with technology and cell area, assumes copper,
and uses distributed-pi models for wire delay.  We reproduce that with the
standard closed forms:

* wire resistance per length:  r = rho / (width * thickness)
* wire capacitance per length: c = c_areal * width + 2 * c_fringe
* distributed RC (Elmore) delay of a wire of length L: 0.5 * r * c * L^2
* delay of a wire driven by resistance R_drv into load C_load:
  R_drv*(c*L + C_load) + r*L*(0.5*c*L + C_load)

These appear in the sub-array timing model for wordlines and bitlines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError
from repro.technology.node import TechnologyNode

# Areal capacitance to the planes above/below, plus lateral fringe to
# neighbouring wires, for tightly pitched cache-array metal.
WIRE_AREAL_CAP: float = 30e-6  # F/m^2 against each adjacent plane
WIRE_FRINGE_CAP: float = 40e-12  # F/m per edge


@dataclass(frozen=True)
class WireModel:
    """RC characteristics of the array interconnect at one node."""

    node: TechnologyNode

    @property
    def resistance_per_meter(self) -> float:
        """Wire resistance per unit length in Ohm/m."""
        cross_section = self.node.wire_width * self.node.wire_thickness
        if cross_section <= 0:
            raise ConfigurationError("wire cross-section must be positive")
        return units.COPPER_RESISTIVITY / cross_section

    @property
    def capacitance_per_meter(self) -> float:
        """Wire capacitance per unit length in F/m (area + fringe terms)."""
        area_component = 2.0 * WIRE_AREAL_CAP * self.node.wire_width
        fringe_component = 2.0 * WIRE_FRINGE_CAP
        return area_component + fringe_component

    def elmore_delay(self, length: float, load_capacitance: float = 0.0,
                     driver_resistance: float = 0.0) -> float:
        """Elmore delay of a distributed-pi wire segment in seconds.

        ``length`` in meters; optional lumped ``load_capacitance`` at the far
        end and ``driver_resistance`` at the near end.
        """
        if length < 0:
            raise ConfigurationError(f"wire length must be >= 0, got {length}")
        r_total = self.resistance_per_meter * length
        c_total = self.capacitance_per_meter * length
        wire_term = 0.5 * r_total * c_total + r_total * load_capacitance
        driver_term = driver_resistance * (c_total + load_capacitance)
        return wire_term + driver_term

    def wire_capacitance(self, length: float) -> float:
        """Total capacitance of a wire of ``length`` meters, in farads."""
        if length < 0:
            raise ConfigurationError(f"wire length must be >= 0, got {length}")
        return self.capacitance_per_meter * length
