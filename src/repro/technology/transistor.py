"""First-order MOSFET model: drive current, leakage, capacitance.

This module replaces Hspice + PTM device cards with two standard analytic
models that capture exactly the dependencies the architectural study needs:

* **Drive (on) current** -- the alpha-power law [Sakurai & Newton 1990]::

      I_on = k_drive * (W / L) * (Vgs - Vth)^alpha

  Gate-length and threshold-voltage variation modulate ``I_on`` and hence
  access time, the quantity that limits 6T SRAM frequency (paper section
  2.1) and shifts the 3T1D access-time curve (paper Figure 4).

* **Subthreshold (off) current** -- exponential in threshold voltage::

      I_off = k_leak * W * exp(-Vth / (n * vT))

  Threshold variation therefore produces the multiplicative (lognormal)
  leakage spread the paper reports ("a 5X variation in leakage power across
  chips", section 2.1) and the 3T1D retention-time spread (section 2.2).

Short-channel effects couple gate length back into threshold voltage via a
Vth roll-off slope (``vth_rolloff``): shorter channels have lower Vth, which
simultaneously speeds the device up and leaks more.  This coupling is what
makes correlated gate-length variation shift whole sub-arrays and chips.

All model constants are per-:class:`~repro.technology.node.TechnologyNode`
and are calibrated in :mod:`repro.technology.calibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Union

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.technology.node import TechnologyNode

ArrayLike = Union[float, np.ndarray]

ALPHA_POWER_EXPONENT: float = 1.3
"""Velocity-saturation exponent of the alpha-power law for nanoscale CMOS."""

SUBTHRESHOLD_IDEALITY: float = 1.5
"""Subthreshold slope ideality factor n (S = n * vT * ln 10 ~ 105 mV/dec at 80C)."""


class TransistorType(Enum):
    """Device polarity. The analytic model treats both identically except
    for the sign conventions handled by callers; PMOS devices are given a
    mobility-derated drive constant."""

    NMOS = "nmos"
    PMOS = "pmos"


PMOS_DRIVE_DERATING: float = 0.5
"""PMOS drive relative to equal-sized NMOS (hole vs electron mobility)."""


@dataclass(frozen=True)
class Transistor:
    """A transistor instance within a memory cell.

    Sizes are expressed relative to the node feature size ``F``:
    ``width = width_f * F`` and ``length = length_f * F``.  A minimum-size
    device is ``width_f=1, length_f=1``; the paper's "2X 6T" cell doubles
    both (``width_f=2, length_f=2``).

    The model methods accept numpy arrays for the variation arguments so
    that Monte-Carlo sampling over hundreds of thousands of cells stays
    vectorised.
    """

    node: TechnologyNode
    width_f: float = 1.0
    length_f: float = 1.0
    kind: TransistorType = TransistorType.NMOS
    vth_rolloff_rel: float = 0.384
    """Threshold-voltage roll-off coupling in volts per unit of *relative*
    gate-length deviation (delta_L / L_nominal); positive means a shorter
    channel lowers Vth.  0.384 V/unit equals 12 mV per nm at 32nm, modeling
    strong halo-implant roll-off, and scales appropriately to the longer
    channels of older nodes."""

    def __post_init__(self) -> None:
        if self.width_f <= 0 or self.length_f <= 0:
            raise ConfigurationError(
                f"transistor sizes must be positive; got width_f={self.width_f}, "
                f"length_f={self.length_f}"
            )

    # --- geometry -------------------------------------------------------

    @property
    def width(self) -> float:
        """Drawn device width in meters."""
        return self.width_f * self.node.feature_size

    @property
    def length(self) -> float:
        """Drawn device length in meters."""
        return self.length_f * self.node.feature_size

    @property
    def gate_area(self) -> float:
        """Gate area W*L in m^2 (the Pelgrom mismatch scaling parameter)."""
        return self.width * self.length

    @property
    def gate_capacitance(self) -> float:
        """Gate capacitance Cox * W * L in farads."""
        return self.node.oxide_capacitance_per_area * self.gate_area

    @property
    def drain_capacitance(self) -> float:
        """Drain junction capacitance, modeled as a fraction of gate cap."""
        return 0.5 * self.gate_capacitance

    # --- variation coupling ----------------------------------------------

    def effective_vth(
        self, delta_vth: ArrayLike = 0.0, delta_l: ArrayLike = 0.0
    ) -> ArrayLike:
        """Threshold voltage including random dopant shift and L roll-off.

        ``delta_vth`` is the random-dopant threshold shift in volts;
        ``delta_l`` the gate-length deviation in meters (positive = longer
        channel = higher Vth).
        """
        relative = np.asarray(delta_l) / self.length
        return self.node.vth + delta_vth + self.vth_rolloff_rel * relative

    def mismatch_sigma_scale(self) -> float:
        """Pelgrom area scaling of random Vth mismatch: sigma ~ 1/sqrt(W*L).

        Returned value is relative to a minimum-size device at this node, so
        a minimum-size device returns 1.0 and the paper's 2X cell (2x width,
        2x length) returns 0.5.
        """
        minimum_area = self.node.feature_size ** 2
        return math.sqrt(minimum_area / self.gate_area)

    # --- currents --------------------------------------------------------

    def drive_constant(self) -> float:
        """Per-node drive constant k_drive (A/V^alpha), mobility derated for PMOS."""
        from repro.technology.calibration import drive_constant_for_node

        base = drive_constant_for_node(self.node)
        if self.kind is TransistorType.PMOS:
            return base * PMOS_DRIVE_DERATING
        return base

    def on_current(
        self,
        vgs: ArrayLike = None,
        delta_vth: ArrayLike = 0.0,
        delta_l: ArrayLike = 0.0,
    ) -> ArrayLike:
        """Saturation drive current in amperes (alpha-power law).

        ``vgs`` defaults to the full supply voltage.  Overdrive below zero
        (device effectively off) clamps the drive current to zero; callers
        treating such devices as "dead" should check for zero.
        """
        if vgs is None:
            vgs = self.node.vdd
        vth = self.effective_vth(delta_vth, delta_l)
        length = self.length + np.asarray(delta_l)
        overdrive = np.maximum(np.asarray(vgs) - vth, 0.0)
        return (
            self.drive_constant()
            * (self.width / length)
            * overdrive ** ALPHA_POWER_EXPONENT
        )

    def off_current(
        self,
        delta_vth: ArrayLike = 0.0,
        delta_l: ArrayLike = 0.0,
        temperature_c: float = units.SIMULATION_TEMPERATURE_C,
    ) -> ArrayLike:
        """Subthreshold leakage current in amperes at Vgs=0.

        Exponential in the effective threshold voltage, which is what turns
        Gaussian process variation into the lognormal leakage (and retention
        time) distributions observed in the paper.
        """
        from repro.technology.calibration import leakage_constant_for_node

        vth = self.effective_vth(delta_vth, delta_l)
        v_t = units.thermal_voltage(temperature_c)
        k_leak = leakage_constant_for_node(self.node)
        return k_leak * self.width * np.exp(-vth / (SUBTHRESHOLD_IDEALITY * v_t))

    def subthreshold_swing(
        self, temperature_c: float = units.SIMULATION_TEMPERATURE_C
    ) -> float:
        """Subthreshold swing in V/decade (~105 mV/dec at 80C with n=1.5)."""
        return SUBTHRESHOLD_IDEALITY * units.thermal_voltage(temperature_c) * math.log(10.0)
