"""Pluggable technology backends behind one typed protocol.

The paper's central abstraction is deliberately narrow: all process
variation is lumped into a single per-line retention time, and everything
downstream -- refresh x placement schemes, :class:`ChipSampler` retention
maps, the batched/timeline kernels -- consumes only that abstraction.
:class:`TechnologyBackend` makes the abstraction explicit so alternative
cell technologies can be dropped underneath the unchanged scheme
machinery:

* :class:`DRAM3T1DBackend` -- the paper's 3T1D cell, a verbatim port of the
  original ``ChipSampler`` sampling loop (bit-identical draw order, so the
  default backend reproduces pre-backend outputs exactly).
* :class:`STTRAMBackend` -- an STT-RAM L1 with asymmetric read/write
  latency and energy, relaxed-retention banks, and DVFS-point-dependent
  retention scaling, after ARC (arxiv 2407.19612): retention follows
  ``tau0 * exp(Delta)`` in the thermal stability factor ``Delta``, relaxed
  banks trade stability for write energy, and a hotter/faster DVFS point
  erodes ``Delta``.
* :class:`VarDRAMBackend` -- a commodity-DRAM-style array with
  design-induced access-latency variation after Lee et al. (arxiv
  1610.09604): a cell's distance from its sense amplifiers sets a
  deterministic latency gradient, distant rows also restore less charge
  (shorter effective retention), and process variation adds a lognormal
  retention tail.

Backends register by name in a module-level registry; ``get_backend``
resolves the names the ``--technology`` CLI flag and
``ExperimentContext.technology`` accept.  Registration enforces full
protocol conformance (no partial duck-typing) -- mirrored statically by
linter rule API005.

The two non-3T1D models keep the paper's *trace-scale* framing: retention
times land in the same tens-of-microseconds window the 3T1D study
observes, so the existing benchmark traces exercise expiry/refresh
behaviour rather than trivially never (STT-RAM at seconds of retention) or
always (unscaled DRAM refresh windows) expiring.  They are design-point
models for comparing scheme machinery across technologies, not sign-off
device models.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.technology import calibration
from repro.technology.node import TechnologyNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.array.geometry import CacheGeometry
    from repro.variation.montecarlo import ChipVariation


# ---------------------------------------------------------------------------
# Typed payloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CellTiming:
    """Intrinsic array timing of one backend at one node, seconds."""

    read_time: float
    write_time: float

    def __post_init__(self) -> None:
        if self.read_time <= 0 or self.write_time <= 0:
            raise ConfigurationError("cell timing values must be positive")


@dataclass(frozen=True)
class CellEnergy:
    """Per-access energy of one backend at one node, joules."""

    read_energy: float
    write_energy: float
    refresh_line_energy: float

    def __post_init__(self) -> None:
        if self.read_energy <= 0 or self.write_energy <= 0:
            raise ConfigurationError("access energies must be positive")
        if self.refresh_line_energy < 0:
            raise ConfigurationError("refresh_line_energy must be >= 0")

    @property
    def store_energy_premium(self) -> float:
        """Extra energy of a write over a read, joules (>= 0 clamped)."""
        return max(self.write_energy - self.read_energy, 0.0)


@dataclass(frozen=True)
class RefreshCost:
    """What a refresh pass costs -- or that the technology needs none."""

    needs_refresh: bool
    cycles_per_line: int
    energy_per_line: float

    def __post_init__(self) -> None:
        if self.cycles_per_line < 0 or self.energy_per_line < 0:
            raise ConfigurationError("refresh costs must be >= 0")


@dataclass(frozen=True)
class LatencyModel:
    """Pipeline view of a backend's access latency, in core cycles."""

    read_hit_cycles: int
    write_hit_cycles: int

    def __post_init__(self) -> None:
        if self.read_hit_cycles < 1:
            raise ConfigurationError("read_hit_cycles must be >= 1")
        if self.write_hit_cycles < self.read_hit_cycles:
            raise ConfigurationError(
                "write_hit_cycles must be >= read_hit_cycles (writes may be "
                "slower than reads, never faster)"
            )

    @property
    def write_extra_cycles(self) -> int:
        """Cycles a write hit spends beyond a read hit."""
        return self.write_hit_cycles - self.read_hit_cycles


@dataclass(frozen=True)
class DVFSPoint:
    """One voltage/frequency operating point, relative to nominal."""

    name: str = "nominal"
    vdd_scale: float = 1.0
    frequency_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.vdd_scale <= 0 or self.frequency_scale <= 0:
            raise ConfigurationError("DVFS scales must be positive")


DVFS_NOMINAL = DVFSPoint()


@dataclass(frozen=True)
class RetentionMap:
    """One sampled chip reduced to the per-line quantities schemes consume.

    ``latency_factor_by_line`` is ``None`` for technologies without
    design-induced latency variation; when present it holds each line's
    access-time multiplier relative to the nearest-to-sense-amps line.
    """

    retention_by_line: np.ndarray
    retention_by_word: np.ndarray
    leakage_power: float
    golden_leakage_power: float
    latency_factor_by_line: Optional[np.ndarray] = None


#: Data words per line used for word-granularity retention minima
#: (512 data bits in 64-bit words; tag cells fold into word 0).
WORDS_PER_LINE: int = 8
_WORD_BITS: int = 64


def _line_and_word_minima(
    cell_retention: np.ndarray, rows: int, cells: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce a (rows, cells) retention draw to line and word minima.

    Shared by every backend so word-granularity refresh studies see the
    same tag-folding convention regardless of technology.
    """
    line_retention = np.min(cell_retention, axis=1)
    data_bits = WORDS_PER_LINE * _WORD_BITS
    data_words = np.min(
        cell_retention[:, :data_bits].reshape(rows, WORDS_PER_LINE, _WORD_BITS),
        axis=2,
    )
    if cells > data_bits:
        tag_min = np.min(cell_retention[:, data_bits:], axis=1)
        data_words[:, 0] = np.minimum(data_words[:, 0], tag_min)
    return line_retention, data_words


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------

#: Methods every backend must implement; API005 enforces this statically
#: and :func:`register_backend` enforces it at registration time.
BACKEND_PROTOCOL_METHODS: Tuple[str, ...] = (
    "cell_timing",
    "cell_energy",
    "leakage_power",
    "nominal_retention_time",
    "sample_retention_map",
    "refresh_cost",
    "latency_model",
)


class TechnologyBackend(ABC):
    """One cell technology reduced to the surface the schemes consume.

    A backend owns the physics: how fast/expensive an access is, how much
    the array leaks, how long a line retains its value, and how process
    variation maps onto the per-line retention/latency arrays.  Everything
    above (refresh x placement schemes, kernels, experiments) is
    technology-agnostic.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def cell_timing(self, node: TechnologyNode) -> CellTiming:
        """Intrinsic array read/write times at ``node``."""

    @abstractmethod
    def cell_energy(self, node: TechnologyNode) -> CellEnergy:
        """Per-access and per-refresh energies at ``node``."""

    @abstractmethod
    def leakage_power(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> float:
        """Nominal (no-variation) leakage of the full array, watts."""

    @abstractmethod
    def nominal_retention_time(self, node: TechnologyNode) -> float:
        """No-variation retention time of one line, seconds."""

    @abstractmethod
    def sample_retention_map(
        self,
        chip: "ChipVariation",
        geometry: "CacheGeometry",
        rng: Optional[np.random.Generator] = None,
    ) -> RetentionMap:
        """Reduce one correlated-variation draw to per-line quantities.

        ``rng`` defaults to the chip's private generator; backends must
        consume it in a single documented draw order so a fixed chip seed
        reproduces the map bit for bit.
        """

    @abstractmethod
    def refresh_cost(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> RefreshCost:
        """Cost of refreshing one line, or that no refresh is needed."""

    @abstractmethod
    def latency_model(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> LatencyModel:
        """Pipeline hit latencies at ``node`` in core cycles."""


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, TechnologyBackend] = {}


def register_backend(
    backend: TechnologyBackend, replace: bool = False
) -> TechnologyBackend:
    """Register ``backend`` under its ``name``; returns it for chaining.

    Registration enforces full protocol conformance: the object must be a
    concrete :class:`TechnologyBackend` with every protocol method
    callable.  Partial duck-typing is rejected here (and statically by
    linter rule API005).
    """
    if not isinstance(backend, TechnologyBackend):
        raise ConfigurationError(
            f"backend must be a TechnologyBackend instance, got "
            f"{type(backend).__name__}"
        )
    missing = [
        method
        for method in BACKEND_PROTOCOL_METHODS
        if not callable(getattr(backend, method, None))
    ]
    if missing:
        raise ConfigurationError(
            f"backend {type(backend).__name__} does not satisfy the "
            f"TechnologyBackend protocol; missing {', '.join(missing)}"
        )
    name = backend.name
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"backend {type(backend).__name__} must define a non-empty "
            "string 'name'"
        )
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"technology backend {name!r} is already registered; pass "
            "replace=True to override"
        )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> TechnologyBackend:
    """Resolve a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(backend_names()) or "<none>"
        raise ConfigurationError(
            f"unknown technology backend {name!r}; registered: {known}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Names of all registered backends, sorted for stable CLI choices."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# Default backend: the paper's 3T1D cell
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DRAM3T1DBackend(TechnologyBackend):
    """The paper's 3T1D DRAM cell -- the default backend.

    ``sample_retention_map`` is a verbatim port of the original
    ``ChipSampler._build_3t1d_sample`` loop: identical rng draw order and
    identical arithmetic, so chips sampled through the backend are
    bit-identical to pre-backend outputs.
    """

    name: str = "3t1d"

    def cell_timing(self, node: TechnologyNode) -> CellTiming:
        # The 3T1D cell is designed to match the 6T array access (section
        # 2.2); writes reuse the same array cycle.
        access = calibration.nominal_access_time(node)
        return CellTiming(read_time=access, write_time=access)

    def cell_energy(self, node: TechnologyNode) -> CellEnergy:
        port = calibration.port_access_energy(node, "3T1D")
        return CellEnergy(
            read_energy=port,
            write_energy=port,
            refresh_line_energy=calibration.refresh_line_energy(node),
        )

    def leakage_power(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> float:
        from repro.cells.dram3t1d import DRAM3T1DCell

        return (
            DRAM3T1DCell(node).nominal_cell_leakage_power()
            * geometry.total_cells
        )

    def nominal_retention_time(self, node: TechnologyNode) -> float:
        return calibration.nominal_retention_time(node)

    def sample_retention_map(
        self,
        chip: "ChipVariation",
        geometry: "CacheGeometry",
        rng: Optional[np.random.Generator] = None,
    ) -> RetentionMap:
        import repro.cells.dram3t1d as dram3t1d
        from repro.cells.dram3t1d import DRAM3T1DCell
        from repro.cells.retention import RetentionModel
        from repro.cells.sram6t import SRAM6TCell

        rng = chip.rng if rng is None else rng
        node = chip.node
        params = chip.params
        cell = DRAM3T1DCell(node)
        model = RetentionModel(cell)
        sigma_vth = params.sigma_vth(node) * dram3t1d.DEVICE_AREA_SIGMA_SCALE
        sigma_eps = dram3t1d.DIODE_BOOST_SIGMA_FACTOR * params.sigma_vth_rel
        rows = geometry.rows_per_pair
        cells = geometry.cells_per_line

        retention = np.empty(geometry.n_lines)
        word_retention = np.empty((geometry.n_lines, WORDS_PER_LINE))
        leakage = 0.0
        sram_golden = (
            SRAM6TCell(node).nominal_cell_leakage_power()
            * geometry.total_cells
        )
        for pair in range(geometry.n_pairs):
            sub_a, sub_b = geometry.subarrays_of_pair(pair)
            delta_l = 0.5 * (
                chip.delta_l_total(sub_a) + chip.delta_l_total(sub_b)
            )
            shape = (rows, cells)
            if sigma_vth > 0:
                d_t1 = rng.normal(0.0, sigma_vth, size=shape)
                d_t2 = rng.normal(0.0, sigma_vth, size=shape)
            else:
                d_t1 = np.zeros(shape)
                d_t2 = np.zeros(shape)
            eps = (
                rng.normal(0.0, sigma_eps, size=shape)
                if sigma_eps > 0
                else np.zeros(shape)
            )
            cell_retention = np.asarray(
                model.retention_time(d_t1, d_t2, delta_l, eps)
            )
            line_retention, data_words = _line_and_word_minima(
                cell_retention, rows, cells
            )
            line_ids = np.arange(rows) * geometry.n_pairs + pair
            retention[line_ids] = line_retention
            word_retention[line_ids] = data_words
            # Supply leakage flows through the read stack; reuse the T2 draw.
            leakage += float(np.sum(cell.leakage_power(d_t2, delta_l)))

        return RetentionMap(
            retention_by_line=retention,
            retention_by_word=word_retention,
            leakage_power=leakage,
            golden_leakage_power=sram_golden,
        )

    def refresh_cost(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> RefreshCost:
        return RefreshCost(
            needs_refresh=True,
            cycles_per_line=geometry.refresh_cycles_per_line,
            energy_per_line=calibration.refresh_line_energy(node),
        )

    def latency_model(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> LatencyModel:
        cycles = geometry.access_latency_cycles
        return LatencyModel(read_hit_cycles=cycles, write_hit_cycles=cycles)


# ---------------------------------------------------------------------------
# STT-RAM backend (ARC, arxiv 2407.19612)
# ---------------------------------------------------------------------------

STTRAM_ATTEMPT_PERIOD: float = units.ns(1.0)
"""Thermal attempt period tau0 of the free layer, seconds (standard
1/f0 with f0 ~ 1 GHz)."""

STTRAM_THERMAL_STABILITY: float = 11.0
"""Nominal thermal stability factor Delta of the scaled free layer.

Deliberately an aggressively *relaxed-retention* design point (retention
tau0 * e^11 ~ 60 us): ARC's premise is that shrinking the free layer (or
raising temperature) trades non-volatility for write energy, pushing
retention down into the architectural window where refresh/expiry policies
matter.  Commodity STT-RAM sits at Delta ~ 40-60 (years)."""

STTRAM_STABILITY_SIGMA_FACTOR: float = 0.8
"""Random sigma of Delta, relative, as a multiple of the scenario's
sigma_Vth/Vth (free-layer volume and anisotropy mismatch track the same
lithographic tolerances)."""

STTRAM_STABILITY_L_COUPLING: float = 0.5
"""Correlated coupling of Delta to the sub-array gate-length deviation:
Delta scales with free-layer volume, so a longer-drawn region is more
stable.  Units: relative Delta per unit of relative gate length."""

STTRAM_RELAXED_BANK_FACTOR: float = 0.85
"""Delta multiplier of the relaxed-retention banks (odd sub-array pairs).
ARC provisions part of the array with a smaller free layer: cheaper writes,
shorter retention -- the placement schemes must steer around it."""

STTRAM_DVFS_STABILITY_SENSITIVITY: float = 2.0
"""Relative Delta lost per unit of supply overdrive: a faster/hotter DVFS
point raises junction temperature and read-disturb rates, eroding thermal
stability (Delta ~ 1/T).  ``delta *= 1 - k * (vdd_scale - 1)``."""

STTRAM_WRITE_TIME_FACTOR: float = 3.0
"""MTJ write pulse relative to the 6T array access time (spin-torque
switching needs nanosecond-class pulses)."""

STTRAM_READ_ENERGY_FACTOR: float = 0.8
"""Read energy relative to the 6T port access (small sensing currents)."""

STTRAM_WRITE_ENERGY_FACTOR: float = 6.0
"""Write energy relative to the 6T port access (switching current must
beat the thermal barrier)."""

STTRAM_PERIPHERY_LEAKAGE_SHARE: float = 0.08
"""Array leakage relative to the 6T cache: the MTJ cell itself is
non-volatile and leak-free; only CMOS periphery leaks."""


@dataclass(frozen=True)
class STTRAMBackend(TechnologyBackend):
    """Relaxed-retention STT-RAM with DVFS-dependent stability (ARC)."""

    name: str = "sttram"
    dvfs: DVFSPoint = DVFS_NOMINAL

    def _nominal_delta(self) -> float:
        """Thermal stability at this DVFS point (fully-retained banks)."""
        delta = STTRAM_THERMAL_STABILITY * (
            1.0
            - STTRAM_DVFS_STABILITY_SENSITIVITY * (self.dvfs.vdd_scale - 1.0)
        )
        if delta <= 0:
            raise ConfigurationError(
                f"DVFS point {self.dvfs.name!r} leaves no thermal stability"
            )
        return delta

    def cell_timing(self, node: TechnologyNode) -> CellTiming:
        access = calibration.nominal_access_time(node)
        return CellTiming(
            read_time=access,
            write_time=STTRAM_WRITE_TIME_FACTOR * access,
        )

    def cell_energy(self, node: TechnologyNode) -> CellEnergy:
        port = calibration.port_access_energy(node, "6T")
        read = STTRAM_READ_ENERGY_FACTOR * port
        write = STTRAM_WRITE_ENERGY_FACTOR * port
        return CellEnergy(
            read_energy=read,
            write_energy=write,
            # "Refresh" on relaxed-retention STT-RAM is a scrub: read the
            # line and rewrite it before the thermal barrier loses the bit
            # (ARC section IV), so a pass costs a full read + write.
            refresh_line_energy=read + write,
        )

    def leakage_power(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> float:
        from repro.cells.sram6t import SRAM6TCell

        return (
            STTRAM_PERIPHERY_LEAKAGE_SHARE
            * SRAM6TCell(node).nominal_cell_leakage_power()
            * geometry.total_cells
        )

    def nominal_retention_time(self, node: TechnologyNode) -> float:
        return STTRAM_ATTEMPT_PERIOD * math.exp(self._nominal_delta())

    def sample_retention_map(
        self,
        chip: "ChipVariation",
        geometry: "CacheGeometry",
        rng: Optional[np.random.Generator] = None,
    ) -> RetentionMap:
        from repro.cells.sram6t import SRAM6TCell

        rng = chip.rng if rng is None else rng
        node = chip.node
        params = chip.params
        delta0 = self._nominal_delta()
        sigma_delta = STTRAM_STABILITY_SIGMA_FACTOR * params.sigma_vth_rel
        rows = geometry.rows_per_pair
        cells = geometry.cells_per_line

        retention = np.empty(geometry.n_lines)
        word_retention = np.empty((geometry.n_lines, WORDS_PER_LINE))
        sram_golden = (
            SRAM6TCell(node).nominal_cell_leakage_power()
            * geometry.total_cells
        )
        # Draw order: one (rows, cells) normal draw per sub-array pair, in
        # pair order.
        for pair in range(geometry.n_pairs):
            sub_a, sub_b = geometry.subarrays_of_pair(pair)
            delta_l = 0.5 * (
                chip.delta_l_total(sub_a) + chip.delta_l_total(sub_b)
            )
            relax = (
                STTRAM_RELAXED_BANK_FACTOR if pair % 2 else 1.0
            )
            correlated = 1.0 + STTRAM_STABILITY_L_COUPLING * (
                delta_l / node.feature_size
            )
            shape = (rows, cells)
            z = (
                rng.normal(0.0, sigma_delta, size=shape)
                if sigma_delta > 0
                else np.zeros(shape)
            )
            delta_cells = delta0 * relax * correlated * (1.0 + z)
            # A cell whose barrier collapses retains nothing.
            cell_retention = np.where(
                delta_cells > 0,
                STTRAM_ATTEMPT_PERIOD * np.exp(np.minimum(delta_cells, 60.0)),
                0.0,
            )
            line_retention, data_words = _line_and_word_minima(
                cell_retention, rows, cells
            )
            line_ids = np.arange(rows) * geometry.n_pairs + pair
            retention[line_ids] = line_retention
            word_retention[line_ids] = data_words

        return RetentionMap(
            retention_by_line=retention,
            retention_by_word=word_retention,
            # Periphery leakage is CMOS and draw-independent.
            leakage_power=self.leakage_power(node, geometry),
            golden_leakage_power=sram_golden,
        )

    def refresh_cost(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> RefreshCost:
        # Refresh schemes act as scrubbing here: a pass re-reads and
        # rewrites the line before thermal decay flips a bit, taking the
        # same sense-amp-limited cycles as a DRAM refresh pass.
        return RefreshCost(
            needs_refresh=True,
            cycles_per_line=geometry.refresh_cycles_per_line,
            energy_per_line=self.cell_energy(node).refresh_line_energy,
        )

    def latency_model(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> LatencyModel:
        read_cycles = geometry.access_latency_cycles
        timing = self.cell_timing(node)
        extra_time = timing.write_time - timing.read_time
        frequency = node.frequency * self.dvfs.frequency_scale
        extra_cycles = int(math.ceil(extra_time * frequency))
        return LatencyModel(
            read_hit_cycles=read_cycles,
            write_hit_cycles=read_cycles + extra_cycles,
        )


# ---------------------------------------------------------------------------
# Variation-aware DRAM backend (Lee et al., arxiv 1610.09604)
# ---------------------------------------------------------------------------

VARDRAM_NOMINAL_RETENTION: float = units.us(40.0)
"""Nominal restore-limited retention window, seconds.  Trace-scaled: real
DRAM refresh windows are 32-64 ms, but the paper's benchmark traces span
microseconds, so the window is scaled into the observable range (same
framing the 3T1D study itself uses) while keeping the *relative* spread
from the Lee et al. distributions."""

VARDRAM_RETENTION_SIGMA_FACTOR: float = 1.2
"""Lognormal sigma of per-cell retention as a multiple of the scenario's
sigma_Vth/Vth (leaky-cell tails dominate DRAM retention statistics)."""

VARDRAM_LATENCY_SLOPE: float = 0.3
"""Design-induced latency gradient: the row farthest from its sense
amplifiers is 30% slower than the nearest (Lee et al. observe that
bitline/wordline position sets a deterministic access-time spread)."""

VARDRAM_LATENCY_JITTER_FACTOR: float = 0.4
"""Lognormal process jitter on the per-pair latency factor, as a multiple
of sigma_Vth/Vth, on top of the deterministic position gradient."""

VARDRAM_L_RETENTION_COUPLING: float = 2.0
"""Correlated coupling of retention to the sub-array gate length: a
shorter-drawn access transistor leaks more charge off the cell.
``retention *= exp(-k * delta_l / L)``."""

VARDRAM_READ_TIME_FACTOR: float = 1.5
"""DRAM sensing relative to the 6T array access (destructive read +
restore makes the array cycle longer)."""

VARDRAM_READ_ENERGY_FACTOR: float = 0.9
VARDRAM_WRITE_ENERGY_FACTOR: float = 1.1
"""Access energies relative to the 6T port access: opening a row costs,
but the 1T1C array moves less switched capacitance per bit."""

VARDRAM_LEAKAGE_SHARE: float = 0.05
"""Array leakage relative to the 6T cache: 1T1C cells have no static
supply-to-ground path; only periphery leaks."""


@dataclass(frozen=True)
class VarDRAMBackend(TechnologyBackend):
    """Commodity-style DRAM with design-induced latency variation."""

    name: str = "vardram"

    def cell_timing(self, node: TechnologyNode) -> CellTiming:
        access = VARDRAM_READ_TIME_FACTOR * calibration.nominal_access_time(
            node
        )
        return CellTiming(read_time=access, write_time=access)

    def cell_energy(self, node: TechnologyNode) -> CellEnergy:
        port = calibration.port_access_energy(node, "6T")
        return CellEnergy(
            read_energy=VARDRAM_READ_ENERGY_FACTOR * port,
            write_energy=VARDRAM_WRITE_ENERGY_FACTOR * port,
            refresh_line_energy=calibration.refresh_line_energy(node),
        )

    def leakage_power(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> float:
        from repro.cells.sram6t import SRAM6TCell

        return (
            VARDRAM_LEAKAGE_SHARE
            * SRAM6TCell(node).nominal_cell_leakage_power()
            * geometry.total_cells
        )

    def nominal_retention_time(self, node: TechnologyNode) -> float:
        return VARDRAM_NOMINAL_RETENTION

    def sample_retention_map(
        self,
        chip: "ChipVariation",
        geometry: "CacheGeometry",
        rng: Optional[np.random.Generator] = None,
    ) -> RetentionMap:
        from repro.cells.sram6t import SRAM6TCell

        rng = chip.rng if rng is None else rng
        node = chip.node
        params = chip.params
        sigma_ret = VARDRAM_RETENTION_SIGMA_FACTOR * params.sigma_vth_rel
        sigma_lat = VARDRAM_LATENCY_JITTER_FACTOR * params.sigma_vth_rel
        rows = geometry.rows_per_pair
        cells = geometry.cells_per_line

        retention = np.empty(geometry.n_lines)
        word_retention = np.empty((geometry.n_lines, WORDS_PER_LINE))
        latency_factor = np.empty(geometry.n_lines)
        sram_golden = (
            SRAM6TCell(node).nominal_cell_leakage_power()
            * geometry.total_cells
        )
        # Deterministic position gradient: row r of a pair sits r/(rows-1)
        # of the way up the bitline from its sense amplifiers.
        distance = (
            np.arange(rows) / (rows - 1) if rows > 1 else np.zeros(rows)
        )
        position = 1.0 + VARDRAM_LATENCY_SLOPE * distance
        # Draw order per pair: one (rows,) latency-jitter draw, then one
        # (rows, cells) retention draw.
        for pair in range(geometry.n_pairs):
            sub_a, sub_b = geometry.subarrays_of_pair(pair)
            delta_l = 0.5 * (
                chip.delta_l_total(sub_a) + chip.delta_l_total(sub_b)
            )
            correlated = math.exp(
                -VARDRAM_L_RETENTION_COUPLING * delta_l / node.feature_size
            )
            jitter = (
                np.exp(rng.normal(0.0, sigma_lat, size=rows))
                if sigma_lat > 0
                else np.ones(rows)
            )
            row_latency = position * jitter
            shape = (rows, cells)
            z = (
                rng.normal(0.0, sigma_ret, size=shape)
                if sigma_ret > 0
                else np.zeros(shape)
            )
            # Distant rows restore less charge each access, so their
            # effective retention shrinks by the same design factor that
            # slows them down (restore truncation, Lee et al. section 5).
            cell_retention = (
                VARDRAM_NOMINAL_RETENTION
                * correlated
                * np.exp(z)
                / row_latency[:, None]
            )
            line_retention, data_words = _line_and_word_minima(
                cell_retention, rows, cells
            )
            line_ids = np.arange(rows) * geometry.n_pairs + pair
            retention[line_ids] = line_retention
            word_retention[line_ids] = data_words
            latency_factor[line_ids] = row_latency

        return RetentionMap(
            retention_by_line=retention,
            retention_by_word=word_retention,
            leakage_power=self.leakage_power(node, geometry),
            golden_leakage_power=sram_golden,
            latency_factor_by_line=latency_factor,
        )

    def refresh_cost(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> RefreshCost:
        return RefreshCost(
            needs_refresh=True,
            cycles_per_line=geometry.refresh_cycles_per_line,
            energy_per_line=calibration.refresh_line_energy(node),
        )

    def latency_model(
        self, node: TechnologyNode, geometry: "CacheGeometry"
    ) -> LatencyModel:
        base = geometry.access_latency_cycles
        extra_time = (VARDRAM_READ_TIME_FACTOR - 1.0) * (
            calibration.nominal_access_time(node)
        )
        extra_cycles = int(math.ceil(extra_time * node.frequency))
        cycles = base + extra_cycles
        return LatencyModel(read_hit_cycles=cycles, write_hit_cycles=cycles)


DEFAULT_TECHNOLOGY: str = "3t1d"

register_backend(DRAM3T1DBackend())
register_backend(STTRAMBackend())
register_backend(VarDRAMBackend())

__all__ = [
    "BACKEND_PROTOCOL_METHODS",
    "CellEnergy",
    "CellTiming",
    "DEFAULT_TECHNOLOGY",
    "DRAM3T1DBackend",
    "DVFSPoint",
    "DVFS_NOMINAL",
    "LatencyModel",
    "RefreshCost",
    "RetentionMap",
    "STTRAMBackend",
    "TechnologyBackend",
    "VarDRAMBackend",
    "backend_names",
    "get_backend",
    "register_backend",
]
